//! # tensor-casting
//!
//! A from-scratch Rust reproduction of **"Tensor Casting: Co-Designing
//! Algorithm-Architecture for Personalized Recommendation Training"**
//! (Kwon, Lee, Rhu — HPCA 2021, arXiv:2010.13100).
//!
//! This facade crate re-exports the whole workspace. The subsystems:
//!
//! * [`core`] (`tcast-core`) — the paper's contribution: the Tensor
//!   Casting index transformation (Algorithm 2), the fused casted
//!   gradient gather-reduce (Algorithm 3), and the forward-overlap
//!   casting pipeline (Section IV-B).
//! * [`embedding`] (`tcast-embedding`) — embedding tables and the
//!   baseline primitives: fused gather-reduce, gradient expand, gradient
//!   coalesce (Algorithm 1), gradient scatter, sparse optimizers, and the
//!   analytic memory-traffic model of Fig. 6.
//! * [`tensor`] (`tcast-tensor`) — the dense MLP substrate (matrices,
//!   GEMM, losses, DLRM feature interaction).
//! * [`datasets`] (`tcast-datasets`) — popularity models of the paper's
//!   four datasets, coalescing statistics (Fig. 5), synthetic CTR data.
//! * [`dram`] (`tcast-dram`) — a cycle-level DDR4 simulator (the
//!   Ramulator substitute) measuring effective bandwidth per access
//!   pattern.
//! * [`nmp`] (`tcast-nmp`) — the rank-level NMP cores (Fig. 11) and the
//!   disaggregated pool (Fig. 10 / Table I), functionally and temporally
//!   modelled.
//! * [`system`] (`tcast-system`) — the system-level performance/energy
//!   model behind Figs. 4, 9 and 12-17: design points, timelines,
//!   speedups, utilization, energy.
//! * [`dlrm`] (`tcast-dlrm`) — end-to-end DLRM training on the real
//!   kernels with switchable baseline/casted backward.
//! * [`serve`] (`tcast-serve`) — SLA-aware batched inference serving:
//!   query workload models, admission-queue batching policies, the
//!   zero-alloc fused scoring engine with a casting-cache hot path, the
//!   online-training mode, and true concurrent train-and-serve.
//! * [`snapshot`] (`tcast-snapshot`) — epoch-versioned model snapshot
//!   publication: the trainer publishes immutable, recycled-buffer
//!   snapshots every K steps; serve engines resolve consistent versions
//!   with bounded staleness, hot swap and rollback.
//!
//! See `examples/` for runnable entry points and `crates/bench/src/bin/`
//! for the per-figure reproduction harness.
//!
//! ```
//! use tensor_casting::core::{tensor_casting, casted_gather_reduce};
//! use tensor_casting::embedding::{IndexArray, gradient_expand_coalesce};
//! use tensor_casting::tensor::Matrix;
//!
//! // The paper's running example (Figs. 2, 7, 8).
//! let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]]).unwrap();
//! let grads = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
//! let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
//! let casted = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
//! assert_eq!(baseline.grads().as_slice(), casted.grads().as_slice());
//! ```

pub use tcast_core as core;
pub use tcast_datasets as datasets;
pub use tcast_dlrm as dlrm;
pub use tcast_dram as dram;
pub use tcast_embedding as embedding;
pub use tcast_nmp as nmp;
pub use tcast_serve as serve;
pub use tcast_snapshot as snapshot;
pub use tcast_system as system;
pub use tcast_tensor as tensor;

//! Serve a trained DLRM under the three batching policies, switch to
//! online mode (casted training interleaved with serving), then go
//! fully concurrent: the trainer publishes epoch-versioned snapshots
//! while serve engines score them on separate pool workers — including
//! a mid-traffic hot swap and a rollback drill.
//!
//! Trains a scaled-down RM1 for a few steps, then drives the
//! `tcast-serve` loop over a seeded hot-query workload and prints each
//! policy's throughput/tail-latency trade-off, the casting-cache hit
//! rate, the model-staleness ledger, and — in concurrent mode — the
//! snapshot version timeline plus the freshness SLA (p99 model age).
//!
//! ```sh
//! cargo run --release --example serve_dlrm
//! ```

use tensor_casting::datasets::{PrefetchSource, SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{
    checkpoint::save_train_checkpoint, BackwardMode, DlrmConfig, TrainLoop, Trainer,
};
use tensor_casting::serve::{
    run_fleet, serve, serve_concurrent, serve_online, AdaptiveBatcher, ArrivalProcess, BatchPolicy,
    CandidateCount, ConcurrentConfig, FleetConfig, HotSwap, OnlineConfig, PoolCostModel,
    PopularityShift, PublishCadence, QueryModel, RateCurve, RollbackDrill, ServeConfig,
    ServeEngine, ServeReport, SnapshotStore, Tenant, TenantSpec,
};
use tensor_casting::tensor::Pool;

const QUERIES: usize = 400;
const SLA_NS: u64 = 5_000_000; // 5 ms

fn workload(seed: u64) -> QueryModel {
    let config = DlrmConfig::rm1_scaled(20_000);
    QueryModel::new(
        &config.table_workloads(),
        config.dense_features,
        96, // distinct queries in the catalog
        CandidateCount::Uniform { min: 2, max: 8 },
        1.1, // hot-query skew
        seed,
    )
}

fn print_report(label: &str, r: &ServeReport) {
    println!(
        "  {label:<22} {:>8.0} qps  p50 {:>6.2} ms  p95 {:>6.2} ms  p99 {:>6.2} ms  \
         sla-viol {:>5.1}%  mean batch {:>4.1}  cache hit {:>4.0}%",
        r.qps(),
        r.latency.p50_ns() as f64 / 1e6,
        r.latency.p95_ns() as f64 / 1e6,
        r.latency.p99_ns() as f64 / 1e6,
        100.0 * r.sla_violation_rate(),
        r.mean_batch(),
        100.0 * r.cache_hit_rate,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a model (casted backward), as production would.
    let config = DlrmConfig::rm1_scaled(20_000);
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 7);
    let mut trainer = Trainer::new(config.clone(), BackwardMode::Casted, 99)?;
    trainer.set_learning_rate(0.02);
    for _ in 0..10 {
        trainer.step(&data.next_batch(256))?;
    }
    println!(
        "trained {} steps; serving {} queries (SLA {} ms, Poisson arrivals)\n",
        trainer.steps(),
        QUERIES,
        SLA_NS / 1_000_000
    );

    // 2. Inference-only serving under each batching policy.
    let policies: Vec<(&str, BatchPolicy)> = vec![
        ("fixed (B=8)", BatchPolicy::Fixed { batch: 8 }),
        (
            "deadline (B<=16, 1ms)",
            BatchPolicy::Deadline {
                max_batch: 16,
                max_wait_ns: 1_000_000,
            },
        ),
        (
            "adaptive (SLA-driven)",
            BatchPolicy::Adaptive(AdaptiveBatcher::new(SLA_NS, 32, SLA_NS / 4)),
        ),
    ];
    for (label, policy) in policies {
        let mut engine = ServeEngine::with_defaults(trainer.model());
        let report = serve(
            &mut engine,
            trainer.model(),
            &mut workload(3),
            &ServeConfig {
                queries: QUERIES,
                arrivals: ArrivalProcess::Poisson { mean_qps: 4_000.0 },
                policy,
                sla_ns: SLA_NS,
                seed: 11,
                shed_unmeetable: false,
            },
        )?;
        print_report(label, &report);
    }

    // 3. Online mode: keep training every 4 fused batches while serving.
    // The batch source is prefetched: a producer thread generates the
    // next training batch while queries are being served, so the update
    // slot finds its batch waiting instead of paying generation inline.
    println!("\nonline mode (1 casted update step per 4 fused batches, prefetched batches):");
    let mut source = PrefetchSource::new(
        SyntheticSource::new(
            SyntheticCtr::new(config.table_workloads(), config.dense_features, 13),
            256,
        ),
        2,
    );
    let mut engine = ServeEngine::with_defaults(trainer.model());
    let steps_before = trainer.steps();
    let (report, online) = serve_online(
        &mut engine,
        &mut trainer,
        &mut source,
        &mut workload(5),
        &ServeConfig {
            queries: QUERIES,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 16,
                think_ns: 50_000,
            },
            policy: BatchPolicy::Fixed { batch: 8 },
            sla_ns: SLA_NS,
            seed: 17,
            shed_unmeetable: false,
        },
        OnlineConfig {
            update_every: 4,
            restore: None,
        },
    )?;
    print_report("online + fixed (B=8)", &report);
    println!(
        "  {} update steps during serving (model {} -> {} steps), \
         staleness mean {:.2} / max {} batches, first loss {:.4} -> last {:.4}",
        online.updates,
        steps_before,
        trainer.steps(),
        online.mean_staleness(),
        online.max_staleness(),
        online.losses.first().copied().unwrap_or(f32::NAN),
        online.losses.last().copied().unwrap_or(f32::NAN),
    );
    println!(
        "  update-slot batch generation: {:.1} us/update (prefetched; the producer thread \
         generated {} batches while queries were served), training {:.1} us/update",
        online.gen_ns as f64 / online.updates.max(1) as f64 / 1e3,
        source.stats().produced,
        online.train_ns as f64 / online.updates.max(1) as f64 / 1e3,
    );
    println!(
        "  (the update trajectory is bit-identical to offline training on the same \
         stream — serving reads the model through & only; see tests/serving.rs)"
    );

    // 4. Concurrent mode: trainer and engines run simultaneously on one
    // pool, trading model state only through the snapshot store. Mid-run
    // drills: hot-swap a checkpoint-restored model in, then roll the
    // store back to a pre-swap version — serving never pauses for either.
    println!("\nconcurrent mode (trainer publishes every 4 steps; 2 engines, staleness bound 1):");
    let ckpt_path =
        std::env::temp_dir().join(format!("serve-dlrm-swap-{}.tckp", std::process::id()));
    save_train_checkpoint(
        &mut std::fs::File::create(&ckpt_path)?,
        &trainer,
        None,
        None,
    )?;
    let mut driver = TrainLoop::new(trainer, 2);
    let store = SnapshotStore::new(driver.trainer().model(), driver.trainer().steps(), 4);
    let mut source = SyntheticSource::new(
        SyntheticCtr::new(config.table_workloads(), config.dense_features, 23),
        256,
    );
    let mut workloads = [workload(29), workload(31)];
    let pool = Pool::with_default_parallelism();
    let concurrent = serve_concurrent(
        &mut driver,
        &mut source,
        &store,
        &mut workloads,
        &pool,
        &ConcurrentConfig {
            queries_per_engine: 200,
            batch: 8,
            train_steps: 16,
            snapshot_every: 4,
            staleness_bound: 1,
            sla_ns: SLA_NS,
            execution: tensor_casting::dlrm::Execution::Serial,
            record_batches: false,
            swap: Some(HotSwap {
                path: ckpt_path.clone(),
                at_version: 3,
            }),
            rollback: Some(RollbackDrill {
                at_version: 5,
                to_version: 2,
            }),
        },
    )?;
    std::fs::remove_file(&ckpt_path)?;
    print_report("concurrent (2 engines)", &concurrent.fleet);
    for (i, r) in concurrent.per_engine.iter().enumerate() {
        print_report(&format!("  engine {i}"), r);
    }
    println!(
        "  version timeline: {:?} ({} hot swap, {} rollback — serving never paused)",
        concurrent.train.versions_published, concurrent.train.swaps, concurrent.train.rollbacks,
    );
    println!(
        "  freshness: model age p50 {:.2} ms / p99 {:.2} ms, staleness mean {:.2} / max {} \
         versions over {} batches",
        concurrent.freshness.model_age.p50_ns() as f64 / 1e6,
        concurrent.freshness.p99_model_age_ns() as f64 / 1e6,
        concurrent.freshness.mean_staleness_versions(),
        concurrent.freshness.max_staleness_versions(),
        concurrent.freshness.batches(),
    );
    println!(
        "  trainer under load: {} steps at {:.0} steps/s, {} publishes ({:.1} us each)",
        concurrent.train.steps,
        concurrent.train.steps_per_sec(),
        concurrent.train.publishes,
        concurrent.train.publish_ns as f64 / concurrent.train.publishes.max(1) as f64 / 1e3,
    );
    println!(
        "  (a batch served at version V is bit-identical to the offline trainer at V's \
         step count — see tests/concurrent_serving.rs)"
    );

    // 5. Multi-tenant fleet: two tenants — a steady one and one hit by
    // a flash crowd mid-run — each with its own model, snapshot store,
    // queue and SLA, sharing one pool under the virtual-time
    // weighted-fair scheduler. Batches really score (real caches, real
    // logits) while the clock advances by a deterministic cost model,
    // so the whole scenario replays bit-identically.
    println!("\nfleet mode (2 tenants, weighted-fair pool sharing, per-tenant SLAs):");
    let steady = TenantSpec {
        name: "steady".to_string(),
        weight: 2,
        queries: 200,
        arrivals: RateCurve::Diurnal {
            base_qps: 3_000.0,
            amplitude: 0.5,
            period_ns: 40_000_000,
        },
        policy: BatchPolicy::Deadline {
            max_batch: 8,
            max_wait_ns: 500_000,
        },
        sla_ns: 6_000_000,
        shed_unmeetable: true,
        seed: 41,
        publish: Some(PublishCadence::new(10_000_000, 2_000_000)),
        popularity_shift: None,
    };
    let bursty = TenantSpec {
        name: "bursty".to_string(),
        weight: 1,
        queries: 400,
        arrivals: RateCurve::FlashCrowd {
            base_qps: 1_000.0,
            spike_qps: 60_000.0,
            start_ns: 5_000_000,
            duration_ns: 10_000_000,
        },
        policy: BatchPolicy::Adaptive(AdaptiveBatcher::new(4_000_000, 16, 400_000)),
        sla_ns: 4_000_000,
        shed_unmeetable: true,
        seed: 43,
        publish: Some(PublishCadence::new(10_000_000, 7_000_000)),
        popularity_shift: Some(PopularityShift {
            at_ns: 10_000_000,
            rotation: 48,
        }),
    };
    let mut tenants: Vec<Tenant> = [steady, bursty]
        .into_iter()
        .map(|spec| {
            let model = tensor_casting::dlrm::Dlrm::new(config.clone(), 100 + spec.weight)
                .expect("valid tenant model");
            let wl = workload(spec.seed);
            Tenant::new(spec, &model, wl)
        })
        .collect();
    let fleet = run_fleet(
        &mut tenants,
        &FleetConfig {
            cost: PoolCostModel {
                batch_overhead_ns: 50_000,
                ns_per_sample: 25_000,
            },
            ..FleetConfig::default()
        },
    )?;
    for t in &fleet.tenants {
        println!(
            "  tenant {:<7} w{}  {:>8.0} qps  p99 {:>6.2} ms  sla-viol {:>5.1}%  \
             shed {:>5.1}%  pool share {:>5.1}%  {} snapshot publishes",
            t.name,
            t.weight,
            t.serve.qps(),
            t.serve.latency.p99_ns() as f64 / 1e6,
            100.0 * t.serve.sla_violation_rate(),
            100.0 * t.serve.shed_rate(),
            100.0 * t.pool_share,
            t.publishes,
        );
    }
    println!(
        "  fleet rollup: {} queries in {:.1} simulated ms, model age p99 {:.2} ms \
         ({} shed fleet-wide)",
        fleet.fleet.queries,
        fleet.span_ns as f64 / 1e6,
        fleet.freshness.p99_model_age_ns() as f64 / 1e6,
        fleet.fleet.shed,
    );
    println!(
        "  (pool-time shares, tails and shed counts replay bit-identically for these \
         specs — see tests/fleet.rs)"
    );
    Ok(())
}

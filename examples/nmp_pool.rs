//! Drive the NMP disaggregated pool (Fig. 10/11) through a full
//! embedding-training step and report per-operation effective bandwidth
//! from the cycle-level DRAM model.
//!
//! ```sh
//! cargo run --release --example nmp_pool
//! ```

use tensor_casting::core::tensor_casting;
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::embedding::{gather_reduce, EmbeddingTable};
use tensor_casting::nmp::{NmpPool, PoolConfig};
use tensor_casting::tensor::{Matrix, SplitMix64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-channel pool (a quarter of Table I) so the example runs in
    // seconds; bandwidths scale linearly with channels.
    let config = PoolConfig::small(8);
    println!(
        "pool: {} channels x {:.1} GB/s = {:.1} GB/s peak\n",
        config.channels,
        config.channel.peak_bandwidth_gbps(),
        config.peak_bandwidth_gbps()
    );
    let mut pool = NmpPool::new(config);

    // A Criteo-skewed table: 50k rows, dim 64 (4 x 64 B slices).
    let table = EmbeddingTable::seeded(50_000, 64, 3);
    let handle = pool.load_table(&table)?;
    let workload = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(50_000),
        10,
    );
    let index = workload.generator(11).next_batch(512);
    println!(
        "workload: batch 512 x pooling 10 = {} lookups, {} unique rows",
        index.len(),
        index.unique_src_count()
    );

    // Forward gather-reduce on the pool; verify against the host kernel.
    let (pooled, exec) = pool.gather_reduce(handle, &index)?;
    assert!(pooled.max_abs_diff(&gather_reduce(&table, &index)?)? < 1e-5);
    println!(
        "gather-reduce : {:>9.1} us on {} channels, {:.1} GB/s effective",
        exec.nanoseconds / 1e3,
        exec.channels_used,
        exec.effective_bandwidth_gbps()
    );

    // Backward: casted gather-reduce over the gradient table, then the
    // scatter, both on the same NMP datapath (the paper's unification).
    let mut grads = Matrix::zeros(512, 64);
    let mut rng = SplitMix64::new(5);
    for v in grads.as_mut_slice() {
        *v = rng.next_range(-0.5, 0.5);
    }
    let casted = tensor_casting(&index);
    let (coalesced, exec) = pool.casted_gather_reduce(handle, &grads, &casted)?;
    println!(
        "casted gather : {:>9.1} us on {} channels, {:.1} GB/s effective",
        exec.nanoseconds / 1e3,
        exec.channels_used,
        exec.effective_bandwidth_gbps()
    );

    let exec = pool.scatter_sgd(handle, &coalesced, 0.05, true)?;
    println!(
        "scatter (SGD) : {:>9.1} us on {} channels, {:.1} GB/s effective",
        exec.nanoseconds / 1e3,
        exec.channels_used,
        exec.effective_bandwidth_gbps()
    );

    let busy = pool.busy_cycles();
    println!("\nper-channel busy cycles: {busy:?}");
    println!("every channel of the table's group participated in all three primitives —");
    println!("one gather-scatter datapath covers forward AND backward, the paper's key architectural point.");
    Ok(())
}

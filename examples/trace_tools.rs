//! Record a dataset-driven lookup trace to disk, replay it through both
//! backward paths, and checkpoint the resulting model — the
//! record/replay/resume workflow of a production training pipeline.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use tensor_casting::core::{casted_gather_reduce, tensor_casting};
use tensor_casting::datasets::SyntheticCtr;
use tensor_casting::datasets::{trace, DatasetPreset};
use tensor_casting::dlrm::checkpoint;
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, Trainer};
use tensor_casting::embedding::gradient_expand_coalesce;
use tensor_casting::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record: 5 iterations of Criteo-like lookups for one table.
    let workload = DatasetPreset::CriteoKaggle
        .table_workload(10)
        .with_rows(50_000);
    let mut buf = Vec::new();
    trace::record_trace(&mut buf, &workload, 512, 5, 42)?;
    println!(
        "recorded 5 batches x 512 samples x 10 lookups = {} bytes ({} per lookup)",
        buf.len(),
        buf.len() / (5 * 512 * 10)
    );

    // 2. Replay: both backward paths over the recorded trace must agree.
    let batches = trace::read_trace(&mut buf.as_slice())?;
    for (i, index) in batches.iter().enumerate() {
        let grads = Matrix::filled(index.num_outputs(), 64, 0.01);
        let baseline = gradient_expand_coalesce(&grads, index)?;
        let casted = casted_gather_reduce(&grads, &tensor_casting(index))?;
        assert_eq!(baseline.grads().as_slice(), casted.grads().as_slice());
        println!(
            "batch {i}: {} lookups -> {} coalesced rows, paths identical ✓",
            index.len(),
            baseline.len()
        );
    }

    // 3. Train briefly and checkpoint; restore into a fresh model.
    let config = DlrmConfig::tiny();
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 3);
    let mut trainer = Trainer::new(config.clone(), BackwardMode::Casted, 9)?;
    for _ in 0..5 {
        trainer.step(&data.next_batch(64))?;
    }
    let mut ckpt = Vec::new();
    checkpoint::save_checkpoint(&mut ckpt, trainer.model())?;
    println!(
        "\ncheckpoint: {} bytes for {} parameters",
        ckpt.len(),
        trainer.model().parameter_count()
    );

    let mut restored = tensor_casting::dlrm::Dlrm::new(config, 777)?;
    checkpoint::load_checkpoint(&mut ckpt.as_slice(), &mut restored)?;
    let probe = data.next_batch(32);
    let a = trainer.model().predict(&probe.dense, &probe.indices)?;
    let b = restored.predict(&probe.dense, &probe.indices)?;
    assert_eq!(a.as_slice(), b.as_slice());
    println!("restored model predicts identically ✓");
    Ok(())
}

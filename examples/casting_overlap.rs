//! Demonstrate the Section IV-B runtime: the casting stage runs on a
//! pipeline worker *while forward propagation executes*, so backward
//! finds the casted index arrays already waiting (Fig. 9b).
//!
//! ```sh
//! cargo run --release --example casting_overlap
//! ```

use std::time::Instant;
use tensor_casting::core::{casted_gather_reduce, tensor_casting, CastingPipeline};
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::embedding::{gather_reduce, EmbeddingTable, IndexArray};
use tensor_casting::tensor::Matrix;

const TABLES: usize = 8;
const BATCH: usize = 2048;
const POOLING: usize = 20;

fn make_workload() -> (Vec<EmbeddingTable>, Vec<IndexArray>) {
    let spec = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(100_000),
        POOLING,
    );
    let tables: Vec<EmbeddingTable> = (0..TABLES)
        .map(|i| EmbeddingTable::seeded(100_000, 32, i as u64))
        .collect();
    let indices: Vec<IndexArray> = (0..TABLES)
        .map(|i| spec.generator(100 + i as u64).next_batch(BATCH))
        .collect();
    (tables, indices)
}

fn forward(tables: &[EmbeddingTable], indices: &[IndexArray]) -> Vec<Matrix> {
    tables
        .iter()
        .zip(indices)
        .map(|(t, i)| gather_reduce(t, i).expect("valid workload"))
        .collect()
}

fn main() {
    let (tables, indices) = make_workload();
    let grads = Matrix::filled(BATCH, 32, 0.01);

    // --- Synchronous casting: Algorithm 2 sits on the backward path. ---
    let t0 = Instant::now();
    let _pooled = forward(&tables, &indices);
    let fwd = t0.elapsed();
    let t0 = Instant::now();
    let casted_sync: Vec<_> = indices.iter().map(tensor_casting).collect();
    let casting = t0.elapsed();
    let t0 = Instant::now();
    for (c, idx) in casted_sync.iter().zip(&indices) {
        let _ = idx;
        casted_gather_reduce(&grads, c).expect("valid casted arrays");
    }
    let backward = t0.elapsed();
    println!("synchronous : forward {fwd:>9.2?} | casting {casting:>9.2?} (exposed) | casted backward {backward:>9.2?}");
    let sync_total = fwd + casting + backward;

    // --- Pipelined casting: submitted before forward, collected after. ---
    let mut pipeline = CastingPipeline::new();
    let t0 = Instant::now();
    let ticket = pipeline.submit(indices.clone());
    let _pooled = forward(&tables, &indices);
    let fwd = t0.elapsed();
    let t0 = Instant::now();
    let casted = pipeline.collect(ticket);
    let exposed = t0.elapsed();
    let t0 = Instant::now();
    for c in &casted {
        casted_gather_reduce(&grads, c).expect("valid casted arrays");
    }
    let backward = t0.elapsed();
    println!("pipelined   : forward {fwd:>9.2?} | casting {exposed:>9.2?} (exposed) | casted backward {backward:>9.2?}");
    let pipe_total = fwd + exposed + backward;

    let stats = pipeline.stats();
    println!(
        "\npipeline hid {:.0}% of the casting work under forward propagation",
        100.0 * stats.hidden_fraction()
    );
    println!(
        "iteration critical path: {sync_total:.2?} -> {pipe_total:.2?} ({:.2}x)",
        sync_total.as_secs_f64() / pipe_total.as_secs_f64()
    );
}

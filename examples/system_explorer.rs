//! Interactive-ish system-model explorer: evaluate any (model, batch,
//! dim, dataset) point across all design points from environment
//! variables — the "what if" tool for the cost model.
//!
//! ```sh
//! cargo run --release --example system_explorer
//! MODEL=RM2 BATCH=16384 DIM=128 DATASET=movielens cargo run --release --example system_explorer
//! ```

use tensor_casting::datasets::DatasetPreset;
use tensor_casting::system::{
    build_timeline, energy_joules, render_table, render_timeline, Calibration, DesignPoint,
    RmModel, SystemWorkload,
};

fn env(name: &str, default: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let model = match env("MODEL", "RM1").to_uppercase().as_str() {
        "RM2" => RmModel::rm2(),
        "RM3" => RmModel::rm3(),
        "RM4" => RmModel::rm4(),
        _ => RmModel::rm1(),
    };
    let batch: usize = env("BATCH", "2048").parse().unwrap_or(2048);
    let dim: usize = env("DIM", "64").parse().unwrap_or(64);
    let dataset = match env("DATASET", "criteo").to_lowercase().as_str() {
        "random" => DatasetPreset::Random,
        "amazon" => DatasetPreset::AmazonBooks,
        "movielens" => DatasetPreset::MovieLens20M,
        "alibaba" => DatasetPreset::AlibabaUserBehavior,
        _ => DatasetPreset::CriteoKaggle,
    };

    let cal = Calibration::default();
    let wl = SystemWorkload::build_with_dataset(model, batch, dim, dataset, 42);
    println!(
        "workload: {} | batch {} | dim {} | {} locality | {} lookups/table, {} unique\n",
        wl.model.name,
        wl.batch,
        wl.dim,
        wl.dataset.name(),
        wl.lookups_per_table(),
        wl.unique_per_table
    );

    let base = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal);
    let mut rows = Vec::new();
    for dp in DesignPoint::ALL {
        let e = dp.evaluate(&wl, &cal);
        let energy = energy_joules(&e, &cal);
        rows.push(vec![
            dp.name().to_string(),
            format!("{:.3} ms", e.total_ns / 1e6),
            format!("{:.2}x", base.total_ns / e.total_ns),
            format!("{:.0}%", 100.0 * e.embedding_backward_fraction()),
            if dp.devices().contains(&tensor_casting::system::Device::Nmp) {
                format!("{:.0}%", 100.0 * e.nmp_utilization())
            } else {
                "-".into()
            },
            format!("{:.2} J", energy.total()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "design point",
                "iteration",
                "speedup",
                "emb-bwd share",
                "NMP util",
                "energy"
            ],
            &rows,
        )
    );

    println!("Ours(NMP) timeline:");
    let events = build_timeline(DesignPoint::OursNmp, &wl, &cal);
    println!("{}", render_timeline(&events, 90));
}

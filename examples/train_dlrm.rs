//! Train a scaled-down RM1 (Table II architecture) on synthetic
//! Criteo-like CTR data, with both embedding-backward implementations,
//! and report the real wall-clock phase breakdown — this repository's
//! version of the paper's "prototyped on a real CPU-GPU system"
//! measurement. The casted run also reports the pipeline's Fig. 9b
//! overlap metrics (hidden fraction / exposed wait), and a second
//! experiment runs the cross-batch `TrainLoop` driver at lookahead
//! depth 0 vs 2 to show the exposed-wait collapse.
//!
//! ```sh
//! cargo run --release --example train_dlrm
//! ```

use std::time::Duration;
use tensor_casting::datasets::{PrefetchSource, SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{
    AdaptiveDepth, BackwardMode, DepthPolicy, DlrmConfig, PhaseTimings, TrainLoop, Trainer,
};

const STEPS: usize = 30;
const BATCH: usize = 256;

struct RunResult {
    loss_before: f32,
    loss_after: f32,
    timings: PhaseTimings,
    /// Casting the pipeline could not hide (casted mode only).
    exposed_wait: Duration,
    /// Fraction of casting hidden under forward propagation.
    hidden_fraction: f64,
}

fn run(mode: BackwardMode) -> Result<RunResult, Box<dyn std::error::Error>> {
    let config = DlrmConfig::rm1_scaled(20_000);
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 7);
    let mut trainer = Trainer::new(config, mode, 99)?;
    // RM1's pooling factor of 80 makes the pooled embeddings (sums of 80
    // rows) large; 0.1 diverges to NaN within ~30 steps. 0.02 is stable.
    trainer.set_learning_rate(0.02);

    let eval = data.next_batch(512);
    let loss_before = trainer.evaluate(&eval)?;
    let mut total = PhaseTimings::default();
    let mut exposed_wait = Duration::ZERO;
    for _ in 0..STEPS {
        let report = trainer.step(&data.next_batch(BATCH))?;
        total += report.timings;
        exposed_wait += report.exposed_cast_wait;
    }
    let loss_after = trainer.evaluate(&eval)?;
    let hidden_fraction = trainer
        .pipeline_stats()
        .map(|s| s.hidden_fraction())
        .unwrap_or(1.0);
    Ok(RunResult {
        loss_before,
        loss_after,
        timings: total,
        exposed_wait,
        hidden_fraction,
    })
}

fn pct(d: Duration, total: Duration) -> f64 {
    100.0 * d.as_secs_f64() / total.as_secs_f64()
}

/// The Fig. 9b experiment: the same casted model trained through the
/// cross-batch `TrainLoop` at lookahead depth 0 (casting overlaps only
/// its own step) vs depth 2 (casting runs two steps ahead).
///
/// RM1's wide MLPs give depth-0 casting a long forward window to hide
/// under, so this experiment keeps RM1's ten 80-gather tables (casting's
/// input volume) but shrinks the dense stack — the casting-bound,
/// short-window regime where the paper's runtime needs future batches to
/// keep the casting unit busy.
fn lookahead_collapse() -> Result<(), Box<dyn std::error::Error>> {
    const LOOKAHEAD_BATCH: usize = 128;
    const LOOKAHEAD_STEPS: usize = 120;
    println!(
        "\n== cross-batch lookahead (casted, RM1 tables + lean MLPs, batch {LOOKAHEAD_BATCH}, \
         {LOOKAHEAD_STEPS} steps) =="
    );
    let mut losses = Vec::new();
    for depth in [0usize, 2] {
        let mut config = DlrmConfig::rm1_scaled(20_000);
        config.embedding_dim = 8;
        config.bottom_mlp = vec![8];
        config.top_mlp = vec![8, 1];
        let source_data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 7);
        let mut source = SyntheticSource::new(source_data, LOOKAHEAD_BATCH);
        let mut trainer = Trainer::new(config, BackwardMode::Casted, 99)?;
        trainer.set_learning_rate(0.02);
        let mut driver = TrainLoop::new(trainer, depth);
        let summary = driver.run(&mut source, LOOKAHEAD_STEPS)?;
        println!(
            "  depth {depth}: exposed wait {:>9.2?} total ({:>7.0} ns/step), \
             casting {:.1}% hidden",
            summary.exposed_cast_wait,
            summary.exposed_cast_wait.as_secs_f64() * 1e9 / summary.steps as f64,
            100.0 * summary.hidden_fraction(),
        );
        losses.push(summary.losses);
    }
    assert_eq!(
        losses[0], losses[1],
        "depth-2 lookahead must be bit-identical to depth 0"
    );
    println!("  identical per-step losses at both depths ✓ (lookahead only moves casting)");
    Ok(())
}

/// The closed control loop + background generation: the same
/// casting-bound run, but the lookahead depth is chosen at run time by
/// the AIMD `DepthController` from measured exposed waits, and batch
/// generation moves onto a `PrefetchSource` producer thread. Both are
/// observation-only — the trajectory matches the inline fixed-depth run
/// bit for bit.
fn adaptive_prefetched_run() -> Result<(), Box<dyn std::error::Error>> {
    const BATCH: usize = 128;
    const STEPS: usize = 120;
    println!("\n== adaptive lookahead + prefetched generation (batch {BATCH}, {STEPS} steps) ==");
    let mut config = DlrmConfig::rm1_scaled(20_000);
    config.embedding_dim = 8;
    config.bottom_mlp = vec![8];
    config.top_mlp = vec![8, 1];
    let mk_source = || {
        SyntheticSource::new(
            SyntheticCtr::new(config.table_workloads(), config.dense_features, 7),
            BATCH,
        )
    };
    let mk_trainer = || -> Result<Trainer, Box<dyn std::error::Error>> {
        let mut t = Trainer::new(config.clone(), BackwardMode::Casted, 99)?;
        t.set_learning_rate(0.02);
        Ok(t)
    };

    // Reference: fixed depth 2, inline generation.
    let mut fixed = TrainLoop::new(mk_trainer()?, 2);
    let mut inline_source = mk_source();
    let fixed_summary = fixed.run(&mut inline_source, STEPS)?;

    // Adaptive depth over a prefetched source.
    let policy = DepthPolicy::Adaptive(AdaptiveDepth::new(0, 8));
    let mut adaptive = TrainLoop::with_policy(mk_trainer()?, policy);
    let mut prefetched_source = PrefetchSource::new(mk_source(), 3);
    let summary = adaptive.run(&mut prefetched_source, STEPS)?;
    let stats = prefetched_source.stats();

    println!(
        "  fixed depth 2, inline gen:     {:.1}% hidden, gen wait {:>9.2?} total",
        100.0 * fixed_summary.hidden_fraction(),
        fixed_summary.batch_wait,
    );
    println!(
        "  adaptive (mean depth {:.1}, final {}), prefetched gen: {:.1}% hidden, \
         gen wait {:>9.2?} total (producer made {} batches, queue high-water {})",
        summary.mean_depth(),
        summary.final_depth(),
        100.0 * summary.hidden_fraction(),
        summary.batch_wait,
        stats.produced,
        stats.max_ready,
    );
    assert_eq!(
        summary.losses, fixed_summary.losses,
        "adaptive depth + prefetch must be bit-identical to the fixed inline run"
    );
    println!("  identical per-step losses ✓ (adaptation and prefetch are observation-only)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "training RM1 (10 tables x 80 gathers, 20k rows/table) for {STEPS} steps @ batch {BATCH}\n"
    );
    let mut results = Vec::new();
    for (name, mode) in [
        ("baseline expand-coalesce", BackwardMode::Baseline),
        ("tensor casting", BackwardMode::Casted),
    ] {
        let r = run(mode)?;
        let t = r.timings;
        let total = t.total();
        println!("== {name} ==");
        println!("  loss: {:.4} -> {:.4}", r.loss_before, r.loss_after);
        println!("  wall-clock: {:.2?} total", total);
        println!(
            "    fwd gather {:>5.1}% | fwd dnn {:>5.1}% | bwd dnn {:>5.1}% | bwd embedding {:>5.1}% | scatter {:>5.1}%",
            pct(t.fwd_gather, total),
            pct(t.fwd_dnn, total),
            pct(t.bwd_dnn, total),
            pct(t.bwd_embedding, total),
            pct(t.bwd_scatter, total),
        );
        println!(
            "    embedding backprop share: {:.0}% (paper: 62-92% on CPU-centric systems)",
            100.0 * t.embedding_backward_fraction()
        );
        if mode == BackwardMode::Casted {
            println!(
                "    casting pipeline: {:.1}% hidden under forward, {:.2?} exposed \
                 (Fig. 9b: 1.0 hidden is the ideal)",
                100.0 * r.hidden_fraction,
                r.exposed_wait,
            );
        }
        println!();
        results.push((name, r.loss_after, total));
    }
    let (_, loss_a, t_base) = results[0];
    let (_, loss_b, t_cast) = results[1];
    assert_eq!(
        loss_a, loss_b,
        "the two backward paths must train identically"
    );
    println!(
        "identical final loss ✓ — and the casted backward ran {:.2}x faster end-to-end",
        t_base.as_secs_f64() / t_cast.as_secs_f64()
    );

    lookahead_collapse()?;
    adaptive_prefetched_run()
}

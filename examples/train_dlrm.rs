//! Train a scaled-down RM1 (Table II architecture) on synthetic
//! Criteo-like CTR data, with both embedding-backward implementations,
//! and report the real wall-clock phase breakdown — this repository's
//! version of the paper's "prototyped on a real CPU-GPU system"
//! measurement.
//!
//! ```sh
//! cargo run --release --example train_dlrm
//! ```

use std::time::Duration;
use tensor_casting::datasets::SyntheticCtr;
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, PhaseTimings, Trainer};

const STEPS: usize = 30;
const BATCH: usize = 256;

fn run(mode: BackwardMode) -> Result<(f32, f32, PhaseTimings), Box<dyn std::error::Error>> {
    let config = DlrmConfig::rm1_scaled(20_000);
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 7);
    let mut trainer = Trainer::new(config, mode, 99)?;
    // RM1's pooling factor of 80 makes the pooled embeddings (sums of 80
    // rows) large; 0.1 diverges to NaN within ~30 steps. 0.02 is stable.
    trainer.set_learning_rate(0.02);

    let eval = data.next_batch(512);
    let before = trainer.evaluate(&eval)?;
    let mut total = PhaseTimings::default();
    for _ in 0..STEPS {
        let report = trainer.step(&data.next_batch(BATCH))?;
        total.fwd_gather += report.timings.fwd_gather;
        total.fwd_dnn += report.timings.fwd_dnn;
        total.bwd_dnn += report.timings.bwd_dnn;
        total.bwd_embedding += report.timings.bwd_embedding;
        total.bwd_scatter += report.timings.bwd_scatter;
    }
    let after = trainer.evaluate(&eval)?;
    Ok((before, after, total))
}

fn pct(d: Duration, total: Duration) -> f64 {
    100.0 * d.as_secs_f64() / total.as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "training RM1 (10 tables x 80 gathers, 20k rows/table) for {STEPS} steps @ batch {BATCH}\n"
    );
    let mut results = Vec::new();
    for (name, mode) in [
        ("baseline expand-coalesce", BackwardMode::Baseline),
        ("tensor casting", BackwardMode::Casted),
    ] {
        let (before, after, t) = run(mode)?;
        let total = t.total();
        println!("== {name} ==");
        println!("  loss: {before:.4} -> {after:.4}");
        println!("  wall-clock: {:.2?} total", total);
        println!(
            "    fwd gather {:>5.1}% | fwd dnn {:>5.1}% | bwd dnn {:>5.1}% | bwd embedding {:>5.1}% | scatter {:>5.1}%",
            pct(t.fwd_gather, total),
            pct(t.fwd_dnn, total),
            pct(t.bwd_dnn, total),
            pct(t.bwd_embedding, total),
            pct(t.bwd_scatter, total),
        );
        println!(
            "    embedding backprop share: {:.0}% (paper: 62-92% on CPU-centric systems)\n",
            100.0 * t.embedding_backward_fraction()
        );
        results.push((name, after, total));
    }
    let (_, loss_a, t_base) = results[0];
    let (_, loss_b, t_cast) = results[1];
    assert_eq!(
        loss_a, loss_b,
        "the two backward paths must train identically"
    );
    println!(
        "identical final loss ✓ — and the casted backward ran {:.2}x faster end-to-end",
        t_base.as_secs_f64() / t_cast.as_secs_f64()
    );
    Ok(())
}

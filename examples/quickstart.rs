//! Quickstart: the Tensor Casting algorithm on the paper's running
//! example (Figs. 2, 7, 8), end to end in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tensor_casting::core::{casted_gather_reduce, tensor_casting, verify_equivalence};
use tensor_casting::embedding::{
    gather_reduce, gradient_expand_coalesce, optim::Sgd, scatter_apply, EmbeddingTable, IndexArray,
};
use tensor_casting::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2a: a 6-row embedding table; batch of 2 samples, sample 0
    // gathers rows {1,2,4}, sample 1 gathers rows {0,2}.
    let mut table = EmbeddingTable::seeded(6, 4, 42);
    let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;

    // Forward: fused tensor gather-reduce.
    let pooled = gather_reduce(&table, &index)?;
    println!("pooled embeddings ({}x{}):", pooled.rows(), pooled.cols());
    for r in 0..pooled.rows() {
        println!("  batch {r}: {:?}", pooled.row(r));
    }

    // Pretend the DNN backpropagated these gradients (Fig. 2b).
    let grads = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0], &[2.0, 2.0, 2.0, 2.0]])?;

    // Baseline backward: expand -> coalesce (Algorithm 1).
    let baseline = gradient_expand_coalesce(&grads, &index)?;

    // Tensor Casting backward: Algorithm 2 transforms the index array...
    let casted = tensor_casting(&index);
    println!("\nAlgorithm 2 (Fig. 8):");
    println!(
        "  casted src (gather from gradient table): {:?}",
        casted.gather_src()
    );
    println!(
        "  casted dst (reduce into coalesced rows): {:?}",
        casted.reduce_dst()
    );
    println!(
        "  touched table rows:                      {:?}",
        casted.unique_rows()
    );

    // ...and Algorithm 3 computes the same coalesced gradients in one
    // fused gather-reduce, with no expanded intermediate and no sort on
    // the backward critical path.
    let fused = casted_gather_reduce(&grads, &casted)?;
    assert_eq!(baseline.grads().as_slice(), fused.grads().as_slice());
    println!("\ncasted gather-reduce == expand-coalesce: bit-identical ✓");
    println!("max |diff| = {}", verify_equivalence(&grads, &index)?);

    // Scatter the coalesced gradients back into the table (SGD).
    scatter_apply(&mut table, &fused, &mut Sgd::new(0.1))?;
    println!(
        "\nrow E[2] after update (received G[0]+G[1]): {:?}",
        table.row(2)
    );
    Ok(())
}

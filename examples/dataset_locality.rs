//! Explore how dataset popularity skew drives gradient coalescing — the
//! Fig. 5 analysis as a runnable example. More skew (hotter heads) means
//! more duplicate lookups per batch, smaller coalesced gradients, and a
//! bigger win for Tensor Casting's fused backward.
//!
//! ```sh
//! cargo run --release --example dataset_locality
//! ```

use tensor_casting::datasets::{CoalesceStats, DatasetPreset};
use tensor_casting::system::{render_table, Calibration, DesignPoint, RmModel, SystemWorkload};

fn main() {
    println!("coalescing behaviour by dataset (batch 2048, pooling 10, 200k-row tables):\n");
    let mut rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let workload = preset.table_workload(10).with_rows(200_000);
        let s = CoalesceStats::measure(&workload, 2048, 1);
        rows.push(vec![
            preset.name().to_string(),
            s.expanded.to_string(),
            s.coalesced.to_string(),
            format!("{:.0}%", 100.0 * s.coalesce_savings()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["dataset", "expanded rows", "coalesced rows", "savings"],
            &rows
        )
    );

    println!("and its downstream effect on end-to-end speedup (RM1, batch 2048):\n");
    let cal = Calibration::default();
    let mut rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let wl = SystemWorkload::build_with_dataset(RmModel::rm1(), 2048, 64, preset, 1);
        let base = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal);
        let ours_cpu = DesignPoint::OursCpu.evaluate(&wl, &cal);
        let ours_nmp = DesignPoint::OursNmp.evaluate(&wl, &cal);
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.2}x", base.total_ns / ours_cpu.total_ns),
            format!("{:.2}x", base.total_ns / ours_nmp.total_ns),
        ]);
    }
    println!(
        "{}",
        render_table(&["dataset locality", "Ours(CPU)", "Ours(NMP)"], &rows)
    );
    println!("note: every dataset benefits; locality shifts where the time goes (scatter vs gather-reduce), not whether casting helps.");
}

//! Smoke tests: the full Table II architectures (at reduced cardinality)
//! train end to end through both backward paths, including a multi-hot
//! variable-pooling stream — the closest this repository comes to the
//! paper's real-system prototype runs.

use tensor_casting::core::{casted_gather_reduce, tensor_casting};
use tensor_casting::datasets::{DatasetPreset, SyntheticCtr};
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, Trainer};
use tensor_casting::embedding::gradient_expand_coalesce;
use tensor_casting::tensor::Matrix;

#[test]
fn rm1_architecture_trains_in_both_modes() {
    // RM1: 10 tables x 80 gathers — heavy pooling, small MLPs.
    let config = DlrmConfig::rm1_scaled(5_000);
    let mut base = Trainer::new(config.clone(), BackwardMode::Baseline, 3).unwrap();
    let mut cast = Trainer::new(config.clone(), BackwardMode::Casted, 3).unwrap();
    let mut sa = SyntheticCtr::new(config.table_workloads(), config.dense_features, 8);
    let mut sb = SyntheticCtr::new(config.table_workloads(), config.dense_features, 8);
    for _ in 0..2 {
        let ra = base.step(&sa.next_batch(32)).unwrap();
        let rb = cast.step(&sb.next_batch(32)).unwrap();
        assert_eq!(ra.loss, rb.loss);
        assert!(ra.loss.is_finite());
        // Pooling factor 80: embedding phases dominate the real wall
        // clock, echoing the paper's Fig. 4 for RM1.
        assert!(
            ra.timings.embedding_backward_fraction() > 0.2,
            "embedding backward fraction {}",
            ra.timings.embedding_backward_fraction()
        );
    }
    for i in 0..base.model().num_tables() {
        assert_eq!(
            base.model()
                .table(i)
                .max_abs_diff(cast.model().table(i))
                .unwrap(),
            0.0
        );
    }
}

#[test]
fn rm3_architecture_trains() {
    // RM3: MLP-heavy stacks; exercises the wide bottom MLP.
    let config = DlrmConfig::rm3_scaled(2_000);
    let mut trainer = Trainer::new(config.clone(), BackwardMode::Casted, 5).unwrap();
    let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 11);
    let report = trainer.step(&data.next_batch(16)).unwrap();
    assert!(report.loss.is_finite());
    assert_eq!(trainer.steps(), 1);
}

#[test]
fn multihot_streams_preserve_equivalence() {
    // Variable pooling per sample: the casted path must handle ragged
    // index arrays identically to the baseline.
    let workload = DatasetPreset::CriteoKaggle
        .table_workload(8)
        .with_rows(10_000);
    let mut gen = workload.generator(21);
    for trial in 0..5 {
        let index = gen.next_batch_multihot(128);
        let mut grads = Matrix::zeros(128, 32);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 37 + trial) % 19) as f32 * 0.05 - 0.4;
        }
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        let casted = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
        assert_eq!(baseline.rows(), casted.rows(), "trial {trial}");
        assert_eq!(
            baseline.grads().as_slice(),
            casted.grads().as_slice(),
            "trial {trial}"
        );
    }
}

//! `evaluate_ctr`'s rank-based ROC-AUC against a brute-force O(n^2)
//! pairwise reference, including tie-heavy and single-class inputs.
//!
//! AUC is the probability a random positive outranks a random negative,
//! ties counted half: `sum over (pos, neg) pairs of [s_p > s_n] + 0.5 *
//! [s_p == s_n], / (P * N)`. The production implementation computes it
//! in O(n log n) via midranks (Mann-Whitney U); this suite pins the two
//! definitions together over adversarial score distributions — heavy
//! ties are exactly where midrank bookkeeping goes wrong.

use proptest::prelude::*;
use tensor_casting::dlrm::evaluate_ctr;
use tensor_casting::tensor::{Matrix, SplitMix64};

/// The O(n^2) definition, straight from the probability statement.
fn pairwise_auc(scores: &[f32], labels: &[bool]) -> Option<f64> {
    let pos: Vec<f32> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &y)| y)
        .map(|(&s, _)| s)
        .collect();
    let neg: Vec<f32> = scores
        .iter()
        .zip(labels)
        .filter(|(_, &y)| !y)
        .map(|(&s, _)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    let mut acc = 0.0f64;
    for &p in &pos {
        for &n in &neg {
            acc += if p > n {
                1.0
            } else if p == n {
                0.5
            } else {
                0.0
            };
        }
    }
    Some(acc / (pos.len() as f64 * neg.len() as f64))
}

fn run_case(scores: Vec<f32>, labels: Vec<bool>) -> (Option<f64>, Option<f64>) {
    let n = scores.len();
    let logits = Matrix::from_vec(n, 1, scores.clone()).unwrap();
    let label_m = Matrix::from_vec(
        n,
        1,
        labels.iter().map(|&y| if y { 1.0 } else { 0.0 }).collect(),
    )
    .unwrap();
    let fast = evaluate_ctr(&logits, &label_m).auc;
    let slow = pairwise_auc(&scores, &labels);
    (fast, slow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Continuous scores (ties unlikely): the definitions agree.
    #[test]
    fn auc_matches_pairwise_reference_on_continuous_scores(
        seed in 1u64..10_000,
        n in 2usize..120,
    ) {
        let mut rng = SplitMix64::new(seed);
        let scores: Vec<f32> = (0..n).map(|_| rng.next_range(-4.0, 4.0)).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.next_f32() < 0.5).collect();
        let (fast, slow) = run_case(scores, labels);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let (Some(a), Some(b)) = (fast, slow) {
            prop_assert!((a - b).abs() < 1e-9, "fast {} vs reference {}", a, b);
        }
    }

    /// Quantized scores: many exact ties, the midrank stress case.
    #[test]
    fn auc_matches_pairwise_reference_under_heavy_ties(
        seed in 1u64..10_000,
        n in 2usize..100,
        levels in 1u64..6,
    ) {
        let mut rng = SplitMix64::new(seed);
        // Scores drawn from `levels` distinct values only.
        let scores: Vec<f32> = (0..n).map(|_| rng.next_below(levels) as f32).collect();
        let labels: Vec<bool> = (0..n).map(|_| rng.next_f32() < 0.4) .collect();
        let (fast, slow) = run_case(scores, labels);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let (Some(a), Some(b)) = (fast, slow) {
            prop_assert!((a - b).abs() < 1e-9, "fast {} vs reference {}", a, b);
        }
    }

    /// Single-class batches have no defined AUC in either formulation.
    #[test]
    fn single_class_has_no_auc_in_either_definition(
        seed in 1u64..1000,
        n in 1usize..40,
        positive in any::<bool>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let scores: Vec<f32> = (0..n).map(|_| rng.next_range(-2.0, 2.0)).collect();
        let labels = vec![positive; n];
        let (fast, slow) = run_case(scores, labels);
        prop_assert_eq!(fast, None);
        prop_assert_eq!(slow, None);
    }
}

#[test]
fn all_tied_scores_give_exactly_half() {
    let (fast, slow) = run_case(
        vec![1.5; 10],
        vec![
            true, false, true, false, true, false, true, false, true, false,
        ],
    );
    assert_eq!(fast, Some(0.5));
    assert_eq!(slow, Some(0.5));
}

#[test]
fn two_sample_edge_cases() {
    // One positive above one negative: AUC 1.
    assert_eq!(run_case(vec![2.0, -1.0], vec![true, false]).0, Some(1.0));
    // Below: AUC 0.
    assert_eq!(run_case(vec![-2.0, 1.0], vec![true, false]).0, Some(0.0));
    // Tied: AUC 0.5 from the half-credit rule.
    let (fast, slow) = run_case(vec![3.0, 3.0], vec![true, false]);
    assert_eq!(fast, Some(0.5));
    assert_eq!(slow, Some(0.5));
}

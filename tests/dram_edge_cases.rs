//! DRAM-simulator edge cases: behaviours at the boundaries of the model
//! (refresh interaction with load, write recovery, queue saturation,
//! single-bank pathologies) that the main invariants suite reaches only
//! probabilistically.

use tensor_casting::dram::{
    power, streams, verify, AddressMapping, DramConfig, MemorySystem, Request, RowPolicy,
};

#[test]
fn traffic_spanning_many_refresh_windows_stays_protocol_clean() {
    // A long sequential stream crosses multiple tREFI boundaries; every
    // refresh must black out the rank without breaking any timing rule.
    let cfg = DramConfig::ddr4_3200();
    let mut mem = MemorySystem::new(cfg.clone());
    mem.set_trace_enabled(true);
    let stats = mem.run_trace(streams::sequential_reads(60_000));
    assert!(
        stats.refreshes >= 2,
        "expected multiple refreshes, got {}",
        stats.refreshes
    );
    for trace in mem.take_traces() {
        let v = verify::verify_trace(&trace, &cfg.timing);
        assert!(v.is_empty(), "first violation: {}", v[0]);
    }
    // Refresh steals only a few percent of bandwidth.
    let eff = stats.effective_bandwidth_gbps(&cfg);
    assert!(eff > 0.85 * cfg.peak_bandwidth_gbps());
}

#[test]
fn write_to_read_turnaround_is_respected() {
    // Alternating write/read to the same row exercises tWTR and the bus
    // turnaround; verify cleanliness and that throughput suffers versus
    // a pure stream (turnarounds are not free).
    let cfg = DramConfig::ddr4_3200();
    let mut mixed: Vec<Request> = Vec::new();
    for i in 0..2_000u64 {
        if i % 2 == 0 {
            mixed.push(Request::write(i));
        } else {
            mixed.push(Request::read(i));
        }
    }
    let mut mem = MemorySystem::new(cfg.clone());
    mem.set_trace_enabled(true);
    let mixed_stats = mem.run_trace(mixed);
    for trace in mem.take_traces() {
        let v = verify::verify_trace(&trace, &cfg.timing);
        assert!(v.is_empty(), "first violation: {}", v[0]);
    }
    let pure = MemorySystem::new(cfg.clone())
        .run_trace(streams::sequential_reads(2_000))
        .effective_bandwidth_gbps(&cfg);
    let mixed_bw = mixed_stats.effective_bandwidth_gbps(&cfg);
    assert!(
        mixed_bw < pure,
        "alternating R/W ({mixed_bw:.1}) must trail pure reads ({pure:.1})"
    );
}

#[test]
fn single_bank_hammering_is_trc_bound() {
    // Every access to a different row of ONE bank: throughput collapses
    // to ~64 B per tRC — the worst case the paper's interleaving avoids.
    let cfg = DramConfig::ddr4_3200();
    // Same bank under RowBankColumn: stride one full row-walk.
    let stride = cfg.channels as u64
        * cfg.bankgroups as u64
        * cfg.columns
        * cfg.ranks_per_channel as u64
        * cfg.banks_per_group as u64;
    let reqs: Vec<Request> = (0..200).map(|i| Request::read(i * stride)).collect();
    let mut mem = MemorySystem::new(cfg.clone());
    let stats = mem.run_trace(reqs);
    let cycles_per_access = stats.last_data_cycle as f64 / 200.0;
    assert!(
        cycles_per_access >= cfg.timing.trc as f64 * 0.95,
        "row-conflict stream should pace at ~tRC ({}), got {cycles_per_access:.1}",
        cfg.timing.trc
    );
    assert_eq!(stats.row_conflicts + stats.row_misses, 200);
}

#[test]
fn closed_page_avoids_explicit_precharges() {
    let open = DramConfig::ddr4_3200();
    let closed = DramConfig::ddr4_3200().with_row_policy(RowPolicy::Closed);
    let blocks = open.total_blocks();
    let open_stats = MemorySystem::new(open).run_trace(streams::random_reads(2_000, blocks, 3));
    let closed_stats = MemorySystem::new(closed).run_trace(streams::random_reads(2_000, blocks, 3));
    // Closed page auto-precharges: no explicit PRE commands at all.
    assert_eq!(closed_stats.precharges, 0);
    assert!(open_stats.precharges > 0);
}

#[test]
fn energy_model_charges_row_cycling_for_conflict_streams() {
    let cfg = DramConfig::ddr4_3200().with_mapping(AddressMapping::BankInterleaved);
    let p = power::PowerParams::default();
    let blocks = cfg.total_blocks();
    let conflict_stats =
        MemorySystem::new(cfg.clone()).run_trace(streams::random_reads(2_000, blocks, 5));
    let stream_stats = MemorySystem::new(cfg.clone()).run_trace(streams::sequential_reads(2_000));
    let conflict_e = power::dram_energy(&conflict_stats, &cfg, &p);
    let stream_e = power::dram_energy(&stream_stats, &cfg, &p);
    assert!(conflict_e.act_pre_mj > 3.0 * stream_e.act_pre_mj);
}

#[test]
fn zero_and_single_request_streams() {
    let cfg = DramConfig::ddr4_3200();
    let empty = MemorySystem::new(cfg.clone()).run_trace(Vec::<Request>::new());
    assert_eq!(empty.bytes(), 0);
    let one = MemorySystem::new(cfg.clone()).run_trace(vec![Request::read(0)]);
    assert_eq!(one.reads, 1);
    let t = cfg.timing;
    assert_eq!(one.total_read_latency, t.trcd + t.cl + t.burst_cycles());
}

//! Property suite for the band-parallel optimizer scatter: for any
//! coalesced workload, any band count, and every optimizer, the parallel
//! scatter must be **bit-identical** to the serial scatter — tables and
//! (observably, through multi-step trajectories) optimizer state.
//!
//! This is the scatter-side mirror of the casted-backward equivalence
//! property: coalesced rows are unique, so splitting the `(rows, grads)`
//! arrays into contiguous row bands gives each band a disjoint table
//! slice and a disjoint optimizer-state shard, and the per-row update
//! math is exactly the serial optimizer's.

use proptest::prelude::*;
use std::sync::OnceLock;
use tensor_casting::embedding::{
    optim::{Adagrad, Adam, Momentum, RmsProp, Sgd, SplittableOptimizer},
    scatter_apply_dense, scatter_apply_parallel, EmbeddingError, EmbeddingTable,
};
use tensor_casting::tensor::{Exec, Matrix, Pool, SplitMix64};

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(4))
}

fn optimizers() -> Vec<(&'static str, Box<dyn SplittableOptimizer>)> {
    vec![
        ("sgd", Box::new(Sgd::new(0.1))),
        ("momentum", Box::new(Momentum::new(0.1, 0.9))),
        ("adagrad", Box::new(Adagrad::new(0.1, 1e-8))),
        ("rmsprop", Box::new(RmsProp::new(0.1, 0.9, 1e-8))),
        ("adam", Box::new(Adam::new(0.01, 0.9, 0.999, 1e-8))),
    ]
}

/// Two fresh instances of optimizer `i` (serial twin + pooled twin).
fn optimizer_pair(i: usize) -> (Box<dyn SplittableOptimizer>, Box<dyn SplittableOptimizer>) {
    let a = optimizers().swap_remove(i).1;
    let b = optimizers().swap_remove(i).1;
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial and band-parallel scatter agree bit-for-bit for every
    /// optimizer, across random band counts and workloads including the
    /// empty and single-row ones (raw_rows may collapse to 0 or 1 unique
    /// rows after dedup).
    #[test]
    fn parallel_scatter_is_bit_identical_to_serial(
        table_rows in 1u32..300,
        dim in 1usize..10,
        raw_rows in proptest::collection::vec(any::<u32>(), 0..48),
        threads in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rows: Vec<u32> = raw_rows.iter().map(|r| r % table_rows).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut rng = SplitMix64::new(seed);
        let exec = Exec::Pooled { pool: pool(), threads };
        for i in 0..optimizers().len() {
            let (mut serial_opt, mut pooled_opt) = optimizer_pair(i);
            let name = serial_opt.name();
            let mut serial_table = EmbeddingTable::seeded(table_rows as usize, dim, 1);
            let mut pooled_table = serial_table.clone();
            // Multiple scatters through the SAME optimizer instances:
            // a state divergence in step k corrupts every step after it,
            // so the final-table comparison also certifies the state.
            for _ in 0..3 {
                let mut grads = Matrix::zeros(rows.len(), dim);
                for v in grads.as_mut_slice() {
                    *v = rng.next_range(-1.0, 1.0);
                }
                scatter_apply_dense(&mut serial_table, &rows, &grads, serial_opt.as_mut())
                    .unwrap();
                scatter_apply_parallel(
                    &mut pooled_table,
                    &rows,
                    &grads,
                    pooled_opt.as_mut(),
                    exec,
                )
                .unwrap();
            }
            prop_assert_eq!(
                serial_table.as_slice(),
                pooled_table.as_slice(),
                "{} diverged (rows={}, threads={})",
                name,
                rows.len(),
                threads
            );
        }
    }

    /// Uncoalesced inputs (duplicates or disorder) are rejected, never
    /// silently mis-sharded.
    #[test]
    fn parallel_scatter_rejects_uncoalesced_rows(
        row in 0u32..50,
        swap in any::<bool>(),
    ) {
        let rows = if swap { vec![row + 1, row] } else { vec![row, row] };
        let mut table = EmbeddingTable::zeros(64, 2);
        let grads = Matrix::zeros(2, 2);
        let err = scatter_apply_parallel(
            &mut table,
            &rows,
            &grads,
            &mut Sgd::new(0.1),
            Exec::pooled(pool()),
        )
        .unwrap_err();
        prop_assert!(matches!(err, EmbeddingError::InvalidIndex(_)));
    }
}

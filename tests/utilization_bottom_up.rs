//! Rebuilds Fig. 15 *bottom-up*: the NMP busy times come from the
//! instruction-level pool (real DRAM-command scheduling), the non-NMP
//! phase durations from the calibrated analytic model, and the resulting
//! utilization must agree qualitatively with the top-down system model.

use tensor_casting::core::tensor_casting;
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::embedding::{gradient_expand_coalesce, EmbeddingTable};
use tensor_casting::nmp::{NmpPool, PoolConfig, UtilizationTracker};
use tensor_casting::system::{Calibration, DesignPoint, PhaseKind, RmModel, SystemWorkload};
use tensor_casting::tensor::{Matrix, SplitMix64};

/// One scaled-down RM1-like iteration on a 4-channel pool: 2 tables
/// (dim 64 -> each spans all 4 channels), batch 256, pooling 10.
fn run_iteration(casted_mode: bool) -> (UtilizationTracker, f64) {
    let dim = 64;
    let batch = 256;
    let tables = 2;
    let mut pool = NmpPool::new(PoolConfig::small(4));
    let spec = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(20_000),
        10,
    );
    let mut rng = SplitMix64::new(9);

    // Non-NMP phase durations from the analytic model, scaled to this
    // mini workload: use RM1's DNN/link shares at the same batch.
    let cal = Calibration {
        pool_channels: 4,
        ..Calibration::default()
    };
    let wl = SystemWorkload::build(RmModel::rm1(), batch, dim, 42);
    let eval = DesignPoint::OursNmp.evaluate(&wl, &cal);
    // Per-table scaling: the analytic model covers 10 tables; we run 2.
    let scale = tables as f64 / wl.model.tables as f64;
    let dnn_ns = (eval.phase_ns(PhaseKind::FwdDnn) + eval.phase_ns(PhaseKind::BwdDnn)) * scale;
    let exposed_casting_ns = (eval.casting_total_ns - eval.casting_hidden_ns) * scale;

    let mut tracker = UtilizationTracker::new();
    let mut handles = Vec::new();
    for t in 0..tables {
        let table = EmbeddingTable::seeded(20_000, dim, t as u64);
        handles.push(pool.load_table(&table).unwrap());
    }
    // Forward gathers (pool busy).
    let mut indices = Vec::new();
    for &h in &handles {
        let index = spec.generator(rng.next_u64()).next_batch(batch);
        let (_, exec) = pool.gather_reduce(h, &index).unwrap();
        tracker.record_pool_op(&exec);
        indices.push((h, index));
    }
    // DNN phases + exposed casting (pool idle).
    tracker.record_idle(dnn_ns);
    tracker.record_idle(exposed_casting_ns);

    // Backward.
    for (h, index) in &indices {
        let mut grads = Matrix::zeros(batch, dim);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-0.5, 0.5);
        }
        if casted_mode {
            let casted = tensor_casting(index);
            let (coalesced, exec) = pool.casted_gather_reduce(*h, &grads, &casted).unwrap();
            tracker.record_pool_op(&exec);
            let exec = pool.scatter_sgd(*h, &coalesced, 0.05, true).unwrap();
            tracker.record_pool_op(&exec);
        } else {
            // TensorDIMM baseline: expand-coalesce on the "CPU" (idle for
            // the pool, duration from the analytic model), scatter on the
            // pool.
            let cpu_ec_ns = (eval_baseline_expand_coalesce_ns(&cal, &wl)) * scale;
            tracker.record_idle(cpu_ec_ns);
            let coalesced = gradient_expand_coalesce(&grads, index).unwrap();
            let exec = pool.scatter_sgd(*h, &coalesced, 0.05, false).unwrap();
            tracker.record_pool_op(&exec);
        }
    }
    (tracker, eval.nmp_utilization())
}

fn eval_baseline_expand_coalesce_ns(cal: &Calibration, wl: &SystemWorkload) -> f64 {
    let eval = DesignPoint::BaselineNmp.evaluate(wl, cal);
    eval.phase_ns(PhaseKind::BwdExpand)
        + eval.phase_ns(PhaseKind::BwdCoalesceSort)
        + eval.phase_ns(PhaseKind::BwdCoalesceAccu)
}

#[test]
fn casting_multiplies_bottom_up_utilization() {
    let (casted, _) = run_iteration(true);
    let (baseline, _) = run_iteration(false);
    assert!(
        casted.utilization() > 4.0 * baseline.utilization(),
        "T.Casting {:.1}% vs TensorDIMM {:.1}%",
        100.0 * casted.utilization(),
        100.0 * baseline.utilization()
    );
    // TensorDIMM stays a point accelerator; with casting the pool runs
    // the majority-to-large share of the iteration.
    assert!(baseline.utilization() < 0.25);
    assert!(casted.utilization() > 0.30);
}

#[test]
fn bottom_up_and_top_down_utilization_agree() {
    let (tracker, analytic) = run_iteration(true);
    let bottom_up = tracker.utilization();
    assert!(
        (bottom_up - analytic).abs() < 0.35,
        "bottom-up {bottom_up:.2} vs analytic {analytic:.2}"
    );
}

//! Property tests: the FR-FCFS scheduler never emits an illegal DDR4
//! command sequence, verified from its own command traces by the
//! independent protocol checker in `tcast_dram::verify`.

use proptest::prelude::*;
use tensor_casting::dram::{
    streams, verify, AddressMapping, DramConfig, MemorySystem, Request, RowPolicy,
};

fn run_and_verify(cfg: DramConfig, reqs: Vec<Request>) -> (usize, Vec<String>) {
    let timing = cfg.timing;
    let open_policy = cfg.row_policy == RowPolicy::Open;
    let mut mem = MemorySystem::new(cfg);
    mem.set_trace_enabled(true);
    let stats = mem.run_trace(reqs);
    let mut violations = Vec::new();
    for trace in mem.take_traces() {
        let v = if open_policy {
            verify::verify_trace(&trace, &timing)
        } else {
            verify::verify_trace_timing_only(&trace, &timing)
        };
        violations.extend(v.into_iter().map(|v| v.to_string()));
    }
    ((stats.reads + stats.writes) as usize, violations)
}

#[test]
fn scheduler_is_protocol_clean_on_canonical_streams() {
    for cfg in [
        DramConfig::ddr4_3200(),
        DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst),
        DramConfig::ddr4_3200()
            .with_mapping(AddressMapping::BankInterleaved)
            .with_row_policy(RowPolicy::Closed),
        DramConfig::cpu_ddr4(),
    ] {
        let blocks = cfg.total_blocks();
        for (name, stream) in [
            ("sequential", streams::sequential_reads(2_000)),
            ("random", streams::random_reads(2_000, blocks, 9)),
            (
                "gather",
                streams::gather_reads(
                    &(0..500u32)
                        .map(|i| i.wrapping_mul(7919) % 10_000)
                        .collect::<Vec<_>>(),
                    256,
                    0,
                ),
            ),
            (
                "rmw",
                streams::update_rmw(
                    &(0..300u32)
                        .map(|i| i.wrapping_mul(104729) % 5_000)
                        .collect::<Vec<_>>(),
                    256,
                    0,
                ),
            ),
        ] {
            let expected = stream.len();
            let (completed, violations) = run_and_verify(cfg.clone(), stream);
            assert_eq!(completed, expected, "{name}: all requests must complete");
            assert!(
                violations.is_empty(),
                "{name} under {:?}/{:?}: {} violations, first: {}",
                cfg.mapping,
                cfg.row_policy,
                violations.len(),
                violations[0]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any mix of reads/writes over any addresses is serviced completely
    /// and protocol-clean.
    #[test]
    fn scheduler_protocol_clean_on_random_mixes(
        ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..400),
        col_first in any::<bool>(),
    ) {
        let cfg = if col_first {
            DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst)
        } else {
            DramConfig::ddr4_3200()
        };
        let blocks = cfg.total_blocks();
        let reqs: Vec<Request> = ops
            .iter()
            .map(|&(addr, is_read)| {
                let block = addr as u64 % blocks;
                if is_read {
                    Request::read(block)
                } else {
                    Request::write(block)
                }
            })
            .collect();
        let expected = reqs.len();
        let (completed, violations) = run_and_verify(cfg, reqs);
        prop_assert_eq!(completed, expected);
        prop_assert!(violations.is_empty(), "first violation: {:?}", violations.first());
    }

    /// Effective bandwidth never exceeds the configured peak.
    #[test]
    fn bandwidth_never_exceeds_peak(
        count in 64u64..2048,
        seed in 0u64..100,
    ) {
        let cfg = DramConfig::ddr4_3200();
        let mut mem = MemorySystem::new(cfg.clone());
        let stats = mem.run_trace(streams::random_reads(count, cfg.total_blocks(), seed));
        let eff = stats.effective_bandwidth_gbps(&cfg);
        prop_assert!(eff <= cfg.peak_bandwidth_gbps() * 1.001, "eff {eff}");
    }
}

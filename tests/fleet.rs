//! Cross-crate invariants of the multi-tenant serving fleet:
//!
//! 1. **Determinism** — a fleet run is a pure function of its specs:
//!    replaying the same tenants yields bit-identical reports (pool
//!    shares, latencies, shed counts, snapshot versions).
//! 2. **Weighted fairness** — under saturation, tenants' pool-time
//!    shares converge to their weight ratio.
//! 3. **Isolation** — a flash crowd on tenant A cannot destroy a quiet
//!    tenant B's tail: B's p99 and shed rate stay near its solo run.
//! 4. **Decision-function bounds** — the adaptive batcher's target
//!    never escapes `[1, max_batch]` for arbitrary latency sequences
//!    (proptest), and `FreshnessLedger::merge` equals the single-ledger
//!    oracle over concatenated observations (proptest).

use proptest::prelude::*;
use tensor_casting::dlrm::{Dlrm, DlrmConfig};
use tensor_casting::serve::{
    run_fleet, AdaptiveBatcher, BatchPolicy, CandidateCount, FleetConfig, FleetReport,
    FreshnessLedger, PoolCostModel, PopularityShift, PublishCadence, QueryModel, RateCurve, Tenant,
    TenantSpec,
};

fn workload(seed: u64, catalog: usize) -> QueryModel {
    let cfg = DlrmConfig::tiny();
    QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        catalog,
        CandidateCount::Fixed(2),
        1.1,
        seed,
    )
}

fn tenant(spec: TenantSpec, model_seed: u64, catalog: usize) -> Tenant {
    let model = Dlrm::new(DlrmConfig::tiny(), model_seed).unwrap();
    let workload = workload(spec.seed, catalog);
    Tenant::new(spec, &model, workload)
}

/// A quiet tenant: modest constant load, deadline batching, shedding on.
fn quiet_spec(sla_ns: u64) -> TenantSpec {
    TenantSpec {
        name: "quiet".to_string(),
        weight: 1,
        queries: 120,
        arrivals: RateCurve::Constant { qps: 3_000.0 },
        policy: BatchPolicy::Deadline {
            max_batch: 8,
            max_wait_ns: 500_000,
        },
        sla_ns,
        shed_unmeetable: true,
        seed: 404,
        publish: Some(PublishCadence::new(8_000_000, 1_000_000)),
        popularity_shift: None,
    }
}

/// A flash-crowd tenant: 40x spike mid-run, adaptive batching.
fn flashy_spec() -> TenantSpec {
    TenantSpec {
        name: "flashy".to_string(),
        weight: 1,
        queries: 400,
        arrivals: RateCurve::FlashCrowd {
            base_qps: 1_000.0,
            spike_qps: 40_000.0,
            start_ns: 5_000_000,
            duration_ns: 10_000_000,
        },
        policy: BatchPolicy::Adaptive(AdaptiveBatcher::new(4_000_000, 16, 400_000)),
        sla_ns: 4_000_000,
        shed_unmeetable: true,
        seed: 505,
        publish: Some(PublishCadence::new(8_000_000, 5_000_000)),
        popularity_shift: None,
    }
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        cost: PoolCostModel {
            batch_overhead_ns: 50_000,
            ns_per_sample: 25_000,
        },
        ..FleetConfig::default()
    }
}

fn digest(r: &FleetReport) -> Vec<(u64, u64, u64, u64, u64, Vec<u64>)> {
    r.tenants
        .iter()
        .map(|t| {
            (
                t.pool_ns,
                t.serve.batches,
                t.serve.shed,
                t.serve.sla_violations,
                t.serve.latency.p99_ns(),
                t.freshness.versions.clone(),
            )
        })
        .collect()
}

#[test]
fn fleet_replays_bit_identically() {
    let run = || {
        let mut tenants = vec![
            tenant(quiet_spec(6_000_000), 31, 24),
            tenant(flashy_spec(), 32, 24),
        ];
        run_fleet(&mut tenants, &fleet_config()).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.span_ns, b.span_ns);
    assert_eq!(digest(&a), digest(&b));
    assert_eq!(a.fleet.sla_violations, b.fleet.sla_violations);
    assert_eq!(a.freshness.versions, b.freshness.versions);
}

#[test]
fn saturated_tenants_split_pool_time_by_weight() {
    // Both tenants flood the pool from t=0 (arrival rate far above
    // capacity, shedding off so the backlog persists); with weights 3:1
    // the pool-time shares must land close to 75/25.
    let spec = |name: &str, weight: u64, seed: u64| TenantSpec {
        name: name.to_string(),
        weight,
        queries: 300,
        arrivals: RateCurve::Constant { qps: 200_000.0 },
        policy: BatchPolicy::Fixed { batch: 4 },
        sla_ns: 50_000_000,
        shed_unmeetable: false,
        seed,
        publish: None,
        popularity_shift: None,
    };
    let mut tenants = vec![
        tenant(spec("heavy", 3, 1), 41, 16),
        tenant(spec("light", 1, 2), 42, 16),
    ];
    let report = run_fleet(&mut tenants, &fleet_config()).unwrap();
    let heavy = report.tenant("heavy").unwrap();
    let light = report.tenant("light").unwrap();
    // Identical workload shapes mean identical total pool demand; the
    // 3:1 weights govern *when* each is served. Over the saturated
    // window shares track 3:1; the tail (after the heavy tenant
    // finishes) lets the light one catch up, so allow slack.
    assert!(heavy.pool_ns > 0 && light.pool_ns > 0);
    // While both were backlogged the heavy tenant must have run ahead:
    // its last batch completes well before the light tenant's.
    assert!(
        heavy.serve.latency.p99_ns() < light.serve.latency.p99_ns(),
        "weight-3 tenant p99 {} must beat weight-1 p99 {}",
        heavy.serve.latency.p99_ns(),
        light.serve.latency.p99_ns()
    );
    // And its queries drain sooner: mean latency strictly lower.
    assert!(heavy.serve.latency.mean_ns() < light.serve.latency.mean_ns());
}

#[test]
fn flash_crowd_cannot_wreck_a_quiet_tenants_tail() {
    // Quiet tenant solo baseline...
    let mut solo = vec![tenant(quiet_spec(6_000_000), 31, 24)];
    let solo_report = run_fleet(&mut solo, &fleet_config()).unwrap();
    let solo_quiet = solo_report.tenant("quiet").unwrap();
    // ...then the same tenant (same spec, same seeds) next to a flash
    // crowd 40x its rate.
    let mut duo = vec![
        tenant(quiet_spec(6_000_000), 31, 24),
        tenant(flashy_spec(), 32, 24),
    ];
    let duo_report = run_fleet(&mut duo, &fleet_config()).unwrap();
    let duo_quiet = duo_report.tenant("quiet").unwrap();
    let flashy = duo_report.tenant("flashy").unwrap();
    assert_eq!(duo_quiet.serve.queries, solo_quiet.serve.queries);
    // The flash crowd really overloaded its own lane...
    assert!(
        flashy.serve.shed > 0 || flashy.serve.sla_violations > 0,
        "the flash crowd must actually stress the pool"
    );
    // ...but the quiet tenant's tail stays within 2x + one batch of its
    // solo baseline (WFQ bounds the extra wait to roughly one in-flight
    // batch per scheduling round).
    let bound = 2 * solo_quiet.serve.latency.p99_ns() + 1_000_000;
    assert!(
        duo_quiet.serve.latency.p99_ns() <= bound,
        "quiet p99 {} exceeded isolation bound {} (solo p99 {})",
        duo_quiet.serve.latency.p99_ns(),
        bound,
        solo_quiet.serve.latency.p99_ns()
    );
    // Shed rate must not blow up either: within 5 points of solo.
    assert!(
        duo_quiet.serve.shed_rate() <= solo_quiet.serve.shed_rate() + 0.05,
        "quiet shed rate {:.3} vs solo {:.3}",
        duo_quiet.serve.shed_rate(),
        solo_quiet.serve.shed_rate()
    );
}

#[test]
fn popularity_shift_churns_the_casting_cache() {
    // A tenant with a cache sized to the hot head: after the popularity
    // rotation, the warm head goes cold and the engine must evict its
    // way to the new one — visible as evictions and a hit-rate dent.
    let spec = |shift: Option<PopularityShift>| TenantSpec {
        name: "shifty".to_string(),
        weight: 1,
        queries: 600,
        arrivals: RateCurve::Constant { qps: 20_000.0 },
        policy: BatchPolicy::Fixed { batch: 4 },
        sla_ns: 50_000_000,
        shed_unmeetable: false,
        seed: 99,
        publish: None,
        popularity_shift: shift,
    };
    let run = |shift: Option<PopularityShift>| {
        let model = Dlrm::new(DlrmConfig::tiny(), 77).unwrap();
        let workload = workload(7, 64);
        let mut tenants = vec![Tenant::new(spec(shift), &model, workload)];
        let config = FleetConfig {
            // Cache far smaller than the catalog: only the hot head fits.
            cache_capacity: 8,
            ..fleet_config()
        };
        run_fleet(&mut tenants, &config).unwrap()
    };
    let steady = run(None);
    let shifted = run(Some(PopularityShift {
        at_ns: 10_000_000,
        rotation: 32,
    }));
    let steady_t = &steady.tenants[0];
    let shifted_t = &shifted.tenants[0];
    assert!(
        shifted_t.cache_evictions > steady_t.cache_evictions,
        "the shift must evict: steady {} vs shifted {}",
        steady_t.cache_evictions,
        shifted_t.cache_evictions
    );
    assert!(
        shifted_t.serve.cache_hit_rate < steady_t.serve.cache_hit_rate,
        "the shift must dent the hit rate: steady {:.3} vs shifted {:.3}",
        steady_t.serve.cache_hit_rate,
        shifted_t.serve.cache_hit_rate
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: the adaptive batcher's target is an enforced invariant
    /// — any latency sequence keeps `target()` in `[1, max_batch]`.
    #[test]
    fn adaptive_batcher_target_stays_in_bounds(
        sla_us in 1u64..10_000,
        max_batch in 1usize..64,
        latencies in collection::vec(0u64..100_000_000, 1..200),
    ) {
        let sla_ns = sla_us * 1_000;
        let mut b = AdaptiveBatcher::new(sla_ns, max_batch, sla_ns / 4 + 1);
        for lat in latencies {
            b.observe(lat);
            prop_assert!(
                (1..=max_batch).contains(&b.target()),
                "target {} escaped [1, {}]", b.target(), max_batch
            );
        }
    }

    /// Satellite: merged freshness ledgers report the same p99 model age
    /// (and staleness stats) as one ledger fed the concatenation —
    /// mirroring the `LatencyHistogram::merge` oracle.
    #[test]
    fn freshness_merge_equals_single_ledger_oracle(
        left in collection::vec((1u64..50, 0u64..8, 1u64..100_000_000), 0..60),
        right in collection::vec((1u64..50, 0u64..8, 1u64..100_000_000), 0..60),
    ) {
        let mut a = FreshnessLedger::default();
        let mut b = FreshnessLedger::default();
        let mut oracle = FreshnessLedger::default();
        for &(v, s, age) in &left {
            a.record(v, s, age);
            oracle.record(v, s, age);
        }
        for &(v, s, age) in &right {
            b.record(v, s, age);
            oracle.record(v, s, age);
        }
        a.merge(&b);
        prop_assert_eq!(a.batches(), oracle.batches());
        prop_assert_eq!(a.p99_model_age_ns(), oracle.p99_model_age_ns());
        prop_assert_eq!(a.max_staleness_versions(), oracle.max_staleness_versions());
        prop_assert!(
            (a.mean_staleness_versions() - oracle.mean_staleness_versions()).abs() < 1e-9
        );
        prop_assert_eq!(a.versions.len(), oracle.versions.len());
    }
}

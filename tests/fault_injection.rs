//! Deterministic fault injection across the fault-tolerance surface:
//! every injected failure must surface as a clean typed error or a
//! contained panic in bounded time — never a hang, deadlock, or silent
//! corruption.
//!
//! Covered faults, each armed by occurrence on a [`FaultPlan`] so the
//! exact failure reproduces on every run:
//!
//! 1. **Checkpoint I/O** — every write-path site (`open`, `write`,
//!    `fsync`, `rename`) fails as [`CheckpointError::Io`], leaves no
//!    torn or temporary file, keeps previously committed checkpoints
//!    intact, and the next save succeeds.
//! 2. **Torn writes** — a checkpoint truncated at *every* byte
//!    boundary parses to a clean [`CheckpointError::Format`] (or, at
//!    the handful of exact section boundaries, to a valid strict
//!    prefix), and a failed restore leaves the receiving trainer
//!    byte-identical.
//! 3. **Prefetch producer panics** — a batch source dying on its
//!    producer thread fails the consumer with a "producer died" panic
//!    instead of deadlocking, and both drop orders of
//!    (`TrainLoop`, dead `PrefetchSource`) join promptly.
//! 4. **Casting-worker panics** — a worker dying mid-pipeline fails
//!    pending and future `collect`/`submit` calls with a clean
//!    "casting worker died" panic, and the dead pipeline drops
//!    cleanly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor_casting::core::{tensor_casting, CastingPipeline, FaultPlan};
use tensor_casting::datasets::{
    BatchSource, CtrBatch, PrefetchSource, SyntheticCtr, SyntheticSource,
};
use tensor_casting::dlrm::{
    checkpoint::{read_train_checkpoint, CheckpointError, CheckpointStore},
    BackwardMode, DepthPolicy, DlrmConfig, EmbeddingOptimizer, TrainLoop, Trainer,
};
use tensor_casting::embedding::IndexArray;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tckp-fault-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn source(seed: u64, batch: usize) -> SyntheticSource {
    let cfg = DlrmConfig::tiny();
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed),
        batch,
    )
}

fn trained_trainer(steps: usize) -> Trainer {
    let cfg = DlrmConfig::tiny();
    let mut data = SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 3);
    let mut t =
        Trainer::with_optimizer(cfg, BackwardMode::Casted, EmbeddingOptimizer::Sgd, 7).unwrap();
    for _ in 0..steps {
        t.step(&data.next_batch(16)).unwrap();
    }
    t
}

fn table_bits(t: &Trainer) -> Vec<Vec<u32>> {
    (0..t.model().num_tables())
        .map(|i| {
            t.model()
                .table(i)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic>".into())
}

// ----------------------------------------------- 1. checkpoint I/O faults

#[test]
fn every_checkpoint_write_site_fails_typed_and_leaves_the_store_clean() {
    for site in [
        "checkpoint.open",
        "checkpoint.write",
        "checkpoint.fsync",
        "checkpoint.rename",
    ] {
        let dir = TempDir::new(&site.replace('.', "-"));
        let mut trainer = trained_trainer(1);
        let mut store = CheckpointStore::new(&dir.0, 3).unwrap();

        // A healthy commit first: the fault must not disturb it.
        let committed = store.save(&trainer, None, None).unwrap();
        trainer.step(&source(9, 16).next_batch().unwrap()).unwrap();

        let plan = FaultPlan::new();
        plan.arm(site, 0);
        store.set_fault_plan(plan.clone());
        let err = store.save(&trainer, None, None).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{site}: got {err}");
        assert!(
            err.to_string().contains(site),
            "{site}: error must name the failing site, got {err}"
        );
        assert_eq!(plan.fired(), vec![(site.to_string(), 0)]);

        // The committed set is exactly the pre-fault checkpoint, and no
        // temporary file survives the failure.
        assert_eq!(store.list().unwrap(), vec![committed.clone()]);
        let entries: Vec<_> = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "{site}: stray files {entries:?}");
        let loaded = read_train_checkpoint(&mut std::fs::File::open(&committed).unwrap()).unwrap();
        assert_eq!(
            loaded.steps(),
            Some(1),
            "{site}: committed checkpoint corrupted"
        );

        // The armed occurrence is spent: the retry succeeds.
        let second = store.save(&trainer, None, None).unwrap();
        assert_ne!(second, committed);
        let loaded = read_train_checkpoint(&mut std::fs::File::open(&second).unwrap()).unwrap();
        assert_eq!(
            loaded.steps(),
            Some(2),
            "{site}: retry produced a bad checkpoint"
        );
    }
}

/// A checkpoint fault inside [`TrainLoop::run`] surfaces as the
/// driver's typed checkpoint error, not a panic — and the trainer it
/// wraps is still intact and usable.
#[test]
fn checkpoint_fault_mid_run_is_a_typed_driver_error() {
    let dir = TempDir::new("mid-run");
    let mut store = CheckpointStore::new(&dir.0, 2).unwrap();
    let plan = FaultPlan::new();
    plan.arm("checkpoint.fsync", 0);
    store.set_fault_plan(plan);
    let trainer = Trainer::with_optimizer(
        DlrmConfig::tiny(),
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        7,
    )
    .unwrap();
    let mut driver = TrainLoop::new(trainer, 2).checkpoint_every(2, store);
    let err = driver.run(&mut source(5, 16), 4).unwrap_err();
    assert!(
        err.to_string().contains("checkpoint.fsync"),
        "unexpected error: {err}"
    );
    // The failure struck at the first cadence boundary; the wrapped
    // trainer still holds the steps completed before the commit attempt.
    assert_eq!(driver.trainer().steps(), 2);
    assert!(driver.last_checkpoint().is_none());
}

// ----------------------------------------------------- 2. torn writes

#[test]
fn truncation_at_every_byte_boundary_is_clean() {
    let dir = TempDir::new("torn-sweep");
    let store = CheckpointStore::new(&dir.0, 1).unwrap();
    let trainer = Trainer::with_optimizer(
        DlrmConfig::tiny(),
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        7,
    )
    .unwrap();
    let mut driver = TrainLoop::new(trainer, 2).checkpoint_every(3, store);
    driver.run(&mut source(11, 16), 3).unwrap();
    let ckpt = driver.last_checkpoint().expect("committed").to_path_buf();
    let bytes = std::fs::read(&ckpt).unwrap();

    // The intact file carries the full state.
    let full = read_train_checkpoint(&mut bytes.as_slice()).unwrap();
    assert_eq!(full.steps(), Some(3));
    assert!(full.source_state().is_some());
    assert!(full.controller_state().is_some());

    // Every strict prefix either fails with a clean Format error or —
    // only at an exact section boundary — parses as a valid shorter
    // checkpoint (a framed format cannot distinguish that case; the
    // store's atomic rename is what keeps torn files from ever landing
    // under a committed name).
    let mut boundary_cuts = Vec::new();
    for cut in 0..bytes.len() {
        match read_train_checkpoint(&mut &bytes[..cut]) {
            Err(CheckpointError::Format(_)) => {}
            Err(other) => panic!("cut {cut}: non-Format error {other}"),
            Ok(prefix) => {
                assert!(
                    prefix.steps().is_none() || prefix.steps() == Some(3),
                    "cut {cut}: prefix parsed to foreign state"
                );
                boundary_cuts.push(cut);
            }
        }
    }
    assert!(
        boundary_cuts.len() <= 4,
        "more clean-prefix cuts than section boundaries: {boundary_cuts:?}"
    );
}

/// A failed restore — here an optimizer mismatch discovered after a
/// fully valid parse — leaves the receiving trainer byte-identical:
/// weights, optimizer slabs, and step counter untouched.
#[test]
fn failed_restore_leaves_the_receiving_trainer_untouched() {
    let adam = trained_adam();
    let mut buf = Vec::new();
    tensor_casting::dlrm::checkpoint::save_train_checkpoint(&mut buf, &adam, None, None).unwrap();

    let mut target = trained_trainer(2); // SGD: wrong optimizer for the file
    let before_tables = table_bits(&target);
    let before_steps = target.steps();
    let ckpt = read_train_checkpoint(&mut buf.as_slice()).unwrap();
    let err = ckpt.restore_into(&mut target).unwrap_err();
    assert!(
        matches!(err, CheckpointError::Shape(_)),
        "optimizer mismatch must be a Shape error, got {err}"
    );
    assert_eq!(table_bits(&target), before_tables, "weights were touched");
    assert_eq!(target.steps(), before_steps, "step counter was touched");
    // And the untouched trainer still trains.
    target.step(&source(13, 16).next_batch().unwrap()).unwrap();
}

fn trained_adam() -> Trainer {
    let cfg = DlrmConfig::tiny();
    let mut data = SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 3);
    let mut t = Trainer::with_optimizer(
        cfg,
        BackwardMode::Casted,
        EmbeddingOptimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
        7,
    )
    .unwrap();
    for _ in 0..2 {
        t.step(&data.next_batch(16)).unwrap();
    }
    t
}

/// Mid-payload bit corruption is caught by the section CRC before any
/// state is staged.
#[test]
fn corrupted_payload_fails_the_checksum() {
    let trainer = trained_trainer(2);
    let mut buf = Vec::new();
    tensor_casting::dlrm::checkpoint::save_train_checkpoint(&mut buf, &trainer, None, None)
        .unwrap();
    let mid = buf.len() / 2;
    buf[mid] ^= 0x40;
    let err = read_train_checkpoint(&mut buf.as_slice()).unwrap_err();
    assert!(
        err.to_string().contains("checksum"),
        "unexpected error: {err}"
    );
}

// ------------------------------------- 3. prefetch producer panics

/// A wrapped source that panics when its armed [`FaultPlan`]
/// occurrence fires — the injection point for producer-thread death.
struct FaultySource {
    inner: SyntheticSource,
    plan: FaultPlan,
}

impl BatchSource for FaultySource {
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        assert!(
            !self.plan.should_fail("prefetch.generate"),
            "injected producer fault"
        );
        self.inner.next_batch()
    }
    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        self.inner.recycle(batch);
    }
}

#[test]
fn producer_death_fails_the_consumer_in_bounded_time() {
    let plan = FaultPlan::new();
    plan.arm("prefetch.generate", 2); // third generation dies
    let mut pf = PrefetchSource::new(
        FaultySource {
            inner: source(21, 8),
            plan,
        },
        2,
    );
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..10 {
            let batch = pf.next_batch().expect("endless stream");
            pf.recycle(batch);
        }
    }));
    let payload = outcome.expect_err("consumer must observe the producer death");
    assert!(
        panic_message(payload.as_ref()).contains("producer died"),
        "unexpected panic: {}",
        panic_message(payload.as_ref())
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "consumer took {:?} to observe the death",
        t0.elapsed()
    );
    let t0 = Instant::now();
    drop(pf);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "dropping the dead source took {:?}",
        t0.elapsed()
    );
}

/// Both drop orders of (driver with in-flight steps, prefetch source
/// whose producer has already died) join promptly — the panic is
/// contained to the source, and shutdown never deadlocks on the dead
/// thread.
#[test]
fn dead_producer_and_train_loop_drop_cleanly_in_both_orders() {
    for producer_first in [false, true] {
        let plan = FaultPlan::new();
        plan.arm("prefetch.generate", 1); // second generation dies
        let mut pf = PrefetchSource::new(
            FaultySource {
                inner: source(33, 16),
                plan,
            },
            2,
        );
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 1).unwrap();
        let mut driver = TrainLoop::new(trainer, 3);
        // Feed until the dead producer surfaces (bounded by the loop).
        let _ = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..6 {
                let batch = pf.next_batch().expect("endless stream");
                driver.push(batch).unwrap();
            }
        }));
        let t0 = Instant::now();
        if producer_first {
            drop(pf);
            drop(driver);
        } else {
            drop(driver);
            drop(pf);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown (producer_first: {producer_first}) took {:?}",
            t0.elapsed()
        );
    }
}

// --------------------------------------- 4. casting-worker panics

fn index(seed: u64) -> IndexArray {
    let samples: Vec<Vec<u32>> = (0..8)
        .map(|i| vec![(seed as u32 + i) % 50, (seed as u32 + 2 * i) % 50])
        .collect();
    IndexArray::from_samples(&samples).unwrap()
}

#[test]
fn casting_worker_death_fails_collect_and_submit_cleanly() {
    let mut pipeline = CastingPipeline::new();
    let plan = FaultPlan::new();
    plan.arm("cast", 1); // second job kills the worker
    pipeline.set_fault_plan(plan.clone(), "cast");

    let t0 = pipeline.submit(vec![index(1)]);
    let t1 = pipeline.submit(vec![index(2)]);
    // Job 0 completed before the armed occurrence: its result is intact.
    let casted = pipeline.collect(t0);
    assert_eq!(casted[0], tensor_casting(&index(1)));

    // Job 1 died with the worker: collect panics cleanly, in bounded
    // time, instead of waiting for a result that can never arrive.
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| pipeline.collect(t1)));
    let payload = outcome.expect_err("collect of the dead job must fail");
    assert!(
        panic_message(payload.as_ref()).contains("casting worker died"),
        "unexpected panic: {}",
        panic_message(payload.as_ref())
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "collect took {:?} to observe the death",
        started.elapsed()
    );
    assert!(pipeline.worker_died());
    assert_eq!(plan.fired(), vec![("cast".to_string(), 1)]);

    // Future submits fail fast too — no job may enter a dead pipeline.
    let outcome = catch_unwind(AssertUnwindSafe(|| pipeline.submit(vec![index(3)])));
    assert!(
        panic_message(outcome.expect_err("submit must fail").as_ref())
            .contains("casting worker died"),
        "submit into a dead pipeline must name the cause"
    );

    let t0 = Instant::now();
    drop(pipeline);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "dropping the dead pipeline took {:?}",
        t0.elapsed()
    );
}

/// A dead pipeline and a healthy prefetch source shut down cleanly in
/// both drop orders — the two failure domains do not entangle.
#[test]
fn dead_pipeline_and_live_prefetch_source_drop_cleanly_in_both_orders() {
    for pipeline_first in [false, true] {
        let mut pipeline = CastingPipeline::new();
        let plan = FaultPlan::new();
        plan.arm("cast", 0);
        pipeline.set_fault_plan(plan, "cast");
        let _ticket = pipeline.submit(vec![index(4)]);
        // Wait (bounded) for the worker to die so the drop exercises
        // the dead path, not a race with a live worker.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !pipeline.worker_died() {
            assert!(Instant::now() < deadline, "worker never observed the fault");
            std::thread::yield_now();
        }
        let source = PrefetchSource::new(source(44, 8), 2);
        let t0 = Instant::now();
        if pipeline_first {
            drop(pipeline);
            drop(source);
        } else {
            drop(source);
            drop(pipeline);
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "shutdown (pipeline_first: {pipeline_first}) took {:?}",
            t0.elapsed()
        );
    }
}

/// Fault plans are reproducible: the same plan spec kills the same job
/// on every run, so the assertions above are stable, not racy.
#[test]
fn fault_plans_reproduce_the_same_failure_every_run() {
    for _ in 0..3 {
        let mut pipeline = CastingPipeline::new();
        let plan = FaultPlan::new();
        plan.arm("cast", 2);
        pipeline.set_fault_plan(plan.clone(), "cast");
        let tickets: Vec<_> = (0..3).map(|i| pipeline.submit(vec![index(i)])).collect();
        let mut tickets = tickets.into_iter();
        // Jobs 0 and 1 always survive; job 2 always dies.
        assert_eq!(
            pipeline.collect(tickets.next().unwrap())[0],
            tensor_casting(&index(0))
        );
        assert_eq!(
            pipeline.collect(tickets.next().unwrap())[0],
            tensor_casting(&index(1))
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pipeline.collect(tickets.next().unwrap())
        }));
        assert!(outcome.is_err(), "job 2 must die on every run");
        assert_eq!(plan.fired(), vec![("cast".to_string(), 2)]);
    }
}

// The resume path itself is exercised against corrupt inputs in
// `tests/checkpoint_resume.rs`; here we close the loop on the driver
// API: resuming from a torn file is a typed error, not a panic.
#[test]
fn resume_from_a_torn_file_is_a_typed_error() {
    let dir = TempDir::new("torn-resume");
    std::fs::create_dir_all(&dir.0).unwrap();
    let path = dir.0.join("ckpt-000000000003.tckp");

    let trainer = trained_trainer(3);
    let mut buf = Vec::new();
    tensor_casting::dlrm::checkpoint::save_train_checkpoint(&mut buf, &trainer, None, None)
        .unwrap();
    buf.truncate(buf.len() - 7);
    std::fs::write(&path, &buf).unwrap();

    let mut src = source(2, 16);
    let fresh = Trainer::with_optimizer(
        DlrmConfig::tiny(),
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        7,
    )
    .unwrap();
    let err = TrainLoop::resume(&path, fresh, DepthPolicy::Fixed(2), &mut src).unwrap_err();
    assert!(matches!(err, CheckpointError::Format(_)), "got {err}");
}

//! The zero-allocation steady-state invariant, enforced with a counting
//! global allocator: after a warm-up step sizes every scratch buffer to
//! its high-water mark, the embedding/MLP hot-path kernels perform **no
//! heap allocation per step** on their serial `_into` paths.
//!
//! The whole file is one test function on purpose — the allocation
//! counter is process-global, and sibling tests running on other threads
//! would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use tensor_casting::core::{casted_gather_reduce_into, tensor_casting, CoalescedScratch};
use tensor_casting::embedding::{
    gather_reduce_into, optim::Sgd, scatter_apply_dense, EmbeddingTable, IndexArray,
};
use tensor_casting::tensor::{
    bce_with_logits, bce_with_logits_backward_into, Activation, Exec, FeatureInteraction, Matrix,
    Mlp, SplitMix64,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Only the test's own thread counts: the libtest harness allocates
    // from its main thread (timing, channel messages) and would otherwise
    // pollute the counter nondeterministically.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if TRACKING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    TRACKING.with(|t| t.set(true));
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.next_range(-1.0, 1.0);
    }
    m
}

#[test]
fn steady_state_hot_path_performs_zero_allocations() {
    let batch = 64;
    let dim = 16;

    // ---- Embedding forward + casted backward + scatter ----------------
    let mut rng = SplitMix64::new(7);
    let mut table = EmbeddingTable::seeded(500, dim, 1);
    let samples: Vec<Vec<u32>> = (0..batch)
        .map(|_| (0..6).map(|_| rng.next_below(500) as u32).collect())
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    // The casted index array is produced by the overlap pipeline in real
    // training (off the critical path); here it is fixed input.
    let casted = tensor_casting(&index);
    let upstream = random_matrix(batch, dim, 2);

    let mut pooled = Matrix::default();
    let mut coalesced = CoalescedScratch::default();
    let mut sgd = Sgd::new(0.01);

    let embedding_step = |pooled: &mut Matrix,
                          coalesced: &mut CoalescedScratch,
                          table: &mut EmbeddingTable,
                          sgd: &mut Sgd| {
        gather_reduce_into(table, &index, pooled, Exec::Serial).unwrap();
        casted_gather_reduce_into(&upstream, &casted, coalesced, Exec::Serial).unwrap();
        scatter_apply_dense(table, &coalesced.rows, &coalesced.grads, sgd).unwrap();
    };

    // Warm-up: size every buffer to its high-water mark.
    embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
    embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);

    let before = allocations();
    for _ in 0..10 {
        embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
    }
    assert_eq!(
        allocations() - before,
        0,
        "embedding gather/casted-backward/scatter steady state must not allocate"
    );

    // ---- MLP forward + loss + backward + update -----------------------
    let mut mlp = Mlp::new(dim, &[32, 16, 1], Activation::Relu, 3).unwrap();
    let x = random_matrix(batch, dim, 4);
    let labels = random_matrix(batch, 1, 5).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    let mut logits = Matrix::default();
    let mut dlogits = Matrix::default();
    let mut dx = Matrix::default();

    let mlp_step = |mlp: &mut Mlp, logits: &mut Matrix, dlogits: &mut Matrix, dx: &mut Matrix| {
        mlp.forward_into(&x, logits, Exec::Serial).unwrap();
        let loss = bce_with_logits(logits, &labels).unwrap();
        assert!(loss.is_finite());
        bce_with_logits_backward_into(logits, &labels, dlogits).unwrap();
        mlp.backward_into(dlogits, dx, Exec::Serial).unwrap();
        mlp.apply_update(0.05);
    };

    mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);
    mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);

    let before = allocations();
    for _ in 0..10 {
        mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);
    }
    assert_eq!(
        allocations() - before,
        0,
        "MLP forward/loss/backward/update steady state must not allocate"
    );

    // ---- Feature interaction (dot) forward + backward -----------------
    let dense = random_matrix(batch, dim, 6);
    let embeddings = vec![random_matrix(batch, dim, 7), random_matrix(batch, dim, 8)];
    let mut op = FeatureInteraction::default();
    let mut z = Matrix::default();
    let mut dz = Matrix::default();
    let mut ddense = Matrix::default();
    let mut dpooled = Vec::new();

    let interaction_step = |op: &mut FeatureInteraction,
                            z: &mut Matrix,
                            dz: &mut Matrix,
                            ddense: &mut Matrix,
                            dpooled: &mut Vec<Matrix>| {
        op.forward_into(&dense, &embeddings, z).unwrap();
        dz.copy_from(z);
        op.backward_into(dz, ddense, dpooled).unwrap();
    };

    interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);
    interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);

    let before = allocations();
    for _ in 0..10 {
        interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);
    }
    assert_eq!(
        allocations() - before,
        0,
        "feature-interaction steady state must not allocate"
    );
}

//! The zero-allocation steady-state invariant, enforced with a counting
//! global allocator: after a warm-up step sizes every scratch buffer to
//! its high-water mark, the embedding/MLP hot-path kernels perform **no
//! heap allocation per step** on their serial `_into` paths. That now
//! includes the *stateful* optimizer scatter (the dense `RowState` store
//! stops growing once warmed) and the casting-pipeline submit (an
//! `Arc<[IndexArray]>` refcount bump, not a per-table clone).
//!
//! The whole file is one test function on purpose — the allocation
//! counter is process-global, and sibling tests running on other threads
//! would pollute it. The one other thread that *does* count is the
//! `PrefetchSource` producer: the final section opts it into tracking
//! (via a wrapping source that flips the thread-local) to certify that
//! the cross-thread checkout/recycle steady state — producer refilling
//! buffers the consumer returned — allocates nothing on either side.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tensor_casting::datasets::{
    BatchSource, CtrBatch, Popularity, PrefetchSource, ShardedPrefetchSource, SyntheticCtr,
    SyntheticSource, TableWorkload,
};

use tensor_casting::core::{
    casted_gather_reduce_into, tensor_casting, CastingPipeline, CoalescedScratch,
};
use tensor_casting::embedding::{
    gather_reduce_into, gradient_coalesce_into, gradient_expand_into,
    optim::{Adagrad, Adam, Sgd, SparseOptimizer, SplittableOptimizer},
    scatter_apply_dense, scatter_apply_per_shard, scatter_apply_sharded, CoalesceScratch,
    EmbeddingTable, IndexArray, RouteScratch, ShardMap, ShardedOptimizer,
};
use tensor_casting::tensor::{
    bce_with_logits, bce_with_logits_backward_into, Activation, Exec, FeatureInteraction, Matrix,
    Mlp, SplitMix64,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Only the test's own thread counts: the libtest harness allocates
    // from its main thread (timing, channel messages) and would otherwise
    // pollute the counter nondeterministically.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_here() {
    if TRACKING.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    TRACKING.with(|t| t.set(true));
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.next_range(-1.0, 1.0);
    }
    m
}

#[test]
fn steady_state_hot_path_performs_zero_allocations() {
    let batch = 64;
    let dim = 16;

    // ---- Embedding forward + casted backward + scatter ----------------
    let mut rng = SplitMix64::new(7);
    let mut table = EmbeddingTable::seeded(500, dim, 1);
    let samples: Vec<Vec<u32>> = (0..batch)
        .map(|_| (0..6).map(|_| rng.next_below(500) as u32).collect())
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    // The casted index array is produced by the overlap pipeline in real
    // training (off the critical path); here it is fixed input.
    let casted = tensor_casting(&index);
    let upstream = random_matrix(batch, dim, 2);

    let mut pooled = Matrix::default();
    let mut coalesced = CoalescedScratch::default();
    let mut sgd = Sgd::new(0.01);

    let embedding_step = |pooled: &mut Matrix,
                          coalesced: &mut CoalescedScratch,
                          table: &mut EmbeddingTable,
                          sgd: &mut Sgd| {
        gather_reduce_into(table, &index, pooled, Exec::Serial).unwrap();
        casted_gather_reduce_into(&upstream, &casted, coalesced, Exec::Serial).unwrap();
        scatter_apply_dense(table, &coalesced.rows, &coalesced.grads, sgd).unwrap();
    };

    // Warm-up: size every buffer to its high-water mark.
    embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
    embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);

    let before = allocations();
    for _ in 0..10 {
        embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
    }
    assert_eq!(
        allocations() - before,
        0,
        "embedding gather/casted-backward/scatter steady state must not allocate"
    );

    // ---- Baseline expand-coalesce through recycled scratch ------------
    // The baseline backward still materializes its n x D expand and runs
    // Algorithm 1's argsort + accumulate every step (that cost is the
    // paper's subject) — but via `_into` forms its steady state touches
    // only recycled buffers. The argsort is an unstable sort over packed
    // (src, pos) keys, so not even the stable sort's merge buffer is
    // allocated.
    let mut base_table = EmbeddingTable::seeded(500, dim, 9);
    let mut base_sgd = Sgd::new(0.01);
    let mut expanded = Matrix::default();
    let mut base_coalesced = CoalesceScratch::default();

    let baseline_step = |expanded: &mut Matrix,
                         coalesced: &mut CoalesceScratch,
                         table: &mut EmbeddingTable,
                         sgd: &mut Sgd| {
        gradient_expand_into(&upstream, &index, expanded).unwrap();
        gradient_coalesce_into(expanded, &index, coalesced).unwrap();
        scatter_apply_dense(table, &coalesced.rows, &coalesced.grads, sgd).unwrap();
    };

    baseline_step(
        &mut expanded,
        &mut base_coalesced,
        &mut base_table,
        &mut base_sgd,
    );
    baseline_step(
        &mut expanded,
        &mut base_coalesced,
        &mut base_table,
        &mut base_sgd,
    );

    let before = allocations();
    for _ in 0..10 {
        baseline_step(
            &mut expanded,
            &mut base_coalesced,
            &mut base_table,
            &mut base_sgd,
        );
    }
    assert_eq!(
        allocations() - before,
        0,
        "baseline expand/coalesce/scatter steady state must not allocate"
    );

    // ---- Stateful-optimizer scatter (dense RowState) ------------------
    // The splittable state store grows geometrically on serial lazy
    // touches; once the warm-up covers the batch's hottest row, further
    // scatters (including Adam's per-row step counts) allocate nothing.
    let mut ada_table = EmbeddingTable::seeded(500, dim, 11);
    let mut ada = Adagrad::new(0.01, 1e-8);
    let mut adam_table = EmbeddingTable::seeded(500, dim, 12);
    let mut adam = Adam::new(0.001, 0.9, 0.999, 1e-8);

    let stateful_scatter = |table: &mut EmbeddingTable, opt: &mut dyn SparseOptimizer| {
        scatter_apply_dense(table, &coalesced.rows, &coalesced.grads, opt).unwrap();
    };

    stateful_scatter(&mut ada_table, &mut ada);
    stateful_scatter(&mut adam_table, &mut adam);

    let before = allocations();
    for _ in 0..10 {
        stateful_scatter(&mut ada_table, &mut ada);
        stateful_scatter(&mut adam_table, &mut adam);
    }
    assert_eq!(
        allocations() - before,
        0,
        "stateful-optimizer scatter steady state must not allocate"
    );

    // ---- Sharded embedding data plane ---------------------------------
    // The sharded step path adds three stages over the unsharded one:
    // shard routing (on the casting worker in production, measured here
    // on the tracked thread), per-shard casted gather-reduce, and the
    // per-shard slab scatter. Each must be as allocation-free warm as
    // its unsharded counterpart — sharding is placement, not overhead.
    let map = ShardMap::new(500, 3);

    // Routing through a reusable scratch: the ping-pong arrays size to
    // the index's per-shard high-water marks, then refill in place.
    let mut route_scratch = RouteScratch::new();
    map.route_into(&index, &mut route_scratch).unwrap();
    map.route_into(&index, &mut route_scratch).unwrap();
    let before = allocations();
    for _ in 0..10 {
        map.route_into(&index, &mut route_scratch).unwrap();
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm shard routing must not allocate"
    );

    // Baseline-shaped sharded scatter: globally coalesced rows split at
    // shard fences into per-shard RowState slabs.
    let mut sh_table = EmbeddingTable::seeded(500, dim, 13);
    let mut sh_opt = ShardedOptimizer::new(map.clone(), || {
        Box::new(Adagrad::new(0.01, 1e-8)) as Box<dyn SplittableOptimizer>
    });
    let sharded_scatter = |table: &mut EmbeddingTable, opt: &mut ShardedOptimizer| {
        scatter_apply_sharded(table, &coalesced.rows, &coalesced.grads, opt, Exec::Serial).unwrap();
    };
    sharded_scatter(&mut sh_table, &mut sh_opt);
    sharded_scatter(&mut sh_table, &mut sh_opt);
    let before = allocations();
    for _ in 0..10 {
        sharded_scatter(&mut sh_table, &mut sh_opt);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm sharded slab scatter must not allocate"
    );

    // Casted-shaped sharded backward: per-shard casted gather-reduce
    // into per-shard coalesce scratch, then the per-shard local scatter
    // (the routed/casted arrays are pipeline products, fixed inputs
    // here just like `casted` above).
    let routed = map.route(&index).unwrap();
    let casted_shards: Vec<_> = routed.iter().map(tensor_casting).collect();
    let mut shard_scratch: Vec<CoalescedScratch> = (0..map.num_shards())
        .map(|_| CoalescedScratch::default())
        .collect();
    let mut cast_table = EmbeddingTable::seeded(500, dim, 14);
    let mut cast_opt = ShardedOptimizer::new(map.clone(), || {
        Box::new(Adam::new(0.001, 0.9, 0.999, 1e-8)) as Box<dyn SplittableOptimizer>
    });
    let mut sharded_casted_step = |table: &mut EmbeddingTable, opt: &mut ShardedOptimizer| {
        for (s, casted) in casted_shards.iter().enumerate() {
            casted_gather_reduce_into(&upstream, casted, &mut shard_scratch[s], Exec::Serial)
                .unwrap();
        }
        let scratch = &shard_scratch;
        scatter_apply_per_shard(
            table,
            opt,
            |s| (scratch[s].rows.as_slice(), &scratch[s].grads),
            Exec::Serial,
        )
        .unwrap();
    };
    sharded_casted_step(&mut cast_table, &mut cast_opt);
    sharded_casted_step(&mut cast_table, &mut cast_opt);
    let before = allocations();
    for _ in 0..10 {
        sharded_casted_step(&mut cast_table, &mut cast_opt);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm sharded casted backward must not allocate"
    );

    // ---- Casting-pipeline submit: Arc share, no per-table clone -------
    // submit() forwards an Arc<[IndexArray]> by refcount bump. If it
    // still deep-cloned the arrays (the pre-Arc behaviour), the
    // caller-side allocation count would scale with the number of
    // tables; with the share it is a small constant (channel node +
    // ticket bookkeeping), so a wide batch costs the same as a narrow
    // one.
    let make_indices = |tables: usize, seed: u64| -> Arc<[IndexArray]> {
        let mut rng = SplitMix64::new(seed);
        (0..tables)
            .map(|_| {
                let samples: Vec<Vec<u32>> = (0..batch)
                    .map(|_| (0..6).map(|_| rng.next_below(500) as u32).collect())
                    .collect();
                IndexArray::from_samples(&samples).unwrap()
            })
            .collect::<Vec<_>>()
            .into()
    };
    let narrow = make_indices(2, 21);
    let wide = make_indices(10, 22);
    let mut pipeline = CastingPipeline::new();
    let mut submit_cycles = |indices: &Arc<[IndexArray]>, cycles: usize| -> u64 {
        let before = allocations();
        for _ in 0..cycles {
            let ticket = pipeline.submit(Arc::clone(indices));
            let _ = pipeline.collect(ticket);
        }
        allocations() - before
    };
    // Warm-up: first submissions size the channel blocks.
    submit_cycles(&narrow, 4);
    submit_cycles(&wide, 4);
    let narrow_allocs = submit_cycles(&narrow, 8);
    let wide_allocs = submit_cycles(&wide, 8);
    // Slack for amortized channel-block / ticket-set growth; a clone of
    // the wide batch's 8 extra IndexArrays would add >= 128 allocations.
    assert!(
        wide_allocs <= narrow_allocs + 8,
        "submit allocations must not scale with table count \
         (narrow {narrow_allocs}, wide {wide_allocs}): is submit cloning index arrays?"
    );

    // ---- MLP forward + loss + backward + update -----------------------
    let mut mlp = Mlp::new(dim, &[32, 16, 1], Activation::Relu, 3).unwrap();
    let x = random_matrix(batch, dim, 4);
    let labels = random_matrix(batch, 1, 5).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    let mut logits = Matrix::default();
    let mut dlogits = Matrix::default();
    let mut dx = Matrix::default();

    let mlp_step = |mlp: &mut Mlp, logits: &mut Matrix, dlogits: &mut Matrix, dx: &mut Matrix| {
        mlp.forward_into(&x, logits, Exec::Serial).unwrap();
        let loss = bce_with_logits(logits, &labels).unwrap();
        assert!(loss.is_finite());
        bce_with_logits_backward_into(logits, &labels, dlogits).unwrap();
        mlp.backward_into(dlogits, dx, Exec::Serial).unwrap();
        mlp.apply_update(0.05);
    };

    mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);
    mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);

    let before = allocations();
    for _ in 0..10 {
        mlp_step(&mut mlp, &mut logits, &mut dlogits, &mut dx);
    }
    assert_eq!(
        allocations() - before,
        0,
        "MLP forward/loss/backward/update steady state must not allocate"
    );

    // ---- Feature interaction (dot) forward + backward -----------------
    let dense = random_matrix(batch, dim, 6);
    let embeddings = vec![random_matrix(batch, dim, 7), random_matrix(batch, dim, 8)];
    let mut op = FeatureInteraction::default();
    let mut z = Matrix::default();
    let mut dz = Matrix::default();
    let mut ddense = Matrix::default();
    let mut dpooled = Vec::new();

    let interaction_step = |op: &mut FeatureInteraction,
                            z: &mut Matrix,
                            dz: &mut Matrix,
                            ddense: &mut Matrix,
                            dpooled: &mut Vec<Matrix>| {
        op.forward_into(&dense, &embeddings, z).unwrap();
        dz.copy_from(z);
        op.backward_into(dz, ddense, dpooled).unwrap();
    };

    interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);
    interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);

    let before = allocations();
    for _ in 0..10 {
        interaction_step(&mut op, &mut z, &mut dz, &mut ddense, &mut dpooled);
    }
    assert_eq!(
        allocations() - before,
        0,
        "feature-interaction steady state must not allocate"
    );

    // ---- Serve engine: warm-cache fused scoring -----------------------
    // Once the catalog's casting transforms are memoized and the fused
    // buffers are sized, scoring a batch of hot queries allocates
    // nothing: offsets/dense/pooled/logits recycle, cache hits return
    // borrowed casted arrays, and the dense stack runs through the
    // caller-owned inference scratch. (A cache *miss* allocates its
    // memoized array once — that is the cache's point.)
    let serve_cfg = tensor_casting::dlrm::DlrmConfig::tiny();
    let serve_model = tensor_casting::dlrm::Dlrm::new(serve_cfg.clone(), 31).unwrap();
    let mut serve_workload = tensor_casting::serve::QueryModel::new(
        &serve_cfg.table_workloads(),
        serve_cfg.dense_features,
        6,
        tensor_casting::serve::CandidateCount::Fixed(3),
        1.0,
        41,
    );
    let serve_queries: Vec<_> = (0..8).map(|_| serve_workload.draw()).collect();
    let mut engine = tensor_casting::serve::ServeEngine::with_defaults(&serve_model);

    // Warm-up: miss-cast every catalog entry, size the fused buffers.
    engine.score(&serve_model, &serve_queries).unwrap();
    engine.score(&serve_model, &serve_queries).unwrap();

    let before = allocations();
    for _ in 0..10 {
        let scored = engine.score(&serve_model, &serve_queries).unwrap();
        assert_eq!(scored.num_queries(), 8);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm-cache fused serving steady state must not allocate"
    );

    // ---- Snapshot publication: warm slab copy into recycled buffers ---
    // The concurrent train-and-serve publish path: once the store's
    // circulating buffer census is warm (current + retained ring + one
    // free buffer), every further publish recycles an unpinned buffer —
    // the slab copy lands in place (`copy_weights_from`), the ring
    // rotates within warmed VecDeque capacity, and the version counter
    // is an atomic store. Nothing allocates.
    let snap_store = tensor_casting::snapshot::SnapshotStore::new(&serve_model, 0, 2);
    for s in 1..=4u64 {
        snap_store.publish(&serve_model, s);
    }
    let before = allocations();
    for s in 5..=14u64 {
        snap_store.publish(&serve_model, s);
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm snapshot publish steady state must not allocate"
    );

    // ---- Prefetched batch source: warm checkout/recycle ---------------
    // A PrefetchSource generates on a producer thread and refills
    // buffers the consumer recycles across the thread boundary. Once
    // the circulating buffer pool is warm (capacity + 2 batches), a
    // checkout/recycle cycle allocates nothing on EITHER thread: the
    // consumer's pop/park are queue operations within warmed capacity,
    // and the producer's refill goes through the `*_into` forms into a
    // recycled CtrBatch (reseeded cached samplers, no CDF rebuild).
    // The producer opts itself into the allocation counter through this
    // wrapper — tracking is thread-local precisely so that *untracked*
    // harness threads don't pollute the counter, but the producer is
    // part of the contract under test.
    struct TrackedSource(SyntheticSource);
    impl BatchSource for TrackedSource {
        fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
            TRACKING.with(|t| t.set(true));
            self.0.next_batch()
        }
        fn recycle(&mut self, batch: Arc<CtrBatch>) {
            self.0.recycle(batch);
        }
    }
    let prefetch_tables = vec![
        TableWorkload::new(
            Popularity::Zipf {
                rows: 500,
                exponent: 1.0,
            },
            4,
        ),
        TableWorkload::new(Popularity::Uniform { rows: 200 }, 2),
    ];
    let inner = TrackedSource(SyntheticSource::new(
        SyntheticCtr::new(prefetch_tables, 8, 51),
        batch,
    ));
    let capacity = 2;
    let mut prefetched = PrefetchSource::new(inner, capacity);
    // Warm-up: let the buffer pool reach its steady census (the
    // producer allocates at most capacity + 2 CtrBatches, ever).
    for _ in 0..12 {
        let b = prefetched.next_batch().expect("endless");
        prefetched.recycle(b);
    }
    // Quiesce: with the consumer idle the producer fills the queue to
    // capacity and parks *before* generating another batch, so no
    // producer-side work races the measurement below.
    let quiesce = |p: &PrefetchSource<TrackedSource>| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while p.ready_len() < capacity {
            assert!(Instant::now() < deadline, "producer never filled the queue");
            std::thread::yield_now();
        }
    };
    quiesce(&prefetched);

    let before = allocations();
    for _ in 0..10 {
        let b = prefetched.next_batch().expect("endless");
        prefetched.recycle(b);
    }
    quiesce(&prefetched);
    assert_eq!(
        allocations() - before,
        0,
        "warm prefetch checkout/recycle steady state must not allocate \
         (is the producer rebuilding samplers or allocating fresh batches?)"
    );

    // The bounded-queue half of the contract, under the slowest
    // possible consumer (one that stopped consuming): the producer must
    // hold at `capacity` ready batches, not run ahead.
    let produced_at_cap = prefetched.stats().produced;
    std::thread::sleep(Duration::from_millis(25));
    let stats = prefetched.stats();
    assert_eq!(
        stats.produced, produced_at_cap,
        "producer kept generating past the bounded-queue cap"
    );
    assert!(
        stats.max_ready <= capacity,
        "ready-queue high-water {} exceeded the capacity {capacity}",
        stats.max_ready
    );

    // ---- Sharded prefetch: warm multi-producer checkout/recycle -------
    // N producers, N bounded queues, one round-robin consumer. The same
    // contract as the single-producer source, per shard: every producer
    // opts into tracking, and once each shard's buffer pool is warm a
    // full round of checkouts and recycles allocates nothing anywhere.
    let shard_tables = || {
        vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 500,
                    exponent: 1.0,
                },
                4,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 200 }, 2),
        ]
    };
    let shards = 2;
    let mut sharded_pf = ShardedPrefetchSource::new(
        (0..shards as u64)
            .map(|s| {
                TrackedSource(SyntheticSource::new(
                    SyntheticCtr::new(shard_tables(), 8, 61 + s),
                    batch,
                ))
            })
            .collect(),
        capacity,
    );
    // Warm every shard's circulating pool.
    for _ in 0..12 * shards {
        let b = sharded_pf.next_batch().expect("endless");
        sharded_pf.recycle(b);
    }
    // Quiesce: every shard's producer has filled its queue to capacity
    // (ready = produced - delivered) and parked.
    let quiesce_sharded = |p: &ShardedPrefetchSource<TrackedSource>| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let full = (0..shards).all(|s| {
                let st = p.shard_stats(s);
                st.produced - st.delivered >= capacity as u64
            });
            if full {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "a producer never filled its queue"
            );
            std::thread::yield_now();
        }
    };
    quiesce_sharded(&sharded_pf);

    let before = allocations();
    for _ in 0..5 * shards {
        let b = sharded_pf.next_batch().expect("endless");
        sharded_pf.recycle(b);
    }
    quiesce_sharded(&sharded_pf);
    assert_eq!(
        allocations() - before,
        0,
        "warm sharded prefetch checkout/recycle steady state must not allocate"
    );

    // ---- SIMD kernel tiers ---------------------------------------------
    // The runtime-dispatched kernels must be allocation-free on every
    // tier the host supports: the AVX2/FMA paths are straight-line
    // intrinsic loops over caller-owned slices, and tier selection is an
    // atomic load (the env read behind the OnceLock happened at first
    // dispatch, during warm-up). Certified by forcing each tier through
    // the same warmed embedding step and a GEMM round-trip.
    use tensor_casting::tensor::simd;
    let a = random_matrix(48, 33, 21); // ragged shapes: every vector tail runs
    let b = random_matrix(33, 29, 22);
    let at_rhs = random_matrix(48, 29, 23); // a^T * at_rhs: 33 x 29
    let bt = random_matrix(29, 33, 24); // a * bt^T: 48 x 29
    let mut gemm_out = Matrix::zeros(48, 29);
    let mut at_out = Matrix::zeros(33, 29);
    let mut bt_out = Matrix::zeros(48, 29);
    for tier in simd::KernelDispatch::available() {
        simd::force(Some(tier));
        // Warm under this tier (the first forced dispatch resolves the
        // feature-detection caches, which must not count either way).
        embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
        a.matmul_into_with(&b, &mut gemm_out, tier).unwrap();

        let before = allocations();
        for _ in 0..5 {
            embedding_step(&mut pooled, &mut coalesced, &mut table, &mut sgd);
            scatter_apply_dense(&mut ada_table, &coalesced.rows, &coalesced.grads, &mut ada)
                .unwrap();
            scatter_apply_dense(
                &mut adam_table,
                &coalesced.rows,
                &coalesced.grads,
                &mut adam,
            )
            .unwrap();
            a.matmul_into_with(&b, &mut gemm_out, tier).unwrap();
            a.matmul_at_into_with(&at_rhs, &mut at_out, tier).unwrap();
            a.matmul_bt_into_with(&bt, &mut bt_out, tier).unwrap();
        }
        assert_eq!(
            allocations() - before,
            0,
            "{} kernel tier must not allocate in steady state",
            tier.name()
        );
    }
    simd::force(None);
}

//! Cross-validation between the two timing models in this repository:
//!
//! * the **analytic** cost model (`tcast-system`): bytes-from-formulas
//!   divided by calibrated effective bandwidths — fast, used for the
//!   figure sweeps;
//! * the **instruction-level** model (`tcast-nmp` driving `tcast-dram`):
//!   every 64 B DRAM transaction scheduled on the cycle-level simulator.
//!
//! The paper's methodology leans on exactly this consistency (analytic
//! traffic x Ramulator-measured bandwidth ~= emulated execution); these
//! tests require the two to agree within modelling error on matched
//! workloads.

use tensor_casting::core::tensor_casting;
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::embedding::{gradient_expand_coalesce, traffic, EmbeddingTable};
use tensor_casting::nmp::{NmpPool, PoolConfig};
use tensor_casting::system::Calibration;
use tensor_casting::tensor::{Matrix, SplitMix64};

/// Builds a pool + calibration that describe the SAME hardware: 4
/// channels of dual-rank DDR4-3200.
fn matched_models() -> (NmpPool, Calibration) {
    let pool = NmpPool::new(PoolConfig::small(4));
    let cal = Calibration {
        pool_channels: 4,
        ..Calibration::default()
    };
    (pool, cal)
}

fn ratio_within(a: f64, b: f64, factor: f64) -> bool {
    let r = a / b;
    r >= 1.0 / factor && r <= factor
}

#[test]
fn gather_reduce_times_agree() {
    let (mut pool, cal) = matched_models();
    let dim = 64;
    let table = EmbeddingTable::seeded(50_000, dim, 1);
    let handle = pool.load_table(&table).unwrap();
    let index = TableWorkload::new(DatasetPreset::Random.popularity().with_rows(50_000), 10)
        .generator(7)
        .next_batch(512);

    // Instruction-level measurement.
    let (_, exec) = pool.gather_reduce(handle, &index).unwrap();

    // Analytic prediction: row reads at gather efficiency + output-drain
    // writes at streaming efficiency (no index bytes: those ride the
    // instruction queue).
    let s = traffic::WorkloadShape::of(&index, dim);
    let read_b = (s.lookups * s.row_bytes()) as f64;
    let write_b = (s.outputs * s.row_bytes()) as f64;
    let analytic_ns = read_b / (cal.pool_peak_gbps() * cal.pool_gather_eff)
        + write_b / (cal.pool_peak_gbps() * cal.pool_stream_eff);

    assert!(
        ratio_within(exec.nanoseconds, analytic_ns, 1.6),
        "instruction-level {} ns vs analytic {analytic_ns} ns",
        exec.nanoseconds
    );
}

#[test]
fn scatter_times_agree() {
    let (mut pool, cal) = matched_models();
    let dim = 64;
    let table = EmbeddingTable::seeded(50_000, dim, 2);
    let handle = pool.load_table(&table).unwrap();
    let index = TableWorkload::new(DatasetPreset::Random.popularity().with_rows(50_000), 10)
        .generator(9)
        .next_batch(512);
    let grads = Matrix::filled(512, dim, 0.1);
    let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();

    let exec = pool.scatter_sgd(handle, &coalesced, 0.1, false).unwrap();

    let s = traffic::WorkloadShape::of(&index, dim);
    // Queue-fed scatter: U-row RMW.
    let rmw_b = (2 * s.unique * s.row_bytes()) as f64;
    let analytic_ns = rmw_b / (cal.pool_peak_gbps() * cal.pool_rmw_eff);

    assert!(
        ratio_within(exec.nanoseconds, analytic_ns, 1.6),
        "instruction-level {} ns vs analytic {analytic_ns} ns",
        exec.nanoseconds
    );
}

#[test]
fn casted_backward_times_agree() {
    let (mut pool, cal) = matched_models();
    let dim = 64;
    let table = EmbeddingTable::seeded(20_000, dim, 3);
    let handle = pool.load_table(&table).unwrap();
    let index = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(20_000),
        10,
    )
    .generator(11)
    .next_batch(256);
    let mut grads = Matrix::zeros(256, dim);
    let mut rng = SplitMix64::new(5);
    for v in grads.as_mut_slice() {
        *v = rng.next_range(-1.0, 1.0);
    }
    let casted = tensor_casting(&index);
    let (_, exec) = pool.casted_gather_reduce(handle, &grads, &casted).unwrap();

    let s = traffic::WorkloadShape::of(&index, dim);
    let staging_b = (s.outputs * s.row_bytes()) as f64;
    let read_b = (s.lookups * s.row_bytes()) as f64;
    let write_b = (s.unique * s.row_bytes()) as f64;
    let analytic_ns = staging_b / (cal.pool_peak_gbps() * cal.pool_stream_eff)
        + read_b / (cal.pool_peak_gbps() * cal.pool_gather_eff)
        + write_b / (cal.pool_peak_gbps() * cal.pool_stream_eff);

    assert!(
        ratio_within(exec.nanoseconds, analytic_ns, 1.7),
        "instruction-level {} ns vs analytic {analytic_ns} ns",
        exec.nanoseconds
    );
}

#[test]
fn casting_cuts_instruction_level_backward_time_too() {
    // The 2x-traffic claim measured END TO END on the cycle-level model:
    // baseline backward (expand write + coalesce read/write as DRAM
    // streams) vs casted backward on the pool.
    let (mut pool, _) = matched_models();
    let dim = 64;
    let table = EmbeddingTable::seeded(20_000, dim, 4);
    let handle = pool.load_table(&table).unwrap();
    let index = TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(20_000),
        10,
    )
    .generator(13)
    .next_batch(256);
    let grads = Matrix::filled(256, dim, 0.05);

    // Casted path on the pool.
    let casted = tensor_casting(&index);
    let (_, casted_exec) = pool.casted_gather_reduce(handle, &grads, &casted).unwrap();

    // Baseline path bytes are strictly larger; with equal effective
    // bandwidth the instruction-level casted path must win. Compare
    // against the analytic baseline bytes at the pool's measured gather
    // throughput for a conservative check.
    let s = traffic::WorkloadShape::of(&index, dim);
    let baseline_bytes = traffic::expand_coalesce_total(&s).total() as f64;
    let measured_bw = casted_exec.dram_bytes as f64 / casted_exec.nanoseconds; // B/ns
    let baseline_ns = baseline_bytes / measured_bw;
    assert!(
        baseline_ns > 1.3 * casted_exec.nanoseconds,
        "baseline {baseline_ns} ns should exceed casted {} ns by the traffic ratio",
        casted_exec.nanoseconds
    );
}

//! The concurrent train-and-serve invariants (PR: tcast-snapshot):
//!
//! 1. **Versions are strictly monotonic** — every publication (normal,
//!    hot-swap or rollback) returns a strictly larger version, for any
//!    interleaving of operations.
//! 2. **Rollback is byte-exact** — rolling back to a retained version
//!    re-publishes that version's exact weight bytes under a new
//!    version.
//! 3. **No torn snapshots** — under a hammering writer, a reader's
//!    resolved snapshot is always internally consistent.
//! 4. **Concurrent serving is snapshot-consistent** — a batch served at
//!    version V scores bit-identically to a stop-the-world oracle: the
//!    offline trainer advanced to V's step count, scoring the same
//!    queries. Holds across `Execution::{Serial, Pooled}` engines and
//!    publish cadences K ∈ {1, 4, 16}.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tensor_casting::datasets::{BatchSource, SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{BackwardMode, Dlrm, DlrmConfig, Execution, TrainLoop, Trainer};
use tensor_casting::serve::{
    serve_concurrent, CandidateCount, ConcurrentConfig, QueryModel, ServeEngine, SnapshotStore,
};
use tensor_casting::tensor::Pool;

/// Every trainable weight of the model, as bits.
fn dlrm_bits(m: &Dlrm) -> Vec<u32> {
    let mut bits = Vec::new();
    for layer in m.bottom().layers().iter().chain(m.top().layers()) {
        bits.extend(layer.weight().as_slice().iter().map(|v| v.to_bits()));
        bits.extend(layer.bias().iter().map(|v| v.to_bits()));
    }
    for t in 0..m.num_tables() {
        bits.extend(m.table(t).as_slice().iter().map(|v| v.to_bits()));
    }
    bits
}

fn workload(seed: u64) -> QueryModel {
    let cfg = DlrmConfig::tiny();
    QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        10,
        CandidateCount::Uniform { min: 1, max: 4 },
        1.0,
        seed,
    )
}

fn training_source() -> SyntheticSource {
    let cfg = DlrmConfig::tiny();
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 2),
        16,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariants 1 + 2: for any interleaving of publishes and rollbacks,
    /// returned versions strictly increase and a rollback's new head
    /// carries the target version's exact bytes.
    #[test]
    fn versions_monotonic_and_rollbacks_byte_exact(
        ops in proptest::collection::vec(0u8..4, 1..16),
    ) {
        let store = SnapshotStore::new(&Dlrm::new(DlrmConfig::tiny(), 1).unwrap(), 0, 3);
        let mut bits_of: HashMap<u64, Vec<u32>> = HashMap::new();
        bits_of.insert(1, dlrm_bits(store.latest().model()));
        let mut last_version = store.version();
        let mut steps = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            let v = if op == 0 && !store.retained_versions().is_empty() {
                // Roll back to a pseudo-randomly chosen retained version.
                let retained = store.retained_versions();
                let target = retained[i % retained.len()];
                let v = store.rollback_to(target).unwrap();
                let head = store.latest();
                prop_assert_eq!(head.version(), v);
                prop_assert_eq!(
                    dlrm_bits(head.model()),
                    bits_of[&target].clone(),
                    "rollback to {} lost bytes", target
                );
                v
            } else {
                steps += 1;
                let m = Dlrm::new(DlrmConfig::tiny(), 100 + i as u64).unwrap();
                let v = store.publish(&m, steps);
                prop_assert_eq!(dlrm_bits(store.latest().model()), dlrm_bits(&m));
                v
            };
            prop_assert!(v > last_version, "version {} after {}", v, last_version);
            prop_assert_eq!(store.version(), v);
            bits_of.insert(v, dlrm_bits(store.latest().model()));
            last_version = v;
        }
    }

    /// Invariant 4, the acceptance-criteria property: every batch a
    /// concurrent run served at version V is bit-identical to the offline
    /// trainer advanced to V's step count scoring the same queries — for
    /// serial and pooled engines, across publish cadences K ∈ {1, 4, 16}.
    #[test]
    fn concurrent_scores_bit_identical_to_offline_trainer_at_version(
        k_idx in 0usize..3,
        pooled in any::<bool>(),
        workload_seed in 1u64..500,
    ) {
        let k = [1usize, 4, 16][k_idx];
        let cfg = DlrmConfig::tiny();
        // Concurrent run: trainer + 2 engines, recording every batch.
        let trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut driver = TrainLoop::new(trainer, 2);
        let mut source = training_source();
        let store = SnapshotStore::new(driver.trainer().model(), 0, 2);
        let mut workloads = [workload(workload_seed), workload(workload_seed + 7)];
        let pool = Pool::new(2);
        let mut config = ConcurrentConfig::new(16, 4, 2 * k, k);
        config.record_batches = true;
        if pooled {
            config.execution = Execution::Pooled(Arc::new(Pool::new(2)));
        }
        let report = serve_concurrent(
            &mut driver, &mut source, &store, &mut workloads, &pool, &config,
        ).unwrap();
        prop_assert!(!report.recorded.is_empty());

        // Stop-the-world oracle: replay the same batch stream offline,
        // capturing the model bytes at each publish cadence, then rescore
        // every recorded batch at its snapshot's step count.
        let mut oracle = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut oracle_source = training_source();
        let mut records = report.recorded;
        records.sort_by_key(|r| r.steps);
        for rec in &records {
            while oracle.steps() < rec.steps {
                let batch = oracle_source.next_batch().unwrap();
                oracle.step(&batch).unwrap();
                oracle_source.recycle(batch);
            }
            prop_assert_eq!(oracle.steps(), rec.steps, "version {} cadence", rec.version);
            let mut engine = ServeEngine::with_defaults(oracle.model());
            let scored = engine.score(oracle.model(), rec.queries.iter()).unwrap();
            let oracle_bits: Vec<u32> =
                scored.fused_logits().as_slice().iter().map(|v| v.to_bits()).collect();
            let served_bits: Vec<u32> = rec.scores.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(
                served_bits, oracle_bits,
                "engine {} at version {} (steps {})", rec.engine, rec.version, rec.steps
            );
        }
    }
}

/// Invariant 3: a writer republishing as fast as it can never lets a
/// reader observe a half-copied model — every resolved snapshot's slabs
/// are uniform in the constant that version was filled with.
#[test]
fn hammering_writer_never_tears_a_reader_snapshot() {
    let cfg = DlrmConfig::tiny();
    let template = Dlrm::new(cfg.clone(), 1).unwrap();
    let store = SnapshotStore::new(&template, 0, 1);
    std::thread::scope(|s| {
        let store = &store;
        s.spawn(move || {
            let mut m = Dlrm::new(cfg, 1).unwrap();
            for step in 1..400u64 {
                let c = step as f32;
                for t in 0..m.num_tables() {
                    m.table_mut(t).as_mut_slice().fill(c);
                }
                store.publish(&m, step);
            }
        });
        for _ in 0..3 {
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..300 {
                    let snap = store.latest();
                    assert!(snap.version() >= last, "versions went backwards");
                    last = snap.version();
                    if snap.version() == 1 {
                        continue; // the seeded template, not constant-filled
                    }
                    for t in 0..snap.model().num_tables() {
                        let slab = snap.model().table(t).as_slice();
                        assert!(
                            slab.iter().all(|&v| v == slab[0]),
                            "torn slab at version {}",
                            snap.version()
                        );
                    }
                }
            });
        }
    });
    assert!(store.version() > 1);
}

/// The freshness SLA is live: a concurrent run reports per-batch
/// versions that the store actually published, staleness within the
/// configured bound + the publication burst, and a positive p99 model
/// age on both the fleet and per-engine views.
#[test]
fn freshness_ledger_reflects_published_versions() {
    let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 17).unwrap();
    let mut driver = TrainLoop::new(trainer, 2);
    let mut source = training_source();
    let store = SnapshotStore::new(driver.trainer().model(), 0, 2);
    let mut workloads = [workload(3), workload(11), workload(19)];
    let pool = Pool::new(2);
    let config = ConcurrentConfig::new(20, 5, 12, 4);
    let report = serve_concurrent(
        &mut driver,
        &mut source,
        &store,
        &mut workloads,
        &pool,
        &config,
    )
    .unwrap();
    assert_eq!(report.train.versions_published, vec![2, 3, 4]);
    assert_eq!(report.per_engine.len(), 3);
    assert_eq!(report.fleet.queries, 60);
    assert_eq!(report.freshness.batches(), 12);
    let head = store.version();
    for &v in &report.freshness.versions {
        assert!(v >= 1 && v <= head, "version {v} was never published");
    }
    assert!(report.freshness.p99_model_age_ns() > 0);
    // The fleet ledger is the merge of what each engine would report:
    // batch counts add up.
    assert_eq!(
        report.fleet.batches,
        report.per_engine.iter().map(|r| r.batches).sum::<u64>()
    );
}

//! The serving subsystem's cross-crate invariants:
//!
//! 1. **Fusion is bit-transparent** — a fused batch of queries scores
//!    bit-identically to scoring each query alone, across batch sizes
//!    and both `Execution` modes (the serving analogue of the paper's
//!    functional-equivalence validation).
//! 2. **Checkpoint -> serve round-trips** — a model restored from a
//!    checkpoint serves bit-identical scores to the original.
//! 3. **Online training is offline training** — interleaving serving
//!    with casted update steps leaves the update trajectory bit-identical
//!    to the offline `Trainer` fed the same batch stream.

use proptest::prelude::*;
use std::sync::Arc;
use tensor_casting::datasets::{SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{
    checkpoint::{load_checkpoint, save_checkpoint},
    BackwardMode, Dlrm, DlrmConfig, Execution, Trainer,
};
use tensor_casting::serve::{
    serve_online, ArrivalProcess, BatchPolicy, CandidateCount, OnlineConfig, Query, QueryModel,
    ServeConfig, ServeEngine,
};

fn workload(seed: u64, catalog: usize, max_candidates: usize) -> QueryModel {
    let cfg = DlrmConfig::tiny();
    QueryModel::new(
        &cfg.table_workloads(),
        cfg.dense_features,
        catalog,
        CandidateCount::Uniform {
            min: 1,
            max: max_candidates,
        },
        1.0,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invariant 1, the acceptance-criteria property: for any fused batch
    /// size and either execution schedule, per-query demuxed scores are
    /// bit-identical to scoring that query alone on a cold engine.
    #[test]
    fn fused_batches_score_bit_identically_to_per_query(
        seed in 1u64..1000,
        num_queries in 1usize..12,
        pooled_exec in any::<bool>(),
    ) {
        let model = Dlrm::new(DlrmConfig::tiny(), 7).unwrap();
        let execution = if pooled_exec {
            Execution::Pooled(Arc::new(tensor_casting::tensor::Pool::new(3)))
        } else {
            Execution::Serial
        };
        let mut wl = workload(seed, 8, 5);
        let queries: Vec<Arc<Query>> = (0..num_queries).map(|_| wl.draw()).collect();

        let mut fused_engine = ServeEngine::new(&model, 64, execution.clone());
        let fused = fused_engine.score(&model, &queries).unwrap();
        prop_assert_eq!(fused.num_queries(), num_queries);
        let fused_scores: Vec<Vec<f32>> =
            (0..num_queries).map(|i| fused.scores(i).to_vec()).collect();

        for (i, q) in queries.iter().enumerate() {
            // A cold, separate engine: no shared cache state, batch of 1.
            let mut solo_engine = ServeEngine::new(&model, 64, execution.clone());
            let solo = solo_engine.score(&model, std::iter::once(q)).unwrap();
            prop_assert_eq!(
                solo.scores(0),
                fused_scores[i].as_slice(),
                "query {} diverged (fused batch of {})",
                i,
                num_queries
            );
        }
    }

    /// Serial and pooled execution serve bit-identical fused logits.
    #[test]
    fn execution_modes_serve_bit_identically(seed in 1u64..500, n in 1usize..10) {
        let model = Dlrm::new(DlrmConfig::tiny(), 9).unwrap();
        let mut wl = workload(seed, 6, 4);
        let queries: Vec<Arc<Query>> = (0..n).map(|_| wl.draw()).collect();
        let mut serial = ServeEngine::new(&model, 64, Execution::Serial);
        let pool = Arc::new(tensor_casting::tensor::Pool::new(4));
        let mut pooled = ServeEngine::new(&model, 64, Execution::Pooled(pool));
        let a = serial.score(&model, &queries).unwrap().fused_logits().as_slice().to_vec();
        let b = pooled.score(&model, &queries).unwrap();
        prop_assert_eq!(b.fused_logits().as_slice(), a.as_slice());
    }
}

/// Invariant 2: train, checkpoint, restore into a fresh model — the
/// serve engine's scores over the restored model are bit-identical to
/// the original's.
#[test]
fn checkpoint_restore_serves_bit_identical_scores() {
    let cfg = DlrmConfig::tiny();
    let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 31).unwrap();
    let mut data = SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 5);
    for _ in 0..5 {
        trainer.step(&data.next_batch(32)).unwrap();
    }

    let mut buf = Vec::new();
    save_checkpoint(&mut buf, trainer.model()).unwrap();
    // A fresh model from a different seed: every parameter differs until
    // the checkpoint overwrites it.
    let mut restored = Dlrm::new(cfg, 999_999).unwrap();
    load_checkpoint(&mut buf.as_slice(), &mut restored).unwrap();

    let mut wl = workload(77, 10, 6);
    let queries: Vec<Arc<Query>> = (0..20).map(|_| wl.draw()).collect();
    let mut engine_orig = ServeEngine::with_defaults(trainer.model());
    let mut engine_restored = ServeEngine::with_defaults(&restored);
    for chunk in queries.chunks(7) {
        let a = engine_orig
            .score(trainer.model(), chunk)
            .unwrap()
            .fused_logits()
            .as_slice()
            .to_vec();
        let b = engine_restored.score(&restored, chunk).unwrap();
        assert_eq!(
            b.fused_logits().as_slice(),
            a.as_slice(),
            "restored model must serve bit-identical scores"
        );
    }
}

/// Invariant 3: the online loop's update trajectory — losses and final
/// weights — is bit-identical to an offline trainer consuming the same
/// synthetic batch stream, for both execution schedules.
#[test]
fn online_updates_are_bit_identical_to_offline_training() {
    let cfg = DlrmConfig::tiny();
    let mk_source = || {
        SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 13),
            24,
        )
    };
    for execution in [
        Execution::Serial,
        Execution::Pooled(Arc::new(tensor_casting::tensor::Pool::new(3))),
    ] {
        // Online: serve 60 queries, one update step every 2 fused batches.
        let mut online_trainer = Trainer::with_execution(
            cfg.clone(),
            BackwardMode::Casted,
            tensor_casting::dlrm::EmbeddingOptimizer::Sgd,
            execution.clone(),
            55,
        )
        .unwrap();
        let mut source = mk_source();
        let mut engine = ServeEngine::new(online_trainer.model(), 64, execution.clone());
        let (report, online) = serve_online(
            &mut engine,
            &mut online_trainer,
            &mut source,
            &mut workload(3, 8, 4),
            &ServeConfig {
                queries: 60,
                arrivals: ArrivalProcess::Poisson { mean_qps: 20_000.0 },
                policy: BatchPolicy::Fixed { batch: 5 },
                sla_ns: 100_000_000,
                seed: 4,
                shed_unmeetable: false,
            },
            OnlineConfig {
                update_every: 2,
                restore: None,
            },
        )
        .unwrap();
        assert_eq!(report.queries, 60);
        assert!(online.updates > 0);

        // Offline: the same number of steps over the same stream.
        let mut offline_trainer = Trainer::with_execution(
            cfg.clone(),
            BackwardMode::Casted,
            tensor_casting::dlrm::EmbeddingOptimizer::Sgd,
            execution.clone(),
            55,
        )
        .unwrap();
        let mut offline_source = mk_source();
        let mut offline_losses = Vec::new();
        for _ in 0..online.updates {
            let batch = tensor_casting::datasets::BatchSource::next_batch(&mut offline_source)
                .expect("endless");
            offline_losses.push(offline_trainer.step(&batch).unwrap().loss);
        }
        assert_eq!(
            online.losses, offline_losses,
            "online losses diverged from offline"
        );
        for i in 0..offline_trainer.model().num_tables() {
            assert_eq!(
                offline_trainer
                    .model()
                    .table(i)
                    .max_abs_diff(online_trainer.model().table(i))
                    .unwrap(),
                0.0,
                "table {i} diverged between online and offline training"
            );
        }
    }
}

/// The staleness ledger is internally consistent: every served batch has
/// a staleness entry, and with `update_every = k` staleness never
/// reaches k.
#[test]
fn staleness_accounting_is_consistent() {
    let cfg = DlrmConfig::tiny();
    let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 2).unwrap();
    let mut source = SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 8),
        16,
    );
    let mut engine = ServeEngine::with_defaults(trainer.model());
    let (report, online) = serve_online(
        &mut engine,
        &mut trainer,
        &mut source,
        &mut workload(6, 6, 3),
        &ServeConfig {
            queries: 45,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 6,
                think_ns: 500,
            },
            policy: BatchPolicy::Fixed { batch: 3 },
            sla_ns: 100_000_000,
            seed: 12,
            shed_unmeetable: false,
        },
        OnlineConfig {
            update_every: 3,
            restore: None,
        },
    )
    .unwrap();
    assert_eq!(online.staleness_batches.len() as u64, report.batches);
    assert!(online.max_staleness() < 3);
    assert_eq!(online.updates as usize, online.losses.len());
    assert_eq!(trainer.steps(), online.updates);
}

//! SIMD-tier equivalence suite: every kernel tier must be *bit-identical*
//! to the scalar oracle (performance invariant 9), except the opt-in FMA
//! tier, which contracts `a*b + c` and is therefore only tolerance-gated.
//!
//! The proptests drive the explicit-dispatch entry points
//! ([`Matrix::matmul_into_with`], `tensor::simd::{add_assign, axpy, dot}`,
//! `embedding::simd::*_row`) so they stay independent of the process-wide
//! [`simd::force`] override; the single end-to-end test owns `force()`
//! and walks a full `Trainer` trajectory per tier.

use proptest::prelude::*;
use tensor_casting::core::{casted_gather_reduce, tensor_casting};
use tensor_casting::datasets::SyntheticCtr;
use tensor_casting::dlrm::{checkpoint::save_checkpoint, BackwardMode, DlrmConfig, Trainer};
use tensor_casting::embedding::{
    gather_reduce_into,
    optim::{Adagrad, Adam},
    scatter_apply, simd as opt_simd, EmbeddingTable, IndexArray,
};
use tensor_casting::tensor::{simd, Exec, KernelDispatch, Matrix, SplitMix64};

/// Fills a buffer with mostly-normal values plus the adversarial cases —
/// NaN, `-0.0`, and denormals — that a bit-identity claim must survive.
fn fill_special(rng: &mut SplitMix64, out: &mut [f32]) {
    for v in out.iter_mut() {
        *v = match rng.next_below(16) {
            0 => f32::NAN,
            1 => -0.0,
            2 => 1.0e-40,
            3 => -1.0e-41,
            _ => rng.next_range(-2.0, 2.0),
        };
    }
}

fn special_matrix(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    fill_special(rng, m.as_mut_slice());
    m
}

fn special_vec(n: usize, rng: &mut SplitMix64) -> Vec<f32> {
    let mut v = vec![0.0f32; n];
    fill_special(rng, &mut v);
    v
}

/// Index of the first element whose bit pattern differs, if any.
fn first_bit_mismatch(a: &[f32], b: &[f32]) -> Option<(usize, f32, f32)> {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x.to_bits() != y.to_bits())
        .map(|i| (i, a[i], b[i]))
}

/// FMA-tier comparison: contraction changes rounding, not semantics, so
/// NaNs must still align and finite values must agree to a loose bound.
fn fma_close(a: f32, b: f32) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= 1e-3 + 1e-4 * a.abs().max(b.abs())
}

fn first_fma_mismatch(a: &[f32], b: &[f32]) -> Option<(usize, f32, f32)> {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| !fma_close(*x, *y))
        .map(|i| (i, a[i], b[i]))
}

fn non_scalar_tiers() -> Vec<KernelDispatch> {
    KernelDispatch::available()
        .into_iter()
        .filter(|&d| d != KernelDispatch::Scalar)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three GEMM entry points across ragged shapes: the AVX2 tier is
    /// bit-identical to scalar; FMA stays within contraction tolerance.
    #[test]
    fn gemm_tiers_match_scalar(
        m in 1usize..67,
        k in 1usize..67,
        n in 1usize..67,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let a = special_matrix(m, k, &mut rng);
        let b = special_matrix(k, n, &mut rng);
        let at_lhs = special_matrix(k, m, &mut rng); // at_lhs^T * b_at: m x n
        let b_at = special_matrix(k, n, &mut rng);
        let bt_rhs = special_matrix(n, k, &mut rng); // a * bt_rhs^T: m x n

        let mut want = Matrix::zeros(m, n);
        let mut want_at = Matrix::zeros(m, n);
        let mut want_bt = Matrix::zeros(m, n);
        a.matmul_into_with(&b, &mut want, KernelDispatch::Scalar).unwrap();
        at_lhs.matmul_at_into_with(&b_at, &mut want_at, KernelDispatch::Scalar).unwrap();
        a.matmul_bt_into_with(&bt_rhs, &mut want_bt, KernelDispatch::Scalar).unwrap();

        let mut got = Matrix::zeros(m, n);
        for tier in non_scalar_tiers() {
            for (name, want, run) in [
                ("matmul", &want, 0usize),
                ("matmul_at", &want_at, 1),
                ("matmul_bt", &want_bt, 2),
            ] {
                match run {
                    0 => a.matmul_into_with(&b, &mut got, tier).unwrap(),
                    1 => at_lhs.matmul_at_into_with(&b_at, &mut got, tier).unwrap(),
                    _ => a.matmul_bt_into_with(&bt_rhs, &mut got, tier).unwrap(),
                }
                if tier == KernelDispatch::Fma {
                    let bad = first_fma_mismatch(want.as_slice(), got.as_slice());
                    prop_assert!(
                        bad.is_none(),
                        "{name} fma vs scalar diverged at {bad:?} (m={m} k={k} n={n})"
                    );
                } else {
                    let bad = first_bit_mismatch(want.as_slice(), got.as_slice());
                    prop_assert!(
                        bad.is_none(),
                        "{name} {} vs scalar bit mismatch at {bad:?} (m={m} k={k} n={n})",
                        tier.name()
                    );
                }
            }
        }
    }

    /// The gather/axpy vector kernels: `add_assign` has no contracted
    /// form, so it is bit-identical on *every* tier (FMA included);
    /// `axpy` and `dot` are bit-gated on AVX2 and tolerance-gated on FMA.
    #[test]
    fn vector_kernels_match_scalar(n in 1usize..67, seed in any::<u64>(), alpha in -2.0f32..2.0) {
        let mut rng = SplitMix64::new(seed);
        let acc0 = special_vec(n, &mut rng);
        let src = special_vec(n, &mut rng);

        let mut want_add = acc0.clone();
        simd::add_assign(KernelDispatch::Scalar, &mut want_add, &src);
        let mut want_axpy = acc0.clone();
        simd::axpy(KernelDispatch::Scalar, &mut want_axpy, &src, alpha);
        let want_dot = simd::dot(KernelDispatch::Scalar, &acc0, &src);

        for tier in non_scalar_tiers() {
            let mut add = acc0.clone();
            simd::add_assign(tier, &mut add, &src);
            let bad = first_bit_mismatch(&want_add, &add);
            prop_assert!(bad.is_none(), "add_assign {} mismatch at {bad:?} (n={n})", tier.name());

            let mut axpy = acc0.clone();
            simd::axpy(tier, &mut axpy, &src, alpha);
            let dot = simd::dot(tier, &acc0, &src);
            if tier == KernelDispatch::Fma {
                let bad = first_fma_mismatch(&want_axpy, &axpy);
                prop_assert!(bad.is_none(), "axpy fma diverged at {bad:?} (n={n})");
                prop_assert!(fma_close(want_dot, dot), "dot fma {want_dot} vs {dot} (n={n})");
            } else {
                let bad = first_bit_mismatch(&want_axpy, &axpy);
                prop_assert!(bad.is_none(), "axpy {} mismatch at {bad:?} (n={n})", tier.name());
                prop_assert!(
                    want_dot.to_bits() == dot.to_bits(),
                    "dot {} {want_dot} vs {dot} (n={n})",
                    tier.name()
                );
            }
        }
    }

    /// Per-row optimizer updates run the non-contracted path on every
    /// tier, so params *and* state are bit-identical across all of them.
    #[test]
    fn optimizer_rows_match_scalar(n in 1usize..67, seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let param0 = special_vec(n, &mut rng);
        let grad = special_vec(n, &mut rng);
        let state0 = special_vec(n, &mut rng);
        let adam = opt_simd::AdamRow {
            lr: 0.01,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bc1: 1.0 - 0.9f32.powi(3),
            bc2: 1.0 - 0.999f32.powi(3),
        };

        // (label, updater over (tier, state_a, state_b, param)).
        type Step = fn(KernelDispatch, &mut [f32], &mut [f32], &mut [f32], &[f32], opt_simd::AdamRow);
        let steps: [(&str, Step); 5] = [
            ("sgd", |d, _a, _b, p, g, _h| opt_simd::sgd_row(d, 0.05, p, g)),
            ("momentum", |d, a, _b, p, g, _h| opt_simd::momentum_row(d, 0.05, 0.9, a, p, g)),
            ("adagrad", |d, a, _b, p, g, _h| opt_simd::adagrad_row(d, 0.05, 1e-8, a, p, g)),
            ("rmsprop", |d, a, _b, p, g, _h| opt_simd::rmsprop_row(d, 0.05, 0.95, 1e-8, a, p, g)),
            ("adam", |d, a, b, p, g, h| opt_simd::adam_row(d, h, a, b, p, g)),
        ];

        for (label, step) in steps {
            let mut wp = param0.clone();
            let mut wa = state0.clone();
            let mut wb = state0.clone();
            step(KernelDispatch::Scalar, &mut wa, &mut wb, &mut wp, &grad, adam);
            for tier in non_scalar_tiers() {
                let mut p = param0.clone();
                let mut a = state0.clone();
                let mut b = state0.clone();
                step(tier, &mut a, &mut b, &mut p, &grad, adam);
                for (what, want, got) in [("param", &wp, &p), ("state1", &wa, &a), ("state2", &wb, &b)] {
                    let bad = first_bit_mismatch(want, got);
                    prop_assert!(
                        bad.is_none(),
                        "{label} {} {what} mismatch at {bad:?} (n={n})",
                        tier.name()
                    );
                }
            }
        }
    }
}

/// The one test that owns the process-wide [`simd::force`] override: the
/// full gather → casted-reduce → scatter operator chain and a complete
/// `Trainer` trajectory (per-step losses + final checkpoint bytes) must
/// be bit-identical on every non-FMA tier; the FMA trajectory must stay
/// finite and close.
#[test]
fn forced_dispatch_is_trajectory_bit_identical() {
    let mut rng = SplitMix64::new(97);
    let table = EmbeddingTable::seeded(300, 37, 5); // ragged dim: tails run
    let samples: Vec<Vec<u32>> = (0..64)
        .map(|_| (0..5).map(|_| rng.next_below(300) as u32).collect())
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    let casted = tensor_casting(&index);
    let mut grads = Matrix::zeros(64, 37);
    fill_special(&mut rng, grads.as_mut_slice());

    let config = DlrmConfig::tiny();
    let run_operators = |tier: KernelDispatch| {
        simd::force(Some(tier));
        let mut pooled = Matrix::zeros(64, 37);
        gather_reduce_into(&table, &index, &mut pooled, Exec::Serial).unwrap();
        let coalesced = casted_gather_reduce(&grads, &casted).unwrap();
        let mut ada_table = table.clone();
        let mut adam_table = table.clone();
        scatter_apply(&mut ada_table, &coalesced, &mut Adagrad::new(0.05, 1e-8)).unwrap();
        scatter_apply(
            &mut adam_table,
            &coalesced,
            &mut Adam::new(0.01, 0.9, 0.999, 1e-8),
        )
        .unwrap();
        simd::force(None);
        (pooled, coalesced, ada_table, adam_table)
    };
    let run_trainer = |tier: KernelDispatch| {
        simd::force(Some(tier));
        let mut trainer = Trainer::new(config.clone(), BackwardMode::Casted, 11).unwrap();
        let mut stream = SyntheticCtr::new(config.table_workloads(), config.dense_features, 13);
        let losses: Vec<u32> = (0..6)
            .map(|_| trainer.step(&stream.next_batch(32)).unwrap().loss.to_bits())
            .collect();
        let mut bytes = Vec::new();
        save_checkpoint(&mut bytes, trainer.model()).unwrap();
        simd::force(None);
        (losses, bytes)
    };

    let (pooled_s, coalesced_s, ada_s, adam_s) = run_operators(KernelDispatch::Scalar);
    let (losses_s, bytes_s) = run_trainer(KernelDispatch::Scalar);
    assert!(losses_s.iter().all(|&b| f32::from_bits(b).is_finite()));

    for tier in non_scalar_tiers() {
        let (pooled, coalesced, ada, adam) = run_operators(tier);
        // The operator chain never contracts, so even FMA is bit-gated.
        assert!(
            first_bit_mismatch(pooled_s.as_slice(), pooled.as_slice()).is_none(),
            "{}: gather_reduce diverged from scalar",
            tier.name()
        );
        assert!(
            first_bit_mismatch(coalesced_s.grads().as_slice(), coalesced.grads().as_slice())
                .is_none(),
            "{}: casted_gather_reduce diverged from scalar",
            tier.name()
        );
        // Bit comparison, not max_abs_diff: NaN gradients flow into the
        // tables and NaN != NaN would mask an identical-bits result.
        assert!(
            first_bit_mismatch(ada_s.as_slice(), ada.as_slice()).is_none(),
            "{}: adagrad scatter diverged from scalar",
            tier.name()
        );
        assert!(
            first_bit_mismatch(adam_s.as_slice(), adam.as_slice()).is_none(),
            "{}: adam scatter diverged from scalar",
            tier.name()
        );

        let (losses, bytes) = run_trainer(tier);
        if tier == KernelDispatch::Fma {
            for (i, (&ws, &gs)) in losses_s.iter().zip(losses.iter()).enumerate() {
                let (w, g) = (f32::from_bits(ws), f32::from_bits(gs));
                assert!(g.is_finite(), "fma: loss {i} not finite");
                assert!((w - g).abs() < 5e-2, "fma: step {i} loss {w} vs {g}");
            }
        } else {
            assert_eq!(
                losses_s,
                losses,
                "{}: loss trajectory diverged",
                tier.name()
            );
            assert_eq!(
                bytes_s,
                bytes,
                "{}: final model weights diverged",
                tier.name()
            );
        }
    }
}

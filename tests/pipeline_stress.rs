//! Stress tests for the casting pipeline and the parallel kernels under
//! sustained, randomized multi-iteration load — failure-injection style
//! coverage for the concurrency machinery. Includes the drop/shutdown
//! ordering contract: dropping a `TrainLoop` or a `PrefetchSource`
//! mid-stream must join its worker threads without deadlock or panic,
//! whichever side of the hand-off is slow at that moment.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor_casting::core::{
    casted_gather_reduce, casted_gather_reduce_parallel, fused_casted_backward, tensor_casting,
    tensor_casting_parallel, CastingPipeline,
};
use tensor_casting::datasets::{
    BatchSource, CtrBatch, PrefetchSource, SyntheticCtr, SyntheticSource,
};
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, TrainLoop, Trainer};
use tensor_casting::embedding::{
    gather_reduce, gather_reduce_parallel, gradient_coalesce_parallel, gradient_expand,
    gradient_expand_coalesce, optim::Sgd, scatter_apply, EmbeddingTable, IndexArray, ShardedTable,
};
use tensor_casting::tensor::{matmul_parallel, Matrix, SplitMix64};

fn random_index(rng: &mut SplitMix64, batch: usize, pooling_max: usize, rows: u64) -> IndexArray {
    let samples: Vec<Vec<u32>> = (0..batch)
        .map(|_| {
            let pooling = 1 + rng.next_below(pooling_max as u64) as usize;
            (0..pooling).map(|_| rng.next_below(rows) as u32).collect()
        })
        .collect();
    IndexArray::from_samples(&samples).unwrap()
}

#[test]
fn pipeline_sustains_many_out_of_order_iterations() {
    let mut rng = SplitMix64::new(1);
    let mut pipeline = CastingPipeline::new();
    // Submit 20 jobs up front, collect in a scrambled order.
    let jobs: Vec<(IndexArray, _)> = (0..20)
        .map(|_| {
            let idx = random_index(&mut rng, 32, 6, 500);
            let ticket = pipeline.submit(vec![idx.clone()]);
            (idx, ticket)
        })
        .collect();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Deterministic scramble.
    for i in 0..order.len() {
        let j = rng.next_below(order.len() as u64) as usize;
        order.swap(i, j);
    }
    for &i in &order {
        let casted = pipeline.collect(jobs[i].1);
        assert_eq!(casted[0], tensor_casting(&jobs[i].0), "job {i}");
    }
    assert_eq!(pipeline.stats().jobs_completed, 20);
}

#[test]
fn all_kernel_variants_agree_under_randomized_load() {
    let mut rng = SplitMix64::new(2);
    for trial in 0..10 {
        let rows = 100 + rng.next_below(2000);
        let batch = 8 + rng.next_below(120) as usize;
        let dim = 1 + rng.next_below(48) as usize;
        let index = random_index(&mut rng, batch, 7, rows);
        let table = EmbeddingTable::seeded(rows as usize, dim, trial);
        let mut grads = Matrix::zeros(batch, dim);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }

        // Forward variants.
        let fwd = gather_reduce(&table, &index).unwrap();
        let fwd_par = gather_reduce_parallel(&table, &index, 4).unwrap();
        assert!(fwd.max_abs_diff(&fwd_par).unwrap() < 1e-5, "trial {trial}");

        // Backward variants: serial, parallel coalesce, casted (serial,
        // parallel kernel, parallel casting), sharded scatter, fused.
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        let expanded = gradient_expand(&grads, &index).unwrap();
        let par_coalesce = gradient_coalesce_parallel(&expanded, &index, 3).unwrap();
        assert_eq!(baseline.rows(), par_coalesce.rows());
        assert!(baseline.max_abs_diff(&par_coalesce).unwrap() < 1e-5);

        let casted = tensor_casting(&index);
        let casted_par = tensor_casting_parallel(&index, 4);
        assert_eq!(casted, casted_par, "trial {trial}");
        let c1 = casted_gather_reduce(&grads, &casted).unwrap();
        let c2 = casted_gather_reduce_parallel(&grads, &casted, 5).unwrap();
        assert_eq!(baseline.grads().as_slice(), c1.grads().as_slice());
        assert!(c1.max_abs_diff(&c2).unwrap() < 1e-5);

        // Full update: plain scatter vs sharded scatter vs fused backward.
        let mut t_plain = table.clone();
        scatter_apply(&mut t_plain, &baseline, &mut Sgd::new(0.1)).unwrap();

        let mut t_sharded = ShardedTable::from_table(&table, 3);
        t_sharded
            .scatter_apply(&baseline, &mut Sgd::new(0.1))
            .unwrap();
        assert!(t_sharded.to_table().max_abs_diff(&t_plain).unwrap() < 1e-6);

        let mut t_fused = table.clone();
        fused_casted_backward(&mut t_fused, &grads, &casted, &mut Sgd::new(0.1)).unwrap();
        assert_eq!(t_fused.max_abs_diff(&t_plain).unwrap(), 0.0);
    }
}

#[test]
fn parallel_matmul_stress() {
    let mut rng = SplitMix64::new(3);
    for _ in 0..6 {
        let m = 1 + rng.next_below(60) as usize;
        let k = 1 + rng.next_below(60) as usize;
        let n = 1 + rng.next_below(60) as usize;
        let mut a = Matrix::zeros(m, k);
        let mut b = Matrix::zeros(k, n);
        for v in a.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        for v in b.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        let serial = a.matmul(&b).unwrap();
        let par = matmul_parallel(&a, &b, 1 + rng.next_below(8) as usize).unwrap();
        assert!(serial.max_abs_diff(&par).unwrap() < 1e-4);
    }
}

fn stress_source(seed: u64, batch: usize) -> SyntheticSource {
    let cfg = DlrmConfig::tiny();
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed),
        batch,
    )
}

/// A wrapped source whose generation is artificially slow — the
/// producer is mid-`next_batch` for most of its life.
struct SlowSource {
    inner: SyntheticSource,
    delay: Duration,
}

impl BatchSource for SlowSource {
    fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
        std::thread::sleep(self.delay);
        self.inner.next_batch()
    }
    fn recycle(&mut self, batch: Arc<CtrBatch>) {
        self.inner.recycle(batch);
    }
}

#[test]
fn dropping_a_prefetch_source_with_a_slow_producer_joins_promptly() {
    // Drop while the producer is almost certainly inside its (slow)
    // generation: shutdown must let it finish that batch and exit —
    // no deadlock, no panic, and no unbounded wait.
    let mut source = PrefetchSource::new(
        SlowSource {
            inner: stress_source(5, 8),
            delay: Duration::from_millis(20),
        },
        2,
    );
    let first = source.next_batch().expect("endless");
    source.recycle(first);
    let t0 = Instant::now();
    drop(source); // producer is mid-generation for ~20ms
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drop took {:?} — producer failed to observe shutdown",
        t0.elapsed()
    );
}

#[test]
fn dropping_a_prefetch_source_with_a_slow_consumer_wakes_the_parked_producer() {
    // The opposite ordering: the consumer never drains, so the producer
    // fills the bounded queue and parks in its space wait. Drop must
    // wake it out of the condvar and join.
    let source = PrefetchSource::new(stress_source(7, 8), 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while source.ready_len() < 1 {
        assert!(Instant::now() < deadline, "producer never filled the queue");
        std::thread::yield_now();
    }
    let t0 = Instant::now();
    drop(source); // producer is parked on the full queue
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drop took {:?} — parked producer was never woken",
        t0.elapsed()
    );
}

#[test]
fn dropping_a_train_loop_with_steps_in_flight_joins_the_casting_worker() {
    // Begin several casting jobs and drop the driver without completing
    // them: the trainer's pipeline worker must be joined cleanly even
    // with uncollected results in its channel (slow-consumer shape —
    // the worker outruns the trainer).
    let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 3).unwrap();
    let mut driver = TrainLoop::new(trainer, 4);
    let mut source = stress_source(11, 64);
    for _ in 0..4 {
        let fired = driver.push(source.next_batch().unwrap()).unwrap();
        assert!(fired.is_none(), "depth 4 must defer the first completions");
    }
    assert_eq!(driver.in_flight(), 4);
    drop(driver); // 4 casting jobs submitted, none collected
}

#[test]
fn dropping_a_train_loop_over_a_prefetched_source_mid_stream_is_clean() {
    // Both shutdown orders compose: the TrainLoop (casting worker +
    // in-flight steps) and the PrefetchSource (producer thread) are
    // dropped mid-stream, in both drop orders, across several rounds.
    for round in 0..4u64 {
        let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, round).unwrap();
        let mut driver = TrainLoop::new(trainer, 3);
        let mut source = PrefetchSource::new(stress_source(round + 20, 16), 2);
        for _ in 0..3 {
            driver.push(source.next_batch().expect("endless")).unwrap();
        }
        if round % 2 == 0 {
            drop(driver); // steps in flight first, then the producer
            drop(source);
        } else {
            drop(source); // producer first, then the in-flight steps
            drop(driver);
        }
    }
}

/// Fault-armed shutdown stress: the producer dies at a *different*
/// generation each round, and whichever state the hand-off is in —
/// queue full, queue empty, consumer mid-wait — both drop orders of
/// (driver, dead source) join promptly. The occurrence sweep walks the
/// fault across the interesting interleavings deterministically
/// (`tests/fault_injection.rs` holds the single-shot containment
/// proofs; this is the sustained version).
#[test]
fn faulted_producer_shutdown_stress_across_occurrences() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use tensor_casting::core::FaultPlan;

    struct DyingSource {
        inner: SyntheticSource,
        plan: FaultPlan,
    }
    impl BatchSource for DyingSource {
        fn next_batch(&mut self) -> Option<Arc<CtrBatch>> {
            assert!(
                !self.plan.should_fail("prefetch.generate"),
                "injected producer fault"
            );
            self.inner.next_batch()
        }
        fn recycle(&mut self, batch: Arc<CtrBatch>) {
            self.inner.recycle(batch);
        }
    }

    for occurrence in 0..4u64 {
        for driver_first in [false, true] {
            let plan = FaultPlan::new();
            plan.arm("prefetch.generate", occurrence);
            let mut source = PrefetchSource::new(
                DyingSource {
                    inner: stress_source(occurrence + 50, 16),
                    plan,
                },
                2,
            );
            let trainer =
                Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, occurrence).unwrap();
            let mut driver = TrainLoop::new(trainer, 2);
            // Consume until the dead producer surfaces (or the round's
            // budget runs out with the fault still queued — also fine:
            // the drop below must cope with either state).
            let _ = catch_unwind(AssertUnwindSafe(|| {
                for _ in 0..6 {
                    driver.push(source.next_batch().expect("endless")).unwrap();
                }
            }));
            let t0 = Instant::now();
            if driver_first {
                drop(driver);
                drop(source);
            } else {
                drop(source);
                drop(driver);
            }
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "occurrence {occurrence}, driver_first {driver_first}: \
                 shutdown took {:?}",
                t0.elapsed()
            );
        }
    }
}

#[test]
fn interleaved_pipelines_do_not_cross_talk() {
    // Two independent pipelines with interleaved submissions: results
    // must come from the right pipeline's jobs.
    let mut rng = SplitMix64::new(4);
    let mut p1 = CastingPipeline::new();
    let mut p2 = CastingPipeline::new();
    let idx1 = random_index(&mut rng, 16, 4, 100);
    let idx2 = random_index(&mut rng, 16, 4, 100);
    let t1 = p1.submit(vec![idx1.clone()]);
    let t2 = p2.submit(vec![idx2.clone()]);
    assert_eq!(p2.collect(t2)[0], tensor_casting(&idx2));
    assert_eq!(p1.collect(t1)[0], tensor_casting(&idx1));
}

//! Cross-crate functional-equivalence suite: the paper's central
//! correctness claim, checked across every layer of the stack — host
//! kernels, the casting pipeline, the NMP pool, and full DLRM training.

use proptest::prelude::*;
use tensor_casting::core::{
    casted_gather_reduce, tensor_casting, tensor_casting_counting, CastingPipeline,
};
use tensor_casting::datasets::{DatasetPreset, SyntheticCtr, TableWorkload};
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, Trainer};
use tensor_casting::embedding::{
    gradient_expand_coalesce,
    optim::{Adagrad, Momentum, RmsProp, Sgd, SparseOptimizer},
    scatter_apply, EmbeddingTable, IndexArray,
};
use tensor_casting::nmp::{NmpPool, PoolConfig};
use tensor_casting::tensor::{Matrix, SplitMix64};

fn random_workload(seed: u64, batch: usize, pooling: usize, rows: u32) -> (IndexArray, Matrix) {
    let mut rng = SplitMix64::new(seed);
    let samples: Vec<Vec<u32>> = (0..batch)
        .map(|_| {
            (0..pooling)
                .map(|_| rng.next_below(rows as u64) as u32)
                .collect()
        })
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    let mut grads = Matrix::zeros(batch, 16);
    for v in grads.as_mut_slice() {
        *v = rng.next_range(-2.0, 2.0);
    }
    (index, grads)
}

#[test]
fn host_paths_agree_on_dataset_driven_workloads() {
    for preset in DatasetPreset::ALL {
        let workload = preset.table_workload(8).with_rows(10_000);
        let index = workload.generator(3).next_batch(256);
        let mut grads = Matrix::zeros(256, 32);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 31) % 17) as f32 - 8.0;
        }
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        let casted = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
        assert_eq!(baseline.rows(), casted.rows(), "{preset}");
        assert_eq!(
            baseline.grads().as_slice(),
            casted.grads().as_slice(),
            "{preset}: gradients must be bit-identical"
        );
    }
}

#[test]
fn counting_sort_casting_is_equivalent_end_to_end() {
    let (index, grads) = random_workload(11, 128, 6, 500);
    let a = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
    let b = casted_gather_reduce(&grads, &tensor_casting_counting(&index)).unwrap();
    assert_eq!(a.grads().as_slice(), b.grads().as_slice());
}

#[test]
fn pipeline_results_match_synchronous_casting() {
    let mut pipeline = CastingPipeline::new();
    let indices: Vec<IndexArray> = (0..4)
        .map(|i| random_workload(20 + i, 64, 4, 300).0)
        .collect();
    let ticket = pipeline.submit(indices.clone());
    let from_pipeline = pipeline.collect(ticket);
    let synchronous: Vec<_> = indices.iter().map(tensor_casting).collect();
    assert_eq!(from_pipeline, synchronous);
}

#[test]
fn nmp_pool_matches_host_for_the_whole_training_step() {
    let (index, grads) = random_workload(31, 64, 5, 400);
    let table = EmbeddingTable::seeded(400, 24, 9);

    // Host reference: baseline backward + SGD scatter.
    let mut host_table = table.clone();
    let coalesced = gradient_expand_coalesce(&grads_widened(&grads, 24), &index).unwrap();
    scatter_apply(&mut host_table, &coalesced, &mut Sgd::new(0.2)).unwrap();

    // Pool: casted backward + scatter from pool-resident gradients.
    let mut pool = NmpPool::new(PoolConfig::small(4));
    let handle = pool.load_table(&table).unwrap();
    let casted = tensor_casting(&index);
    let (pool_coalesced, _) = pool
        .casted_gather_reduce(handle, &grads_widened(&grads, 24), &casted)
        .unwrap();
    pool.scatter_sgd(handle, &pool_coalesced, 0.2, true)
        .unwrap();

    let back = pool.read_table(handle).unwrap();
    assert!(back.max_abs_diff(&host_table).unwrap() < 1e-5);
}

fn grads_widened(grads: &Matrix, dim: usize) -> Matrix {
    let mut out = Matrix::zeros(grads.rows(), dim);
    for r in 0..grads.rows() {
        for c in 0..dim {
            out.row_mut(r)[c] = grads.row(r)[c % grads.cols()];
        }
    }
    out
}

#[test]
fn full_dlrm_training_trajectories_are_identical() {
    let config = DlrmConfig::tiny();
    let mut base = Trainer::new(config.clone(), BackwardMode::Baseline, 3).unwrap();
    let mut cast = Trainer::new(config.clone(), BackwardMode::Casted, 3).unwrap();
    let mut stream_a = SyntheticCtr::new(config.table_workloads(), config.dense_features, 8);
    let mut stream_b = SyntheticCtr::new(config.table_workloads(), config.dense_features, 8);
    for _ in 0..8 {
        let ra = base.step(&stream_a.next_batch(32)).unwrap();
        let rb = cast.step(&stream_b.next_batch(32)).unwrap();
        assert_eq!(ra.loss, rb.loss);
    }
    for i in 0..base.model().num_tables() {
        assert_eq!(
            base.model()
                .table(i)
                .max_abs_diff(cast.model().table(i))
                .unwrap(),
            0.0
        );
    }
}

#[test]
fn equivalence_holds_for_every_optimizer() {
    // Coalesced gradients are identical, so any optimizer sees identical
    // inputs — but verify the full scatter output for each anyway.
    let (index, _) = random_workload(77, 96, 4, 250);
    let grads = {
        let mut g = Matrix::zeros(96, 8);
        for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 13) as f32 - 6.0) * 0.1;
        }
        g
    };
    let opts: Vec<Box<dyn Fn() -> Box<dyn SparseOptimizer>>> = vec![
        Box::new(|| Box::new(Sgd::new(0.1))),
        Box::new(|| Box::new(Momentum::new(0.1, 0.9))),
        Box::new(|| Box::new(Adagrad::new(0.1, 1e-8))),
        Box::new(|| Box::new(RmsProp::new(0.1, 0.9, 1e-8))),
    ];
    for make_opt in &opts {
        let mut t1 = EmbeddingTable::seeded(250, 8, 1);
        let mut t2 = t1.clone();
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        let casted = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
        scatter_apply(&mut t1, &baseline, make_opt().as_mut()).unwrap();
        scatter_apply(&mut t2, &casted, make_opt().as_mut()).unwrap();
        assert_eq!(t1.max_abs_diff(&t2).unwrap(), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The paper's validation, as a workspace-level property: for any
    /// sample structure and gradient values, the casted backward equals
    /// the baseline backward exactly.
    #[test]
    fn casted_backward_is_always_equivalent(
        samples in proptest::collection::vec(
            proptest::collection::vec(0u32..128, 1..10),
            1..48,
        ),
        dim in 1usize..24,
    ) {
        let index = IndexArray::from_samples(&samples).unwrap();
        let mut grads = Matrix::zeros(samples.len(), dim);
        for (i, v) in grads.as_mut_slice().iter_mut().enumerate() {
            *v = (((i * 2654435761) % 2048) as f32 / 1024.0) - 1.0;
        }
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        let casted = casted_gather_reduce(&grads, &tensor_casting(&index)).unwrap();
        prop_assert_eq!(baseline.rows(), casted.rows());
        prop_assert_eq!(baseline.grads().as_slice(), casted.grads().as_slice());
    }

    /// Casting preserves the workload's aggregate structure: the casted
    /// array has one entry per lookup, gathers only valid gradient rows,
    /// and enumerates exactly the unique src ids.
    #[test]
    fn casting_structural_invariants(
        samples in proptest::collection::vec(
            proptest::collection::vec(0u32..64, 1..6),
            1..32,
        ),
    ) {
        let index = IndexArray::from_samples(&samples).unwrap();
        let casted = tensor_casting(&index);
        prop_assert_eq!(casted.len(), index.len());
        prop_assert_eq!(casted.num_gradient_rows(), index.num_outputs());
        prop_assert_eq!(casted.num_unique(), index.unique_src_count());
        prop_assert!(casted
            .gather_src()
            .iter()
            .all(|&s| (s as usize) < index.num_outputs()));
        // unique_rows is exactly the sorted distinct src set.
        let mut expect: Vec<u32> = index.src().to_vec();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(casted.unique_rows(), &expect[..]);
    }

    /// A TableWorkload generator never emits out-of-range lookups and
    /// always produces a full batch (datasets x embedding contract).
    #[test]
    fn workload_generator_contract(
        rows in 1usize..5000,
        pooling in 1usize..8,
        batch in 1usize..64,
        seed in 0u64..1000,
    ) {
        let w = TableWorkload::new(
            tensor_casting::datasets::Popularity::Zipf { rows, exponent: 1.0 },
            pooling,
        );
        let idx = w.generator(seed).next_batch(batch);
        prop_assert_eq!(idx.len(), batch * pooling);
        prop_assert_eq!(idx.num_outputs(), batch);
        prop_assert!(idx.validate_against_rows(rows).is_ok());
    }
}

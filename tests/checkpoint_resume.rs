//! The exact-resume invariant — the fault-tolerance subsystem's
//! headline property: a training run killed after **any** step and
//! resumed from its crash-safe checkpoint continues **bit-identically**
//! (per-step losses, final weights, and — under a fixed policy — depth
//! decisions) to the uninterrupted run.
//!
//! The matrix covers every embedding optimizer, both backward modes,
//! lookahead depths {0, 2, 4}, and both inline and prefetched batch
//! sources; a sampled property test fills in the gaps (random kill
//! points, seeds, and cadences). Checkpoints carry *full* training
//! state — model weights, optimizer slabs, step counter, batch-source
//! position, and depth-controller snapshot — so nothing is replayed
//! and nothing drifts.

use proptest::prelude::*;
use tensor_casting::datasets::{BatchSource, PrefetchSource, SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{
    checkpoint::{read_train_checkpoint, CheckpointStore},
    AdaptiveDepth, BackwardMode, DepthPolicy, DlrmConfig, EmbeddingOptimizer, Execution, ShardSpec,
    TrainLoop, Trainer,
};

const OPTIMIZERS: [EmbeddingOptimizer; 5] = [
    EmbeddingOptimizer::Sgd,
    EmbeddingOptimizer::Momentum { mu: 0.9 },
    EmbeddingOptimizer::Adagrad { eps: 1e-8 },
    EmbeddingOptimizer::RmsProp {
        gamma: 0.9,
        eps: 1e-8,
    },
    EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    },
];

fn source(data_seed: u64, batch: usize) -> SyntheticSource {
    let cfg = DlrmConfig::tiny();
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, data_seed),
        batch,
    )
}

fn trainer(mode: BackwardMode, opt: EmbeddingOptimizer, model_seed: u64) -> Trainer {
    Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap()
}

/// A per-test scratch directory, removed on drop even when the test
/// fails partway.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tckp-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn loss_bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|l| l.to_bits()).collect()
}

fn table_bits(t: &Trainer) -> Vec<Vec<u32>> {
    (0..t.model().num_tables())
        .map(|i| {
            t.model()
                .table(i)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

/// Runs the kill-at-`k` / resume / compare cycle for one cell of the
/// matrix and asserts bit-identity against the uninterrupted run.
#[allow(clippy::too_many_arguments)]
fn assert_exact_resume(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    depth: usize,
    steps: usize,
    kill_at: usize,
    data_seed: u64,
    model_seed: u64,
    prefetched: bool,
    dir: &TempDir,
) {
    let context = format!("{mode:?} {opt:?} depth {depth} kill {kill_at} prefetched {prefetched}");
    let batch = 16;

    // Uninterrupted reference trajectory.
    let mut reference = TrainLoop::new(trainer(mode, opt, model_seed), depth);
    let mut ref_src = source(data_seed, batch);
    let want = reference.run(&mut ref_src, steps).unwrap();

    // The killed run: checkpoint exactly at the kill point, stop there.
    let store = CheckpointStore::new(&dir.0, 2).unwrap();
    let mut first = TrainLoop::new(trainer(mode, opt, model_seed), depth)
        .checkpoint_every(kill_at as u64, store);
    let first_summary = if prefetched {
        let mut src = PrefetchSource::new(source(data_seed, batch), 2);
        first.run(&mut src, kill_at).unwrap()
    } else {
        let mut src = source(data_seed, batch);
        first.run(&mut src, kill_at).unwrap()
    };
    let ckpt = first
        .last_checkpoint()
        .unwrap_or_else(|| panic!("{context}: no checkpoint committed"))
        .to_path_buf();
    drop(first);

    // Resume into a freshly built trainer and finish the run.
    let (resumed_losses, resumed_trainer) = if prefetched {
        // A prefetched resume restores the *inner* source before the
        // producer thread takes ownership (see `BatchSource::restore`
        // on `PrefetchSource`), then rebuilds the loop by hand.
        let ckpt_data = read_train_checkpoint(&mut std::fs::File::open(&ckpt).unwrap()).unwrap();
        let mut inner = source(data_seed, batch);
        let state = ckpt_data.source_state().expect("source state saved");
        inner.restore(&state);
        let mut t = trainer(mode, opt, model_seed);
        ckpt_data.restore_into(&mut t).unwrap();
        let mut resumed = TrainLoop::new(t, depth);
        let mut src = PrefetchSource::new(inner, 2);
        let summary = resumed.run(&mut src, steps - kill_at).unwrap();
        (summary.losses, resumed.into_trainer())
    } else {
        let mut src = source(data_seed, batch);
        let mut resumed = TrainLoop::resume(
            &ckpt,
            trainer(mode, opt, model_seed),
            DepthPolicy::Fixed(depth),
            &mut src,
        )
        .unwrap();
        let summary = resumed.run(&mut src, steps - kill_at).unwrap();
        (summary.losses, resumed.into_trainer())
    };

    let mut joined = loss_bits(&first_summary.losses);
    joined.extend(loss_bits(&resumed_losses));
    assert_eq!(
        joined,
        loss_bits(&want.losses),
        "{context}: losses diverged after resume"
    );
    assert_eq!(
        table_bits(&resumed_trainer),
        table_bits(reference.trainer()),
        "{context}: weights diverged after resume"
    );
}

/// THE acceptance matrix: every optimizer x both backward modes x
/// depths {0, 2, 4}, inline sources, kill at the midpoint.
#[test]
fn resume_is_bit_identical_for_every_optimizer_mode_and_depth() {
    let dir = TempDir::new("matrix");
    for opt in OPTIMIZERS {
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            for depth in [0usize, 2, 4] {
                assert_exact_resume(mode, opt, depth, 6, 3, 42, 7, false, &dir);
            }
        }
    }
}

/// The prefetched half of the matrix: a producer-thread source on both
/// sides of the kill (save from a prefetched run, resume into a
/// prefetched run) changes nothing. Sampled over the optimizer axis;
/// the depth axis repeats the acceptance set.
#[test]
fn resume_is_bit_identical_with_prefetched_sources() {
    let dir = TempDir::new("prefetched");
    for opt in [
        EmbeddingOptimizer::Sgd,
        EmbeddingOptimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
    ] {
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            for depth in [0usize, 2, 4] {
                assert_exact_resume(mode, opt, depth, 6, 3, 23, 11, true, &dir);
            }
        }
    }
}

/// A prefetched *save* resumes through the plain [`TrainLoop::resume`]
/// path with an inline source: the checkpointed stream position is the
/// consumer-side position, independent of how far ahead the producer
/// ran.
#[test]
fn prefetched_save_resumes_through_an_inline_source() {
    let dir = TempDir::new("pf-to-inline");
    let (mode, opt) = (
        BackwardMode::Casted,
        EmbeddingOptimizer::Adagrad { eps: 1e-8 },
    );
    let (steps, kill_at, batch) = (6usize, 3usize, 16);

    let mut reference = TrainLoop::new(trainer(mode, opt, 5), 2);
    let want = reference.run(&mut source(9, batch), steps).unwrap();

    let store = CheckpointStore::new(&dir.0, 1).unwrap();
    let mut first =
        TrainLoop::new(trainer(mode, opt, 5), 2).checkpoint_every(kill_at as u64, store);
    let mut pf = PrefetchSource::new(source(9, batch), 3);
    let first_summary = first.run(&mut pf, kill_at).unwrap();
    let ckpt = first.last_checkpoint().expect("committed").to_path_buf();
    drop(first);
    drop(pf); // the producer may have generated far past the kill point

    let mut inline = source(9, batch);
    let mut resumed = TrainLoop::resume(
        &ckpt,
        trainer(mode, opt, 5),
        DepthPolicy::Fixed(2),
        &mut inline,
    )
    .unwrap();
    let summary = resumed.run(&mut inline, steps - kill_at).unwrap();

    let mut joined = loss_bits(&first_summary.losses);
    joined.extend(loss_bits(&summary.losses));
    assert_eq!(joined, loss_bits(&want.losses));
    assert_eq!(
        table_bits(resumed.trainer()),
        table_bits(reference.trainer())
    );
}

/// Kill after ANY step: cadence 1 commits a checkpoint at every step
/// boundary; resuming from each one reproduces the reference tail
/// exactly. This is the exhaustive form of the headline invariant.
#[test]
fn resume_from_every_checkpoint_boundary_reproduces_the_tail() {
    let dir = TempDir::new("every-step");
    let (mode, opt) = (
        BackwardMode::Casted,
        EmbeddingOptimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        },
    );
    let (steps, batch) = (6usize, 16);

    let mut reference = TrainLoop::new(trainer(mode, opt, 3), 2);
    let want = reference.run(&mut source(17, batch), steps).unwrap();
    let want_bits = loss_bits(&want.losses);
    let want_tables = table_bits(reference.trainer());

    // One full run, checkpointing after every completed step.
    let store = CheckpointStore::new(&dir.0, steps).unwrap();
    let mut checkpointed = TrainLoop::new(trainer(mode, opt, 3), 2).checkpoint_every(1, store);
    let ckpt_summary = checkpointed.run(&mut source(17, batch), steps).unwrap();
    assert_eq!(
        loss_bits(&ckpt_summary.losses),
        want_bits,
        "checkpointing itself perturbed the trajectory"
    );
    let store = CheckpointStore::new(&dir.0, steps).unwrap();
    let checkpoints = store.list().unwrap();
    assert_eq!(checkpoints.len(), steps, "one checkpoint per step");

    for (i, ckpt) in checkpoints.iter().enumerate() {
        let killed_at = i + 1;
        let mut src = source(17, batch);
        let mut resumed =
            TrainLoop::resume(ckpt, trainer(mode, opt, 3), DepthPolicy::Fixed(2), &mut src)
                .unwrap();
        assert_eq!(resumed.trainer().steps(), killed_at as u64);
        let summary = resumed.run(&mut src, steps - killed_at).unwrap();
        assert_eq!(
            loss_bits(&summary.losses),
            want_bits[killed_at..],
            "tail diverged resuming from step {killed_at}"
        );
        assert_eq!(
            table_bits(resumed.trainer()),
            want_tables,
            "weights diverged resuming from step {killed_at}"
        );
    }
}

/// Resuming under an adaptive policy restores the controller
/// mid-trajectory: the continued run stays within the policy bounds
/// and — the controller being observation-only — losses and weights
/// still match the uninterrupted run bit for bit.
#[test]
fn adaptive_policy_resume_restores_the_controller_mid_trajectory() {
    let dir = TempDir::new("adaptive");
    let policy = DepthPolicy::Adaptive(AdaptiveDepth {
        min: 0,
        max: 3,
        window: 2,
        target_exposed_ns: 1_000,
        decrease_after: 2,
        floor_decay_after: 4,
    });
    let (steps, kill_at, batch) = (8usize, 4usize, 16);
    let mk = || trainer(BackwardMode::Casted, EmbeddingOptimizer::Sgd, 13);

    let mut reference = TrainLoop::with_policy(mk(), policy);
    let want = reference.run(&mut source(29, batch), steps).unwrap();

    let store = CheckpointStore::new(&dir.0, 1).unwrap();
    let mut first = TrainLoop::with_policy(mk(), policy).checkpoint_every(kill_at as u64, store);
    let first_summary = first.run(&mut source(29, batch), kill_at).unwrap();
    let ckpt = first.last_checkpoint().expect("committed").to_path_buf();
    drop(first);

    let mut src = source(29, batch);
    let mut resumed = TrainLoop::resume(&ckpt, mk(), policy, &mut src).unwrap();
    let summary = resumed.run(&mut src, steps - kill_at).unwrap();
    assert!(
        summary.depths.iter().all(|&d| d <= 3),
        "resumed depth left [0, 3]: {:?}",
        summary.depths
    );

    let mut joined = loss_bits(&first_summary.losses);
    joined.extend(loss_bits(&summary.losses));
    assert_eq!(joined, loss_bits(&want.losses), "adaptive resume diverged");
    assert_eq!(
        table_bits(resumed.trainer()),
        table_bits(reference.trainer())
    );
}

/// Retention prunes old checkpoints but the newest survivors all
/// resume correctly.
#[test]
fn retention_keeps_the_newest_checkpoints_resumable() {
    let dir = TempDir::new("retention");
    let (steps, batch) = (8usize, 16);
    let mk = || trainer(BackwardMode::Casted, EmbeddingOptimizer::Sgd, 19);

    let mut reference = TrainLoop::new(mk(), 2);
    let want = reference.run(&mut source(31, batch), steps).unwrap();

    let store = CheckpointStore::new(&dir.0, 2).unwrap();
    let mut run = TrainLoop::new(mk(), 2).checkpoint_every(2, store);
    run.run(&mut source(31, batch), steps).unwrap();
    let store = CheckpointStore::new(&dir.0, 2).unwrap();
    let kept = store.list().unwrap();
    assert_eq!(kept.len(), 2, "retention bound violated: {kept:?}");
    assert_eq!(
        store.latest().unwrap().as_deref(),
        kept.last().map(|p| p.as_path())
    );

    for ckpt in &kept {
        let loaded = read_train_checkpoint(&mut std::fs::File::open(ckpt).unwrap()).unwrap();
        let killed_at = loaded.steps().expect("trainer section") as usize;
        assert!(killed_at == 6 || killed_at == 8, "kept {killed_at}");
        let mut src = source(31, batch);
        let mut resumed = TrainLoop::resume(ckpt, mk(), DepthPolicy::Fixed(2), &mut src).unwrap();
        let summary = resumed.run(&mut src, steps - killed_at).unwrap();
        assert_eq!(
            loss_bits(&summary.losses),
            loss_bits(&want.losses)[killed_at..],
            "tail diverged from retained checkpoint at step {killed_at}"
        );
        assert_eq!(
            table_bits(resumed.trainer()),
            table_bits(reference.trainer())
        );
    }
}

/// The shard axis of the resume invariant: a checkpoint written by an
/// N-shard trainer restores bit-identically into an M-shard trainer,
/// N != M. The `OPTM` section is global-row-keyed (per-shard slabs are
/// merged on save and re-split by the receiving trainer's shard maps),
/// so optimizer-state placement is free to change across a crash —
/// resharding a training run costs nothing but the restart.
#[test]
fn resume_is_bit_identical_across_shard_counts() {
    let dir = TempDir::new("shard-axis");
    let opt = EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    };
    let sharded = |mode, shards, seed| {
        Trainer::with_sharding(
            DlrmConfig::tiny(),
            mode,
            opt,
            Execution::Serial,
            ShardSpec::new(shards),
            seed,
        )
        .unwrap()
    };
    let (steps, kill_at, batch) = (6usize, 3usize, 16);
    for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
        for (n, m) in [(3usize, 2usize), (1, 7), (7, 1), (2, 3)] {
            let context = format!("{mode:?} {n} -> {m} shards");

            // Uninterrupted UNSHARDED reference: the resharded resume
            // must land on the same trajectory the plain layout trains.
            let mut reference = TrainLoop::new(trainer(mode, opt, 7), 2);
            let mut ref_src = source(42, batch);
            let want = reference.run(&mut ref_src, steps).unwrap();

            // Kill an N-shard run at the checkpoint.
            let store = CheckpointStore::new(&dir.0, 2).unwrap();
            let mut first =
                TrainLoop::new(sharded(mode, n, 7), 2).checkpoint_every(kill_at as u64, store);
            let mut src = source(42, batch);
            let first_summary = first.run(&mut src, kill_at).unwrap();
            let ckpt = first
                .last_checkpoint()
                .unwrap_or_else(|| panic!("{context}: no checkpoint committed"))
                .to_path_buf();
            drop(first);

            // Resume into an M-shard trainer and finish.
            let mut src = source(42, batch);
            let mut resumed =
                TrainLoop::resume(&ckpt, sharded(mode, m, 7), DepthPolicy::Fixed(2), &mut src)
                    .unwrap();
            assert_eq!(resumed.trainer().steps(), kill_at as u64);
            let summary = resumed.run(&mut src, steps - kill_at).unwrap();

            let mut joined = loss_bits(&first_summary.losses);
            joined.extend(loss_bits(&summary.losses));
            assert_eq!(
                joined,
                loss_bits(&want.losses),
                "{context}: losses diverged after resharded resume"
            );
            assert_eq!(
                table_bits(resumed.trainer()),
                table_bits(reference.trainer()),
                "{context}: weights diverged after resharded resume"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sampled closure of the matrix: random optimizer, mode, depth,
    /// kill point and seeds — kill/resume is always bit-identical.
    #[test]
    fn any_kill_point_resumes_bit_identically(
        opt_i in 0usize..OPTIMIZERS.len(),
        mode_i in 0usize..2,
        depth in 0usize..=4,
        kill_at in 1usize..6,
        prefetched in any::<bool>(),
        data_seed in any::<u64>(),
        model_seed in any::<u64>(),
    ) {
        let dir = TempDir::new("prop");
        assert_exact_resume(
            [BackwardMode::Baseline, BackwardMode::Casted][mode_i],
            OPTIMIZERS[opt_i],
            depth,
            6,
            kill_at,
            data_seed,
            model_seed,
            prefetched,
            &dir,
        );
    }
}

//! Integration tests asserting the *shapes* of the paper's evaluation
//! results (who wins, by roughly what factor, where the crossovers are) —
//! the reproduction contract of EXPERIMENTS.md.

use tensor_casting::datasets::{CoalesceStats, DatasetPreset};
use tensor_casting::embedding::traffic;
use tensor_casting::system::{energy_joules, Calibration, DesignPoint, RmModel, SystemWorkload};

fn cal() -> Calibration {
    Calibration::default()
}

fn grid() -> Vec<SystemWorkload> {
    let mut out = Vec::new();
    for model in RmModel::all() {
        for batch in [1024usize, 2048, 4096, 8192] {
            out.push(SystemWorkload::build(model.clone(), batch, 64, 42));
        }
    }
    out
}

#[test]
fn fig4_embedding_backward_dominates_cpu_centric_training() {
    // 62-92% of end-to-end time is embedding backprop for the
    // CPU-centric systems across embedding-intensive configs.
    for wl in grid() {
        if !wl.model.embedding_intensive {
            continue;
        }
        let e = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal());
        let frac = e.embedding_backward_fraction();
        assert!(
            (0.55..=0.97).contains(&frac),
            "{} b{}: {frac}",
            wl.model.name,
            wl.batch
        );
    }
}

#[test]
fn fig4_gpu_matters_most_for_mlp_intensive_models() {
    let speedup_from_gpu = |model: RmModel| {
        let wl = SystemWorkload::build(model, 2048, 64, 42);
        DesignPoint::CpuOnly.evaluate(&wl, &cal()).total_ns
            / DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()).total_ns
    };
    assert!(speedup_from_gpu(RmModel::rm4()) > speedup_from_gpu(RmModel::rm1()));
}

#[test]
fn fig5b_coalescing_orders_by_dataset_skew() {
    let coalesced = |p: DatasetPreset| {
        CoalesceStats::measure(&p.table_workload(10).with_rows(100_000), 2048, 9).coalesced
    };
    let random = coalesced(DatasetPreset::Random);
    let criteo = coalesced(DatasetPreset::CriteoKaggle);
    let movielens = coalesced(DatasetPreset::MovieLens20M);
    assert!(movielens < criteo);
    assert!(criteo < random);
}

#[test]
fn fig6_traffic_ratios() {
    let wl = SystemWorkload::build(RmModel::rm1(), 2048, 64, 42);
    let s = wl.table_shape();
    let ec = traffic::expand_coalesce_total(&s).total() as f64;
    let gr = traffic::gather_reduce(&s).total() as f64;
    assert!(
        (2.0..=3.6).contains(&(ec / gr)),
        "expand-coalesce should be ~3x gather-reduce traffic, got {}",
        ec / gr
    );
    let casted = traffic::casted_gather_reduce(&s).total() as f64;
    assert!(
        ec / casted >= 1.5,
        "casting should cut backward traffic by >=1.5x (paper: ~2x), got {}",
        ec / casted
    );
}

#[test]
fn fig13_speedup_bands() {
    let mut nmp_speedups = Vec::new();
    for wl in grid() {
        let base = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()).total_ns;
        let sw = base / DesignPoint::OursCpu.evaluate(&wl, &cal()).total_ns;
        let hw = base / DesignPoint::OursNmp.evaluate(&wl, &cal()).total_ns;
        assert!(
            sw > 1.0,
            "{} b{}: software speedup {sw}",
            wl.model.name,
            wl.batch
        );
        assert!(
            hw > sw,
            "{} b{}: NMP must beat software-only",
            wl.model.name,
            wl.batch
        );
        assert!(
            (1.8..=25.0).contains(&hw),
            "{} b{}: NMP speedup {hw}",
            wl.model.name,
            wl.batch
        );
        nmp_speedups.push(hw);
    }
    let avg = nmp_speedups.iter().sum::<f64>() / nmp_speedups.len() as f64;
    assert!(
        (4.0..=14.0).contains(&avg),
        "average Ours(NMP) speedup {avg} (paper: 6.9x)"
    );
}

#[test]
fn fig13_embedding_intensive_models_benefit_more() {
    let s = |model: RmModel| {
        let wl = SystemWorkload::build(model, 2048, 64, 42);
        DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()).total_ns
            / DesignPoint::OursNmp.evaluate(&wl, &cal()).total_ns
    };
    assert!(s(RmModel::rm1()) > s(RmModel::rm3()));
    assert!(s(RmModel::rm2()) > s(RmModel::rm4()));
}

#[test]
fn fig14_energy_follows_performance() {
    for wl in grid() {
        let base = energy_joules(&DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()), &cal());
        let ours = energy_joules(&DesignPoint::OursNmp.evaluate(&wl, &cal()), &cal());
        assert!(
            ours.total() < base.total(),
            "{} b{}",
            wl.model.name,
            wl.batch
        );
    }
}

#[test]
fn fig15_utilization_gap() {
    // T.Casting must raise NMP utilization by an order of magnitude over
    // TensorDIMM on embedding-intensive models.
    let wl = SystemWorkload::build(RmModel::rm2(), 2048, 64, 42);
    let td = DesignPoint::BaselineNmp
        .evaluate(&wl, &cal())
        .nmp_utilization();
    let tc = DesignPoint::OursNmp.evaluate(&wl, &cal()).nmp_utilization();
    assert!(tc > 8.0 * td, "utilization {td} -> {tc}");
}

#[test]
fn fig16_large_batches_reach_double_digit_speedups() {
    let wl = SystemWorkload::build(RmModel::rm2(), 32_768, 64, 42);
    let s = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()).total_ns
        / DesignPoint::OursNmp.evaluate(&wl, &cal()).total_ns;
    assert!(s > 8.0, "b32k speedup {s} (paper: up to 15x)");
}

#[test]
fn fig17_speedup_robust_across_dims() {
    for dim in [32usize, 64, 128, 256] {
        let wl = SystemWorkload::build(RmModel::rm1(), 2048, dim, 42);
        let s = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal()).total_ns
            / DesignPoint::OursNmp.evaluate(&wl, &cal()).total_ns;
        assert!(s > 2.0, "dim {dim}: speedup {s}");
    }
}

#[test]
fn link_bandwidth_insensitivity() {
    // Section VI-D: 25 GB/s achieves ~99% of the 150 GB/s configuration.
    let wl = SystemWorkload::build(RmModel::rm1(), 2048, 64, 42);
    let slow = DesignPoint::OursNmp
        .evaluate(&wl, &Calibration::default().with_pool_link_gbps(25.0))
        .total_ns;
    let fast = DesignPoint::OursNmp
        .evaluate(&wl, &Calibration::default().with_pool_link_gbps(150.0))
        .total_ns;
    assert!(
        fast / slow > 0.70,
        "performance should be link-insensitive: {:.2}",
        fast / slow
    );
}

#[test]
fn calibration_from_dram_sim_preserves_all_shapes() {
    // Re-deriving the pool efficiencies from the cycle-level simulator
    // must not break the headline result.
    let cal = Calibration::default().from_dram_sim(4096);
    let wl = SystemWorkload::build(RmModel::rm1(), 2048, 64, 42);
    let s = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal).total_ns
        / DesignPoint::OursNmp.evaluate(&wl, &cal).total_ns;
    assert!(s > 2.0, "measured-calibration speedup {s}");
}

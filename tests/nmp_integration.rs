//! Integration tests for the NMP substrate: the pool's functional results
//! against host kernels under many-table multi-batch training, and the
//! timing model's qualitative behaviour.

use tensor_casting::core::tensor_casting;
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::embedding::{
    gather_reduce, gradient_expand_coalesce, optim::Sgd, scatter_apply, EmbeddingTable,
};
use tensor_casting::nmp::{LinkModel, NmpPool, PoolConfig};
use tensor_casting::tensor::{Matrix, SplitMix64};

fn grads(batch: usize, dim: usize, seed: u64) -> Matrix {
    let mut g = Matrix::zeros(batch, dim);
    let mut rng = SplitMix64::new(seed);
    for v in g.as_mut_slice() {
        *v = rng.next_range(-1.0, 1.0);
    }
    g
}

#[test]
fn multi_table_multi_iteration_training_on_pool_matches_host() {
    let dim = 32;
    let mut pool = NmpPool::new(PoolConfig::small(8));
    let mut host_tables: Vec<EmbeddingTable> = (0..3)
        .map(|i| EmbeddingTable::seeded(1000, dim, i))
        .collect();
    let handles: Vec<_> = host_tables
        .iter()
        .map(|t| pool.load_table(t).unwrap())
        .collect();
    let workload = TableWorkload::new(DatasetPreset::CriteoKaggle.popularity().with_rows(1000), 6);

    for iter in 0..3u64 {
        for (t, (&handle, host)) in handles.iter().zip(host_tables.iter_mut()).enumerate() {
            let index = workload.generator(iter * 10 + t as u64).next_batch(64);
            let g = grads(64, dim, iter * 100 + t as u64);

            // Forward on both, verify.
            let (pool_out, _) = pool.gather_reduce(handle, &index).unwrap();
            let host_out = gather_reduce(host, &index).unwrap();
            assert!(pool_out.max_abs_diff(&host_out).unwrap() < 1e-5);

            // Backward on both, verify table state stays in lockstep.
            let casted = tensor_casting(&index);
            let (coalesced, _) = pool.casted_gather_reduce(handle, &g, &casted).unwrap();
            pool.scatter_sgd(handle, &coalesced, 0.05, true).unwrap();
            let host_coalesced = gradient_expand_coalesce(&g, &index).unwrap();
            scatter_apply(host, &host_coalesced, &mut Sgd::new(0.05)).unwrap();
            let back = pool.read_table(handle).unwrap();
            assert!(
                back.max_abs_diff(host).unwrap() < 1e-4,
                "iter {iter} table {t} diverged"
            );
        }
    }
}

#[test]
fn pool_gather_time_scales_with_lookup_count() {
    let mut pool = NmpPool::new(PoolConfig::small(4));
    let table = EmbeddingTable::seeded(5000, 16, 1);
    let h = pool.load_table(&table).unwrap();
    let w = TableWorkload::new(DatasetPreset::Random.popularity().with_rows(5000), 4);
    let small = w.generator(1).next_batch(64);
    let big = w.generator(2).next_batch(512);
    let (_, e_small) = pool.gather_reduce(h, &small).unwrap();
    let (_, e_big) = pool.gather_reduce(h, &big).unwrap();
    assert!(
        e_big.nanoseconds > 4.0 * e_small.nanoseconds,
        "8x the lookups should take >4x the time: {} vs {}",
        e_big.nanoseconds,
        e_small.nanoseconds
    );
}

#[test]
fn pool_effective_bandwidth_is_a_sane_fraction_of_peak() {
    let config = PoolConfig::small(4);
    let per_channel_peak = config.channel.peak_bandwidth_gbps();
    let mut pool = NmpPool::new(config);
    let table = EmbeddingTable::seeded(50_000, 64, 2);
    let h = pool.load_table(&table).unwrap();
    let w = TableWorkload::new(DatasetPreset::Random.popularity().with_rows(50_000), 10);
    let index = w.generator(3).next_batch(1024);
    let (_, exec) = pool.gather_reduce(h, &index).unwrap();
    // dim 64 table slices across 4 channels; effective bw is per-op
    // aggregate over the participating channels.
    let peak = per_channel_peak * exec.channels_used as f64;
    let frac = exec.effective_bandwidth_gbps() / peak;
    assert!(
        (0.4..=1.0).contains(&frac),
        "gather efficiency {frac} of {peak} GB/s peak"
    );
}

#[test]
fn scatter_and_gather_use_the_same_datapath_cost() {
    // The paper's architectural argument: scatter is gather in reverse.
    // Equal row counts should cost the same order of time.
    let mut pool = NmpPool::new(PoolConfig::small(4));
    let table = EmbeddingTable::seeded(10_000, 16, 3);
    let h = pool.load_table(&table).unwrap();
    let w = TableWorkload::new(DatasetPreset::Random.popularity().with_rows(10_000), 1);
    let index = w.generator(5).next_batch(512);
    let (_, gather_exec) = pool.gather_reduce(h, &index).unwrap();
    let coalesced = gradient_expand_coalesce(&grads(512, 16, 9), &index).unwrap();
    let scatter_exec = pool.scatter_sgd(h, &coalesced, 0.1, false).unwrap();
    let ratio = scatter_exec.nanoseconds / gather_exec.nanoseconds;
    assert!(
        (0.3..=4.0).contains(&ratio),
        "scatter/gather time ratio {ratio} should be same order"
    );
}

#[test]
fn link_model_orders_transfers_correctly() {
    let pcie = LinkModel::pcie_gen3();
    let pool = LinkModel::pool_default();
    let nvlink = LinkModel::nvlink();
    let bytes = 64 * 1024 * 1024;
    assert!(pcie.transfer_ns(bytes) > pool.transfer_ns(bytes));
    assert!(pool.transfer_ns(bytes) > nvlink.transfer_ns(bytes));
}

//! The cross-batch pipelining invariant: a [`TrainLoop`] at ANY lookahead
//! depth produces **bit-identical** weights and per-step losses to the
//! plain serial `Trainer::step` loop — for both backward modes and every
//! optimizer. Lookahead only moves *when* casting runs (a pure function
//! of the index arrays), never what the model computes.
//!
//! Also covers the pipeline's bounded in-flight cap: a lookahead deeper
//! than the cap back-pressures `begin_step` (blocks until the casting
//! worker drains) instead of growing the job queue.
//!
//! This file also carries the *prefetch* half of the invariant — a
//! `PrefetchSource`-wrapped stream (generation on a producer thread,
//! arbitrary producer/consumer interleaving, cross-thread buffer
//! recycling) trains bit-identically to the unwrapped source — and the
//! `DepthController` contract: trajectories are a deterministic pure
//! function of the observed waits, bounded by the configured min/max,
//! with the `Fixed` policy reproducing the pinned-depth driver exactly.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use tensor_casting::datasets::{
    BatchSource, PrefetchSource, SyntheticCtr, SyntheticSource, TraceReplaySource,
};
use tensor_casting::dlrm::{
    AdaptiveDepth, BackwardMode, DepthController, DepthPolicy, DlrmConfig, EmbeddingOptimizer,
    TrainLoop, Trainer,
};

const OPTIMIZERS: [EmbeddingOptimizer; 5] = [
    EmbeddingOptimizer::Sgd,
    EmbeddingOptimizer::Momentum { mu: 0.9 },
    EmbeddingOptimizer::Adagrad { eps: 1e-8 },
    EmbeddingOptimizer::RmsProp {
        gamma: 0.9,
        eps: 1e-8,
    },
    EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    },
];

fn stream(seed: u64) -> SyntheticCtr {
    let cfg = DlrmConfig::tiny();
    SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed)
}

/// Serial reference: the plain `step` loop over the same stream.
fn serial_losses(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    data_seed: u64,
    model_seed: u64,
    steps: usize,
    batch: usize,
) -> (Vec<f32>, Trainer) {
    let mut t = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap();
    let mut data = stream(data_seed);
    let losses = (0..steps)
        .map(|_| t.step(&data.next_batch(batch)).unwrap().loss)
        .collect();
    (losses, t)
}

/// Pipelined run at `depth` over an identical stream (with recycling).
fn pipelined_losses(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    data_seed: u64,
    model_seed: u64,
    steps: usize,
    batch: usize,
    depth: usize,
) -> (Vec<f32>, Trainer) {
    let trainer = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap();
    let mut driver = TrainLoop::new(trainer, depth);
    let mut source = SyntheticSource::new(stream(data_seed), batch);
    let summary = driver.run(&mut source, steps).unwrap();
    assert_eq!(summary.steps, steps);
    (summary.losses, driver.into_trainer())
}

fn assert_tables_identical(a: &Trainer, b: &Trainer, context: &str) {
    for i in 0..a.model().num_tables() {
        assert_eq!(
            a.model().table(i).max_abs_diff(b.model().table(i)).unwrap(),
            0.0,
            "{context}: table {i} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE driver property: depths 1-4 are bit-identical to the serial
    /// loop across random modes, optimizers, depths and data.
    #[test]
    fn any_depth_is_bit_identical_to_the_serial_loop(
        depth in 1usize..=4,
        mode_i in 0usize..2,
        opt_i in 0usize..OPTIMIZERS.len(),
        data_seed in any::<u64>(),
        model_seed in any::<u64>(),
    ) {
        let mode = [BackwardMode::Baseline, BackwardMode::Casted][mode_i];
        let opt = OPTIMIZERS[opt_i];
        let (steps, batch) = (6, 16);
        let (want, serial) = serial_losses(mode, opt, data_seed, model_seed, steps, batch);
        let (got, pipelined) =
            pipelined_losses(mode, opt, data_seed, model_seed, steps, batch, depth);
        prop_assert_eq!(
            &got, &want,
            "losses diverged: {:?} {:?} depth {}", mode, opt, depth
        );
        assert_tables_identical(
            &serial,
            &pipelined,
            &format!("{mode:?} {opt:?} depth {depth}"),
        );
    }
}

/// Exhaustive (non-sampled) sweep: every optimizer, both modes, depth 3.
#[test]
fn every_optimizer_and_mode_matches_at_depth_three() {
    for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
        for opt in OPTIMIZERS {
            let (want, serial) = serial_losses(mode, opt, 101, 55, 5, 24);
            let (got, pipelined) = pipelined_losses(mode, opt, 101, 55, 5, 24, 3);
            assert_eq!(got, want, "losses diverged: {mode:?} {opt:?}");
            assert_tables_identical(&serial, &pipelined, &format!("{mode:?} {opt:?}"));
        }
    }
}

/// Casted lookahead must never *decrease* the hiding opportunity the
/// serial loop gets credited with: the run completes with every casting
/// job accounted for (jobs == steps) and per-ticket exposed waits summed
/// into the summary.
#[test]
fn run_summary_accounts_for_every_casting_job() {
    let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 9).unwrap();
    let mut driver = TrainLoop::new(trainer, 2);
    let mut source = SyntheticSource::new(stream(77), 32);
    let summary = driver.run(&mut source, 8).unwrap();
    assert_eq!(summary.steps, 8);
    let stats = driver.trainer().pipeline_stats().unwrap();
    assert_eq!(stats.jobs_completed, 8);
    assert!(summary.exposed_cast_wait <= stats.exposed_wait);
    let hf = summary.hidden_fraction();
    assert!((0.0..=1.0).contains(&hf), "hidden fraction {hf}");
}

/// The backpressure half of the bounded queue contract: with the cap at
/// 1, `begin_step` for batch N+1 cannot return before batch N's casting
/// job has been *drained by the worker* — so a deep lookahead's queue
/// stays capped instead of growing, which the pipeline's high-water
/// gauge certifies deterministically.
#[test]
fn inflight_cap_blocks_begin_step_instead_of_growing_the_queue() {
    let mut trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 13).unwrap();
    trainer.set_casting_inflight_cap(1);
    let mut driver = TrainLoop::new(trainer, 6); // lookahead >> cap
    let mut source = SyntheticSource::new(stream(31), 16);
    for _ in 0..6 {
        // Every push begins a step; with cap 1 the previous casting job
        // must complete before this submit returns.
        driver.push(source.next_batch().unwrap()).unwrap();
    }
    let stats = driver.trainer().pipeline_stats().unwrap();
    assert!(
        stats.jobs_completed >= 5,
        "submits overtook the cap: only {} jobs done after 6 begins",
        stats.jobs_completed
    );
    assert_eq!(
        stats.max_in_flight, 1,
        "queue grew past the cap: high-water {}",
        stats.max_in_flight
    );
    for (report, _) in driver.finish().unwrap() {
        assert!(report.loss.is_finite());
    }
    // And the capped run still trains correctly: bit-identical to serial.
    let (want, serial) =
        serial_losses(BackwardMode::Casted, EmbeddingOptimizer::Sgd, 31, 13, 6, 16);
    let capped = driver.into_trainer();
    assert_eq!(capped.steps(), 6);
    let _ = want;
    assert_tables_identical(&serial, &capped, "capped lookahead");
}

/// A `TrainLoop` over a `PrefetchSource`-wrapped stream at `depth`,
/// same seeds as the unwrapped runs.
fn prefetched_losses(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    data_seed: u64,
    model_seed: u64,
    steps: usize,
    batch: usize,
    depth: usize,
) -> (Vec<f32>, Trainer) {
    let trainer = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap();
    let mut driver = TrainLoop::new(trainer, depth);
    let mut source = PrefetchSource::new(SyntheticSource::new(stream(data_seed), batch), 2);
    let summary = driver.run(&mut source, steps).unwrap();
    assert_eq!(summary.steps, steps);
    (summary.losses, driver.into_trainer())
}

fn trace_source(data_seed: u64, steps: usize, batch: usize) -> TraceReplaySource {
    let cfg = DlrmConfig::tiny();
    let per_table: Vec<Vec<tensor_casting::embedding::IndexArray>> = cfg
        .table_workloads()
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let mut g = w.generator(data_seed + i as u64);
            (0..steps).map(|_| g.next_batch(batch)).collect()
        })
        .collect();
    TraceReplaySource::new(per_table, cfg.dense_features, data_seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The prefetch half of the invariant, sampled: a background
    /// producer thread generating ahead (arbitrary interleaving,
    /// cross-thread recycling) changes nothing — bit-identical weights
    /// and losses to the unwrapped source at any depth, either mode,
    /// every optimizer.
    #[test]
    fn prefetched_synthetic_stream_trains_bit_identically(
        depth in 0usize..=4,
        mode_i in 0usize..2,
        opt_i in 0usize..OPTIMIZERS.len(),
        data_seed in any::<u64>(),
        model_seed in any::<u64>(),
    ) {
        let mode = [BackwardMode::Baseline, BackwardMode::Casted][mode_i];
        let opt = OPTIMIZERS[opt_i];
        let (steps, batch) = (6, 16);
        let (want, unwrapped) =
            pipelined_losses(mode, opt, data_seed, model_seed, steps, batch, depth);
        let (got, prefetched) =
            prefetched_losses(mode, opt, data_seed, model_seed, steps, batch, depth);
        prop_assert_eq!(
            &got, &want,
            "prefetched losses diverged: {:?} {:?} depth {}", mode, opt, depth
        );
        assert_tables_identical(
            &unwrapped,
            &prefetched,
            &format!("prefetched {mode:?} {opt:?} depth {depth}"),
        );
    }
}

/// Exhaustive sweep of the prefetch invariant over BOTH source kinds:
/// every optimizer, both modes, depths {0, 1, 2, 4} — synthetic and
/// trace-replay streams wrapped in a `PrefetchSource` match the
/// unwrapped source exactly.
#[test]
fn prefetched_sources_match_unwrapped_at_every_depth_mode_and_optimizer() {
    let (steps, batch) = (5, 16);
    for depth in [0usize, 1, 2, 4] {
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            for opt in OPTIMIZERS {
                let context = format!("{mode:?} {opt:?} depth {depth}");
                // Synthetic: prefetched vs unwrapped.
                let (want, unwrapped) = pipelined_losses(mode, opt, 71, 33, steps, batch, depth);
                let (got, prefetched) = prefetched_losses(mode, opt, 71, 33, steps, batch, depth);
                assert_eq!(got, want, "synthetic losses diverged: {context}");
                assert_tables_identical(&unwrapped, &prefetched, &context);

                // Trace replay: prefetched vs unwrapped over the same
                // recorded lookups.
                let mk = || Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, 33).unwrap();
                let mut plain_driver = TrainLoop::new(mk(), depth);
                let plain = plain_driver
                    .run(&mut trace_source(91, steps, batch), steps)
                    .unwrap();
                let mut pf_driver = TrainLoop::new(mk(), depth);
                let pf = pf_driver
                    .run(
                        &mut PrefetchSource::new(trace_source(91, steps, batch), 2),
                        steps,
                    )
                    .unwrap();
                assert_eq!(pf.steps, steps, "trace ended early: {context}");
                assert_eq!(pf.losses, plain.losses, "trace losses diverged: {context}");
                assert_tables_identical(
                    &plain_driver.into_trainer(),
                    &pf_driver.into_trainer(),
                    &format!("trace {context}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `DepthController` trajectory determinism: the depth sequence is
    /// a pure function of the policy and the observed waits — two
    /// controllers fed the same measurements agree step for step, and
    /// never leave [min, max].
    #[test]
    fn depth_controller_trajectories_are_deterministic_and_bounded(
        min in 0usize..3,
        span in 0usize..6,
        window in 1usize..5,
        target_us in 0u64..50,
        decrease_after in 1usize..4,
        floor_decay_after in 0usize..6,
        wait_seed in any::<u64>(),
    ) {
        let policy = DepthPolicy::Adaptive(AdaptiveDepth {
            min,
            max: min + span,
            window,
            target_exposed_ns: target_us * 1_000,
            decrease_after,
            floor_decay_after,
        });
        let mut a = DepthController::new(policy);
        let mut b = DepthController::new(policy);
        // A deterministic, bursty wait sequence (SplitMix-style hash of
        // the seed): stretches of exposure and stretches of silence.
        let mut s = wait_seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        for step in 0..200 {
            let wait = if next() % 4 == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(next() % 200_000)
            };
            let da = a.observe(wait);
            let db = b.observe(wait);
            prop_assert_eq!(da, db, "trajectories diverged at step {}", step);
            prop_assert!(
                (min..=min + span).contains(&da),
                "depth {} left [{}, {}] at step {}", da, min, min + span, step
            );
        }
    }
}

/// The `Fixed` policy is exactly the pinned-depth driver: same depth
/// every step, same losses, same weights, and `observe` never moves it.
#[test]
fn fixed_policy_reproduces_the_pinned_depth_driver() {
    for depth in [0usize, 2, 3] {
        let mk = || Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 19).unwrap();
        let mut pinned = TrainLoop::new(mk(), depth);
        let a = pinned
            .run(&mut SyntheticSource::new(stream(61), 16), 6)
            .unwrap();
        let mut policied = TrainLoop::with_policy(mk(), DepthPolicy::Fixed(depth));
        let b = policied
            .run(&mut SyntheticSource::new(stream(61), 16), 6)
            .unwrap();
        assert_eq!(a.losses, b.losses, "depth {depth}");
        assert_eq!(a.depths, vec![depth; 6], "depth {depth}");
        assert_eq!(b.depths, a.depths, "depth {depth}");
        assert_tables_identical(
            &pinned.into_trainer(),
            &policied.into_trainer(),
            &format!("fixed policy depth {depth}"),
        );
    }
    // And directly: a fixed controller ignores every observation.
    let mut c = DepthController::new(DepthPolicy::Fixed(3));
    for _ in 0..50 {
        assert_eq!(c.observe(Duration::from_millis(5)), 3);
    }
}

/// An adaptive `TrainLoop` run stays within its bounds, converges to a
/// depth, and — being observation-only — trains bit-identically to the
/// serial loop.
#[test]
fn adaptive_run_is_bounded_and_bit_identical_to_serial() {
    let policy = DepthPolicy::Adaptive(AdaptiveDepth {
        min: 1,
        max: 3,
        window: 2,
        target_exposed_ns: 1_000,
        decrease_after: 2,
        floor_decay_after: 4,
    });
    let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 23).unwrap();
    let mut adaptive = TrainLoop::with_policy(trainer, policy);
    let summary = adaptive
        .run(&mut SyntheticSource::new(stream(67), 16), 12)
        .unwrap();
    assert_eq!(summary.steps, 12);
    assert!(
        summary.depths.iter().all(|&d| (1..=3).contains(&d)),
        "depth left [1, 3]: {:?}",
        summary.depths
    );
    let (want, serial) = serial_losses(
        BackwardMode::Casted,
        EmbeddingOptimizer::Sgd,
        67,
        23,
        12,
        16,
    );
    assert_eq!(summary.losses, want);
    assert_tables_identical(&serial, &adaptive.into_trainer(), "adaptive vs serial");
}

/// The prefetch + adaptive invariants hold under pooled execution too:
/// a pooled trainer fed a prefetched stream through an adaptive driver
/// matches the serial inline fixed-depth run bit for bit.
#[test]
fn pooled_prefetched_adaptive_run_matches_serial_inline() {
    use tensor_casting::dlrm::Execution;
    let pool = Arc::new(tensor_casting::tensor::Pool::new(4));
    let mk = |execution: Execution| {
        Trainer::with_execution(
            DlrmConfig::tiny(),
            BackwardMode::Casted,
            EmbeddingOptimizer::Adagrad { eps: 1e-8 },
            execution,
            29,
        )
        .unwrap()
    };
    let mut serial = TrainLoop::new(mk(Execution::Serial), 0);
    let want = serial
        .run(&mut SyntheticSource::new(stream(83), 16), 8)
        .unwrap();
    let mut pooled = TrainLoop::with_policy(
        mk(Execution::Pooled(pool)),
        DepthPolicy::Adaptive(AdaptiveDepth::new(0, 4)),
    );
    let got = pooled
        .run(
            &mut PrefetchSource::new(SyntheticSource::new(stream(83), 16), 2),
            8,
        )
        .unwrap();
    assert_eq!(got.losses, want.losses);
    assert_tables_identical(
        &serial.into_trainer(),
        &pooled.into_trainer(),
        "pooled prefetched adaptive vs serial inline",
    );
}

/// Recycled-buffer prefetch must not perturb training: run the same
/// stream with a recycling source and with an allocate-every-batch
/// source, and require identical trajectories.
#[test]
fn buffer_recycling_does_not_change_the_trajectory() {
    struct NeverRecycle(SyntheticSource);
    impl BatchSource for NeverRecycle {
        fn next_batch(&mut self) -> Option<Arc<tensor_casting::datasets::CtrBatch>> {
            self.0.next_batch()
        }
        fn recycle(&mut self, _batch: Arc<tensor_casting::datasets::CtrBatch>) {}
    }

    let mk = || Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 5).unwrap();
    let mut recycling = TrainLoop::new(mk(), 2);
    let s1 = recycling
        .run(&mut SyntheticSource::new(stream(41), 16), 6)
        .unwrap();
    let mut hoarding = TrainLoop::new(mk(), 2);
    let s2 = hoarding
        .run(&mut NeverRecycle(SyntheticSource::new(stream(41), 16)), 6)
        .unwrap();
    assert_eq!(s1.losses, s2.losses);
    assert_tables_identical(
        &recycling.into_trainer(),
        &hoarding.into_trainer(),
        "recycling vs hoarding",
    );
}

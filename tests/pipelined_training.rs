//! The cross-batch pipelining invariant: a [`TrainLoop`] at ANY lookahead
//! depth produces **bit-identical** weights and per-step losses to the
//! plain serial `Trainer::step` loop — for both backward modes and every
//! optimizer. Lookahead only moves *when* casting runs (a pure function
//! of the index arrays), never what the model computes.
//!
//! Also covers the pipeline's bounded in-flight cap: a lookahead deeper
//! than the cap back-pressures `begin_step` (blocks until the casting
//! worker drains) instead of growing the job queue.

use proptest::prelude::*;
use std::sync::Arc;
use tensor_casting::datasets::{BatchSource, SyntheticCtr, SyntheticSource};
use tensor_casting::dlrm::{BackwardMode, DlrmConfig, EmbeddingOptimizer, TrainLoop, Trainer};

const OPTIMIZERS: [EmbeddingOptimizer; 5] = [
    EmbeddingOptimizer::Sgd,
    EmbeddingOptimizer::Momentum { mu: 0.9 },
    EmbeddingOptimizer::Adagrad { eps: 1e-8 },
    EmbeddingOptimizer::RmsProp {
        gamma: 0.9,
        eps: 1e-8,
    },
    EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    },
];

fn stream(seed: u64) -> SyntheticCtr {
    let cfg = DlrmConfig::tiny();
    SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed)
}

/// Serial reference: the plain `step` loop over the same stream.
fn serial_losses(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    data_seed: u64,
    model_seed: u64,
    steps: usize,
    batch: usize,
) -> (Vec<f32>, Trainer) {
    let mut t = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap();
    let mut data = stream(data_seed);
    let losses = (0..steps)
        .map(|_| t.step(&data.next_batch(batch)).unwrap().loss)
        .collect();
    (losses, t)
}

/// Pipelined run at `depth` over an identical stream (with recycling).
fn pipelined_losses(
    mode: BackwardMode,
    opt: EmbeddingOptimizer,
    data_seed: u64,
    model_seed: u64,
    steps: usize,
    batch: usize,
    depth: usize,
) -> (Vec<f32>, Trainer) {
    let trainer = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, model_seed).unwrap();
    let mut driver = TrainLoop::new(trainer, depth);
    let mut source = SyntheticSource::new(stream(data_seed), batch);
    let summary = driver.run(&mut source, steps).unwrap();
    assert_eq!(summary.steps, steps);
    (summary.losses, driver.into_trainer())
}

fn assert_tables_identical(a: &Trainer, b: &Trainer, context: &str) {
    for i in 0..a.model().num_tables() {
        assert_eq!(
            a.model().table(i).max_abs_diff(b.model().table(i)).unwrap(),
            0.0,
            "{context}: table {i} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE driver property: depths 1-4 are bit-identical to the serial
    /// loop across random modes, optimizers, depths and data.
    #[test]
    fn any_depth_is_bit_identical_to_the_serial_loop(
        depth in 1usize..=4,
        mode_i in 0usize..2,
        opt_i in 0usize..OPTIMIZERS.len(),
        data_seed in any::<u64>(),
        model_seed in any::<u64>(),
    ) {
        let mode = [BackwardMode::Baseline, BackwardMode::Casted][mode_i];
        let opt = OPTIMIZERS[opt_i];
        let (steps, batch) = (6, 16);
        let (want, serial) = serial_losses(mode, opt, data_seed, model_seed, steps, batch);
        let (got, pipelined) =
            pipelined_losses(mode, opt, data_seed, model_seed, steps, batch, depth);
        prop_assert_eq!(
            &got, &want,
            "losses diverged: {:?} {:?} depth {}", mode, opt, depth
        );
        assert_tables_identical(
            &serial,
            &pipelined,
            &format!("{mode:?} {opt:?} depth {depth}"),
        );
    }
}

/// Exhaustive (non-sampled) sweep: every optimizer, both modes, depth 3.
#[test]
fn every_optimizer_and_mode_matches_at_depth_three() {
    for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
        for opt in OPTIMIZERS {
            let (want, serial) = serial_losses(mode, opt, 101, 55, 5, 24);
            let (got, pipelined) = pipelined_losses(mode, opt, 101, 55, 5, 24, 3);
            assert_eq!(got, want, "losses diverged: {mode:?} {opt:?}");
            assert_tables_identical(&serial, &pipelined, &format!("{mode:?} {opt:?}"));
        }
    }
}

/// Casted lookahead must never *decrease* the hiding opportunity the
/// serial loop gets credited with: the run completes with every casting
/// job accounted for (jobs == steps) and per-ticket exposed waits summed
/// into the summary.
#[test]
fn run_summary_accounts_for_every_casting_job() {
    let trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 9).unwrap();
    let mut driver = TrainLoop::new(trainer, 2);
    let mut source = SyntheticSource::new(stream(77), 32);
    let summary = driver.run(&mut source, 8).unwrap();
    assert_eq!(summary.steps, 8);
    let stats = driver.trainer().pipeline_stats().unwrap();
    assert_eq!(stats.jobs_completed, 8);
    assert!(summary.exposed_cast_wait <= stats.exposed_wait);
    let hf = summary.hidden_fraction();
    assert!((0.0..=1.0).contains(&hf), "hidden fraction {hf}");
}

/// The backpressure half of the bounded queue contract: with the cap at
/// 1, `begin_step` for batch N+1 cannot return before batch N's casting
/// job has been *drained by the worker* — so a deep lookahead's queue
/// stays capped instead of growing, which the pipeline's high-water
/// gauge certifies deterministically.
#[test]
fn inflight_cap_blocks_begin_step_instead_of_growing_the_queue() {
    let mut trainer = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 13).unwrap();
    trainer.set_casting_inflight_cap(1);
    let mut driver = TrainLoop::new(trainer, 6); // lookahead >> cap
    let mut source = SyntheticSource::new(stream(31), 16);
    for _ in 0..6 {
        // Every push begins a step; with cap 1 the previous casting job
        // must complete before this submit returns.
        driver.push(source.next_batch().unwrap()).unwrap();
    }
    let stats = driver.trainer().pipeline_stats().unwrap();
    assert!(
        stats.jobs_completed >= 5,
        "submits overtook the cap: only {} jobs done after 6 begins",
        stats.jobs_completed
    );
    assert_eq!(
        stats.max_in_flight, 1,
        "queue grew past the cap: high-water {}",
        stats.max_in_flight
    );
    for (report, _) in driver.finish().unwrap() {
        assert!(report.loss.is_finite());
    }
    // And the capped run still trains correctly: bit-identical to serial.
    let (want, serial) =
        serial_losses(BackwardMode::Casted, EmbeddingOptimizer::Sgd, 31, 13, 6, 16);
    let capped = driver.into_trainer();
    assert_eq!(capped.steps(), 6);
    let _ = want;
    assert_tables_identical(&serial, &capped, "capped lookahead");
}

/// Recycled-buffer prefetch must not perturb training: run the same
/// stream with a recycling source and with an allocate-every-batch
/// source, and require identical trajectories.
#[test]
fn buffer_recycling_does_not_change_the_trajectory() {
    struct NeverRecycle(SyntheticSource);
    impl BatchSource for NeverRecycle {
        fn next_batch(&mut self) -> Option<Arc<tensor_casting::datasets::CtrBatch>> {
            self.0.next_batch()
        }
        fn recycle(&mut self, _batch: Arc<tensor_casting::datasets::CtrBatch>) {}
    }

    let mk = || Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 5).unwrap();
    let mut recycling = TrainLoop::new(mk(), 2);
    let s1 = recycling
        .run(&mut SyntheticSource::new(stream(41), 16), 6)
        .unwrap();
    let mut hoarding = TrainLoop::new(mk(), 2);
    let s2 = hoarding
        .run(&mut NeverRecycle(SyntheticSource::new(stream(41), 16)), 6)
        .unwrap();
    assert_eq!(s1.losses, s2.losses);
    assert_tables_identical(
        &recycling.into_trainer(),
        &hoarding.into_trainer(),
        "recycling vs hoarding",
    );
}

//! Property tests on the analytic traffic model: the algebraic
//! relationships Section III-C's formulas must satisfy for *every*
//! workload shape, not just the measured configurations.

use proptest::prelude::*;
use tensor_casting::embedding::traffic::{self, WorkloadShape};

fn shapes() -> impl Strategy<Value = WorkloadShape> {
    // outputs >= 1, lookups >= outputs (every sample gathers >= 1),
    // 1 <= unique <= lookups, dim in a realistic range.
    (1u64..4096, 1u64..64, 1u64..512)
        .prop_flat_map(|(outputs, pooling, dim)| {
            let lookups = outputs * pooling;
            (Just(outputs), Just(lookups), 1u64..=lookups, Just(dim))
        })
        .prop_map(|(outputs, lookups, unique, dim)| WorkloadShape {
            lookups,
            outputs,
            unique,
            dim,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline inequality: the casted backward never moves more
    /// bytes than expand + coalesce, for any shape.
    #[test]
    fn casted_backward_never_exceeds_baseline(s in shapes()) {
        let baseline = traffic::expand_coalesce_total(&s).total();
        let casted = traffic::casted_gather_reduce(&s).total();
        prop_assert!(casted <= baseline);
    }

    /// The reduction is bounded by 2x plus the index-array overhead
    /// (Section IV-A's "memory intensity reduced by 2x" is asymptotic in
    /// row bytes; at small dims index bytes temper it).
    #[test]
    fn casted_reduction_is_at_most_2x_in_row_bytes(s in shapes()) {
        let baseline_rows = (s.outputs + 2 * s.lookups + s.unique) * s.row_bytes();
        let casted_rows = (s.lookups + s.unique) * s.row_bytes();
        // Row-byte ratio in (1, 2]: strictly > 1 (expand intermediate
        // gone), <= 2 + epsilon-from-outputs.
        let ratio = baseline_rows as f64 / casted_rows as f64;
        prop_assert!(ratio > 1.0);
        prop_assert!(ratio <= 2.0 + s.outputs as f64 / s.lookups as f64);
    }

    /// Fusion is always worth exactly the intermediate tensor (one write
    /// + one read of n rows).
    #[test]
    fn fusion_saving_is_exactly_the_intermediate(s in shapes()) {
        let unfused = (traffic::gather_unfused(&s) + traffic::reduce_unfused(&s)).total();
        let fused = traffic::gather_reduce(&s).total();
        prop_assert_eq!(unfused - fused, 2 * s.lookups * s.row_bytes());
    }

    /// Every primitive's traffic is monotone in the embedding dimension.
    #[test]
    fn traffic_is_monotone_in_dim(s in shapes()) {
        let mut wider = s;
        wider.dim += 16;
        prop_assert!(traffic::gather_reduce(&wider).total() >= traffic::gather_reduce(&s).total());
        prop_assert!(traffic::gradient_expand(&wider).total() >= traffic::gradient_expand(&s).total());
        prop_assert!(traffic::coalesce_accumulate(&wider).total() >= traffic::coalesce_accumulate(&s).total());
        prop_assert!(traffic::scatter(&wider, 0).total() >= traffic::scatter(&s, 0).total());
        prop_assert!(traffic::casted_gather_reduce(&wider).total() >= traffic::casted_gather_reduce(&s).total());
    }

    /// More coalescing (smaller unique) strictly reduces coalesce-write,
    /// scatter, and casted traffic, and leaves gather/expand untouched.
    #[test]
    fn locality_only_affects_the_backward_tail(s in shapes()) {
        prop_assume!(s.unique > 1);
        let mut hotter = s;
        hotter.unique = s.unique / 2;
        prop_assert!(traffic::coalesce_accumulate(&hotter).total() < traffic::coalesce_accumulate(&s).total());
        prop_assert!(traffic::scatter(&hotter, 0).total() < traffic::scatter(&s, 0).total());
        prop_assert!(traffic::casted_gather_reduce(&hotter).total() < traffic::casted_gather_reduce(&s).total());
        prop_assert_eq!(traffic::gather_reduce(&hotter).total(), traffic::gather_reduce(&s).total());
        prop_assert_eq!(traffic::gradient_expand(&hotter).total(), traffic::gradient_expand(&s).total());
    }

    /// Casting-stage traffic is independent of dim and linear in lookups.
    #[test]
    fn casting_traffic_scaling(s in shapes()) {
        let mut wider = s;
        wider.dim *= 2;
        prop_assert_eq!(traffic::casting(&s, 4), traffic::casting(&wider, 4));
        let mut doubled = s;
        doubled.lookups *= 2;
        prop_assert_eq!(
            traffic::casting(&doubled, 4).total(),
            2 * traffic::casting(&s, 4).total()
        );
    }

    /// Optimizer state bytes split evenly between read and write halves.
    #[test]
    fn optimizer_state_split(s in shapes()) {
        let sgd = traffic::scatter(&s, 0);
        let stateful = traffic::scatter(&s, 8);
        let extra_read = stateful.read_bytes - sgd.read_bytes;
        let extra_write = stateful.write_bytes - sgd.write_bytes;
        prop_assert_eq!(extra_read, extra_write);
        prop_assert_eq!(extra_read + extra_write, s.unique * s.dim * 8);
    }
}

//! Validates the analytic traffic model (Fig. 6's formulas) against
//! *counted* behaviour: the DRAM request streams the NMP cores actually
//! generate, and the row counts the functional kernels actually touch.

use tensor_casting::core::tensor_casting;
use tensor_casting::datasets::{DatasetPreset, TableWorkload};
use tensor_casting::dram::streams;
use tensor_casting::embedding::{
    gradient_expand, gradient_expand_coalesce, traffic, EmbeddingTable, IndexArray,
};
use tensor_casting::nmp::{NmpPool, PoolConfig};
use tensor_casting::tensor::{Matrix, SplitMix64};

fn workload(batch: usize, pooling: usize, rows: usize) -> IndexArray {
    TableWorkload::new(
        DatasetPreset::CriteoKaggle.popularity().with_rows(rows),
        pooling,
    )
    .generator(3)
    .next_batch(batch)
}

#[test]
fn gather_stream_length_matches_analytic_reads() {
    // dim 64 = 256 B rows = 4 blocks each: the generated request stream
    // must carry exactly the analytic read bytes (excluding index bytes,
    // which stay in the core's instruction payload).
    let index = workload(128, 10, 10_000);
    let s = traffic::WorkloadShape::of(&index, 64);
    let reads = streams::gather_reads(index.src(), 256, 0);
    let stream_bytes = reads.len() as u64 * 64;
    let analytic = traffic::gather_reduce(&s).read_bytes - s.lookups * traffic::PAIR_BYTES;
    assert_eq!(stream_bytes, analytic);
}

#[test]
fn coalesce_output_rows_match_analytic_unique() {
    let index = workload(256, 10, 5_000);
    let grads = Matrix::filled(256, 16, 1.0);
    let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();
    let s = traffic::WorkloadShape::of(&index, 16);
    assert_eq!(coalesced.len() as u64, s.unique);
    // Analytic coalesce write bytes = U rows.
    assert_eq!(
        traffic::coalesce_accumulate(&s).write_bytes,
        s.unique * 16 * 4
    );
}

#[test]
fn expand_materializes_exactly_n_rows() {
    let index = workload(64, 7, 2_000);
    let grads = Matrix::filled(64, 8, 0.5);
    let expanded = gradient_expand(&grads, &index).unwrap();
    let s = traffic::WorkloadShape::of(&index, 8);
    assert_eq!(expanded.rows() as u64, s.lookups);
    assert_eq!(traffic::gradient_expand(&s).write_bytes, s.lookups * 8 * 4);
}

#[test]
fn casted_index_sizes_match_analytic_model() {
    let index = workload(128, 6, 3_000);
    let casted = tensor_casting(&index);
    let s = traffic::WorkloadShape::of(&index, 32);
    // One (casted_src, casted_dst) pair per lookup:
    assert_eq!(casted.len() as u64, s.lookups);
    // U coalesced outputs:
    assert_eq!(casted.num_unique() as u64, s.unique);
    // Casted gather-reduce writes exactly U rows:
    assert_eq!(
        traffic::casted_gather_reduce(&s).write_bytes,
        s.unique * 32 * 4
    );
}

#[test]
fn nmp_pool_bytes_match_analytic_gather_traffic() {
    // The pool's measured DRAM bytes for a gather-reduce equal the
    // analytic model's row traffic (pool slices are padded to 64 B, so
    // compare at dim = multiple of 16 where padding is zero).
    let dim = 32;
    let mut pool = NmpPool::new(PoolConfig::small(4));
    let table = EmbeddingTable::seeded(2_000, dim, 1);
    let handle = pool.load_table(&table).unwrap();
    let mut rng = SplitMix64::new(5);
    let samples: Vec<Vec<u32>> = (0..64)
        .map(|_| (0..4).map(|_| rng.next_below(2_000) as u32).collect())
        .collect();
    let index = IndexArray::from_samples(&samples).unwrap();
    let (_, exec) = pool.gather_reduce(handle, &index).unwrap();
    let s = traffic::WorkloadShape::of(&index, dim);
    // Pool traffic: n row reads + B output-drain writes (no index bytes
    // in DRAM: they arrive through the instruction queue).
    let expected = s.lookups * s.row_bytes() + s.outputs * s.row_bytes();
    assert_eq!(exec.dram_bytes, expected);
}

#[test]
fn nmp_scatter_bytes_match_rmw_model() {
    let dim = 16;
    let mut pool = NmpPool::new(PoolConfig::small(2));
    let table = EmbeddingTable::seeded(1_000, dim, 2);
    let handle = pool.load_table(&table).unwrap();
    let index = workload(64, 4, 1_000);
    let grads = Matrix::filled(64, dim, 0.1);
    let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();
    let exec = pool.scatter_sgd(handle, &coalesced, 0.1, false).unwrap();
    let s = traffic::WorkloadShape::of(&index, dim);
    // Queue-fed scatter: read U rows + write U rows.
    assert_eq!(exec.dram_bytes, 2 * s.unique * s.row_bytes());
}

#[test]
fn backward_traffic_reduction_holds_on_real_workloads() {
    // The ~2x memory-intensity claim, evaluated with *measured* unique
    // counts across dataset skews and batch sizes.
    for preset in [
        DatasetPreset::Random,
        DatasetPreset::CriteoKaggle,
        DatasetPreset::MovieLens20M,
    ] {
        for batch in [512usize, 4096] {
            let index = TableWorkload::new(preset.popularity().with_rows(50_000), 10)
                .generator(7)
                .next_batch(batch);
            let s = traffic::WorkloadShape::of(&index, 64);
            let baseline = traffic::expand_coalesce_total(&s).total() as f64;
            let casted = traffic::casted_gather_reduce(&s).total() as f64;
            let ratio = baseline / casted;
            assert!(
                (1.4..=2.3).contains(&ratio),
                "{preset} b{batch}: traffic reduction {ratio}"
            );
        }
    }
}

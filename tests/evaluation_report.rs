//! The capstone integration test: build the programmatic evaluation
//! report over the full grid and require every headline of the paper's
//! evaluation to land in its reproduction band — the executable form of
//! EXPERIMENTS.md.

use tensor_casting::system::report::EvaluationReport;
use tensor_casting::system::Calibration;

#[test]
fn all_headlines_reproduce_with_default_calibration() {
    let report = EvaluationReport::build(&Calibration::default());
    assert!(
        report.all_in_band(),
        "headline(s) out of band:\n{}",
        report.to_markdown()
    );
    // Print the summary into the test log for the record.
    println!("{}", report.to_markdown());
}

#[test]
fn headlines_survive_dram_simulator_recalibration() {
    // Swapping the documented pool efficiencies for freshly measured ones
    // must not push any headline out of band — i.e. the reproduction does
    // not hinge on hand-picked constants.
    let cal = Calibration::default().from_dram_sim(4096);
    let report = EvaluationReport::build(&cal);
    assert!(
        report.all_in_band(),
        "recalibrated headline(s) out of band:\n{}",
        report.to_markdown()
    );
}

#[test]
fn headlines_are_robust_to_moderate_calibration_error() {
    // +/-20% on the most influential knobs: the qualitative story must
    // not depend on any single constant being exactly right.
    for (cpu_gather, pool_gather) in [(0.45, 0.75), (0.65, 0.95)] {
        let cal = Calibration {
            cpu_gather_eff: cpu_gather,
            pool_gather_eff: pool_gather,
            ..Calibration::default()
        };
        let report = EvaluationReport::build(&cal);
        assert!(
            report.all_in_band(),
            "cpu_gather_eff={cpu_gather}, pool_gather_eff={pool_gather}:\n{}",
            report.to_markdown()
        );
    }
}

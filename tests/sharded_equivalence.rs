//! The sharding invariant — the sharded data plane's headline property:
//! **sharded == unsharded**, bit for bit. Sharding a trainer's embedding
//! state (per-shard optimizer slabs, shard-routed casting jobs,
//! shard-concurrent scatter) and sharding its batch pipeline
//! (multi-producer prefetch with a deterministic merge) change placement
//! and concurrency, never the numbers.
//!
//! The matrix covers shard counts {1, 2, 3, 7} x every embedding
//! optimizer x both backward modes, comparing per-step losses and final
//! table weights against the unsharded serial reference; a pooled
//! spot-check shows shard-concurrent execution lands on the same bits.
//! `ShardedPrefetchSource` is held to the same standard against an
//! inline round-robin merge, for both synthetic and trace-replay shard
//! sources. Property tests close the routing layer underneath:
//! `ShardMap::locate`/`route` partition rows exactly and preserve
//! within-shard pair order on arbitrary inputs.

use proptest::prelude::*;
use std::sync::Arc;
use tensor_casting::datasets::{
    BatchSource, Popularity, PrefetchSource, ShardedPrefetchSource, SyntheticCtr, SyntheticSource,
    TableWorkload, TraceReplaySource,
};
use tensor_casting::dlrm::{
    BackwardMode, DlrmConfig, EmbeddingOptimizer, Execution, ShardSpec, Trainer,
};
use tensor_casting::embedding::{IndexArray, RouteScratch, ShardMap};
use tensor_casting::tensor::Pool;

const OPTIMIZERS: [EmbeddingOptimizer; 5] = [
    EmbeddingOptimizer::Sgd,
    EmbeddingOptimizer::Momentum { mu: 0.9 },
    EmbeddingOptimizer::Adagrad { eps: 1e-8 },
    EmbeddingOptimizer::RmsProp {
        gamma: 0.9,
        eps: 1e-8,
    },
    EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    },
];

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn data(seed: u64) -> SyntheticCtr {
    let cfg = DlrmConfig::tiny();
    SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed)
}

fn table_bits(t: &Trainer) -> Vec<Vec<u32>> {
    (0..t.model().num_tables())
        .map(|i| {
            t.model()
                .table(i)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect()
}

/// Trains `steps` and returns (per-step loss bits, final table bits).
fn trajectory(mut trainer: Trainer, data_seed: u64, steps: usize) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut stream = data(data_seed);
    let losses = (0..steps)
        .map(|_| trainer.step(&stream.next_batch(16)).unwrap().loss.to_bits())
        .collect();
    (losses, table_bits(&trainer))
}

/// THE acceptance matrix: every shard count x every optimizer x both
/// modes trains bit-identically to the unsharded serial reference.
#[test]
fn sharded_training_matches_unsharded_for_every_optimizer_and_mode() {
    for opt in OPTIMIZERS {
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            let reference = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, 7).unwrap();
            let want = trajectory(reference, 42, 4);
            for shards in SHARD_COUNTS {
                let sharded = Trainer::with_sharding(
                    DlrmConfig::tiny(),
                    mode,
                    opt,
                    Execution::Serial,
                    ShardSpec::new(shards),
                    7,
                )
                .unwrap();
                let got = trajectory(sharded, 42, 4);
                assert_eq!(
                    got.0, want.0,
                    "{mode:?} {opt:?} {shards} shards: losses diverged"
                );
                assert_eq!(
                    got.1, want.1,
                    "{mode:?} {opt:?} {shards} shards: weights diverged"
                );
            }
        }
    }
}

/// Shard-concurrent execution (one pool task per shard in scatter, one
/// routed cast per shard on the pipeline thread) still lands on the
/// reference bits.
#[test]
fn pooled_sharded_training_matches_the_serial_unsharded_reference() {
    let pool = Arc::new(Pool::new(4));
    let opt = EmbeddingOptimizer::Adam {
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    };
    for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
        let reference = Trainer::with_optimizer(DlrmConfig::tiny(), mode, opt, 13).unwrap();
        let want = trajectory(reference, 23, 5);
        for shards in [3usize, 7] {
            let sharded = Trainer::with_sharding(
                DlrmConfig::tiny(),
                mode,
                opt,
                Execution::Pooled(Arc::clone(&pool)),
                ShardSpec::new(shards),
                13,
            )
            .unwrap();
            let got = trajectory(sharded, 23, 5);
            assert_eq!(got.0, want.0, "{mode:?} {shards} shards pooled: losses");
            assert_eq!(got.1, want.1, "{mode:?} {shards} shards pooled: weights");
        }
    }
}

fn synthetic_shard(seed: u64) -> SyntheticSource {
    let cfg = DlrmConfig::tiny();
    SyntheticSource::new(
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed),
        16,
    )
}

fn trace_shard(seed: u64, batches: usize) -> TraceReplaySource {
    let w = TableWorkload::new(
        Popularity::Zipf {
            rows: 200,
            exponent: 1.0,
        },
        3,
    );
    let mut g = w.generator(seed);
    let t: Vec<_> = (0..batches).map(|_| g.next_batch(8)).collect();
    TraceReplaySource::new(vec![t], 4, seed).unwrap()
}

/// The multi-producer merge delivers exactly the inline round-robin
/// stream, for both source kinds and several shard counts — thread
/// scheduling never reaches the consumer.
#[test]
fn sharded_prefetch_stream_is_bit_identical_for_both_source_kinds() {
    for shards in [1usize, 2, 3] {
        // Synthetic (endless) shards.
        let mut inline: Vec<SyntheticSource> = (0..shards as u64).map(synthetic_shard).collect();
        let mut merged =
            ShardedPrefetchSource::new((0..shards as u64).map(synthetic_shard).collect(), 2);
        for step in 0..3 * shards + 1 {
            let want = inline[step % shards].next_batch().unwrap();
            let got = merged.next_batch().unwrap();
            assert_eq!(*got, *want, "synthetic {shards} shards, step {step}");
            inline[step % shards].recycle(want);
            merged.recycle(got);
        }

        // Trace-replay (finite) shards: full delivery, then sticky end.
        let mut inline: Vec<TraceReplaySource> =
            (0..shards as u64).map(|s| trace_shard(s, 3)).collect();
        let mut merged =
            ShardedPrefetchSource::new((0..shards as u64).map(|s| trace_shard(s, 3)).collect(), 2);
        for step in 0..3 * shards {
            let want = inline[step % shards].next_batch().unwrap();
            let got = merged.next_batch().unwrap();
            assert_eq!(*got, *want, "trace {shards} shards, step {step}");
            merged.recycle(got);
        }
        assert!(merged.next_batch().is_none(), "trace shards must end");
        assert!(merged.next_batch().is_none(), "None must be sticky");
    }
}

/// One shard is just a [`PrefetchSource`], delivering the wrapped
/// source's exact stream.
#[test]
fn one_shard_prefetch_matches_the_single_producer_source() {
    let mut plain = PrefetchSource::new(synthetic_shard(3), 2);
    let mut merged = ShardedPrefetchSource::new(vec![synthetic_shard(3)], 2);
    for step in 0..6 {
        let want = plain.next_batch().unwrap();
        let got = merged.next_batch().unwrap();
        assert_eq!(*got, *want, "step {step}");
        plain.recycle(want);
        merged.recycle(got);
    }
}

/// A pooling-factor-shaped random index array: up to 12 samples of 1-5
/// lookups each (samples must be non-empty), rows drawn from `0..rows`.
fn arb_index(rows: u32) -> impl Strategy<Value = IndexArray> {
    proptest::collection::vec(proptest::collection::vec(0..rows, 1..6), 1..12)
        .prop_map(|samples| IndexArray::from_samples(&samples).unwrap())
}

/// `locate` is an exact partition: every in-range row lands in exactly
/// the shard whose [base, end) covers it, with the right local offset;
/// out-of-range rows are typed errors.
fn check_locate_partitions_rows_exactly(rows: usize, shards: usize) {
    let map = ShardMap::new(rows, shards);
    assert_eq!(map.rows(), rows);
    for row in 0..rows as u32 {
        let (s, local) = map.locate(row).unwrap();
        assert!(s < map.num_shards());
        assert_eq!(map.shard_base(s) + local as usize, row as usize);
        assert!((local as usize) < map.shard_rows(s));
    }
    assert!(map.locate(rows as u32).is_err(), "first out-of-range row");
    assert!(map.locate(u32::MAX).is_err());
}

/// `route` rewrites each pair into its src's shard — local src, ORIGINAL
/// dst — preserving within-shard pair order and the original
/// `num_outputs`; nothing is lost, duplicated, or moved across shards.
/// `route_into` agrees with `route` exactly.
fn check_route_is_an_order_preserving_partition(rows: u32, index: &IndexArray, shards: usize) {
    let map = ShardMap::new(rows as usize, shards);
    let routed = map.route(index).unwrap();
    assert_eq!(routed.len(), map.num_shards());

    let mut scratch = RouteScratch::new();
    map.route_into(index, &mut scratch).unwrap();
    assert_eq!(scratch.routed(), routed.as_slice());

    let mut reassembled: Vec<Vec<(u32, u32)>> = (0..map.num_shards()).map(|_| Vec::new()).collect();
    let mut total = 0usize;
    for (s, shard) in routed.iter().enumerate() {
        assert_eq!(shard.num_outputs(), index.num_outputs());
        for (local, dst) in shard.iter() {
            assert!((local as usize) < map.shard_rows(s), "local src in range");
            reassembled[s].push((map.shard_base(s) as u32 + local, dst));
            total += 1;
        }
    }
    assert_eq!(total, index.len(), "no pair lost or duplicated");
    // Each pair sits in its src's shard, in original relative order.
    let mut expected: Vec<Vec<(u32, u32)>> = (0..map.num_shards()).map(|_| Vec::new()).collect();
    for (src, dst) in index.iter() {
        let (s, _) = map.locate(src).unwrap();
        expected[s].push((src, dst));
    }
    assert_eq!(reassembled, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locate_partitions_rows_exactly(rows in 1usize..200, shards in 1usize..9) {
        check_locate_partitions_rows_exactly(rows, shards);
    }

    #[test]
    fn route_is_an_order_preserving_partition(
        case in (1u32..150).prop_flat_map(|r| (Just(r), arb_index(r))),
        shards in 1usize..9,
    ) {
        let (rows, index) = case;
        check_route_is_an_order_preserving_partition(rows, &index, shards);
    }
}

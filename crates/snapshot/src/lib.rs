//! **tcast-snapshot** — epoch-versioned model snapshot publication, the
//! substrate for true concurrent train-and-serve.
//!
//! `serve_online` time-slices one thread between training and serving; a
//! production recommender does both *simultaneously*, which makes model
//! freshness a first-class serving SLA (the DeepRecSys regime: at-scale
//! inference under continuous update). The missing piece is a way for
//! serving engines to read a *consistent* model while the trainer
//! mutates its own — with zero stop-the-world and bounded staleness.
//!
//! [`SnapshotStore`] is that piece, an arc-swap-style publication point
//! built on std only:
//!
//! * the trainer **publishes** an immutable [`ModelSnapshot`] every K
//!   steps — a slab copy of every trainable weight
//!   ([`Dlrm::copy_weights_from`]) into a *recycled* buffer model, so the
//!   steady-state publish allocates nothing;
//! * engines **resolve** the latest snapshot per fused batch
//!   ([`SnapshotStore::latest`] — a mutex-guarded `Arc` clone, never a
//!   torn read: published snapshots are immutable behind `Arc`, and the
//!   writer only recycles buffers whose reference count proves no reader
//!   holds them);
//! * versions are **strictly monotonic** — every publication (including
//!   a rollback re-publication) gets a fresh version, so any served
//!   batch is explainable by exactly one published version;
//! * the last `retain` versions stay resident, so a **rollback**
//!   ([`SnapshotStore::rollback_to`]) re-publishes a prior version's
//!   exact bytes as a new version without pausing serving, and a **hot
//!   swap** is just publishing a checkpoint-restored model mid-traffic.
//!
//! The concurrency argument is structural, not probabilistic: a reader's
//! `Arc<ModelSnapshot>` pins its buffer (the writer's recycle check
//! `Arc::get_mut` fails while any reader share exists), and the version
//! counter only moves forward under the writer lock — which is what
//! makes the concurrent serving mode's scores *bit-identical* to a
//! stop-the-world oracle at the same version (property-tested in
//! `tests/concurrent_serving.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tcast_dlrm::Dlrm;

/// An immutable, epoch-versioned copy of a model's trainable weights.
///
/// Snapshots are handed out behind `Arc`: holding one pins the buffer
/// (the store will not recycle it), and the model inside never changes
/// after publication — scoring through [`ModelSnapshot::model`] is
/// always consistent, whatever the trainer is doing concurrently.
#[derive(Debug)]
pub struct ModelSnapshot {
    version: u64,
    steps: u64,
    published_at: Instant,
    model: Dlrm,
}

impl ModelSnapshot {
    /// The snapshot's version — strictly monotonic across all
    /// publications of one store, starting at 1.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Trainer steps taken when this snapshot was captured.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Wall-clock age of this snapshot in nanoseconds — the *model age*
    /// half of the freshness SLA.
    pub fn age_ns(&self) -> u64 {
        self.published_at.elapsed().as_nanos() as u64
    }

    /// The frozen model. Serving reads it through `&` only.
    pub fn model(&self) -> &Dlrm {
        &self.model
    }
}

/// What can go wrong at the snapshot store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The requested rollback target is not resident (never published,
    /// already evicted from the retained ring, or the current version).
    VersionNotRetained {
        /// The requested version.
        version: u64,
        /// Versions currently available to roll back to.
        retained: Vec<u64>,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionNotRetained { version, retained } => write!(
                f,
                "version {version} is not retained (available: {retained:?})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Writer-side state, all under one mutex: the published head, the
/// rollback ring, and the recycle pool.
#[derive(Debug)]
struct StoreInner {
    current: Arc<ModelSnapshot>,
    /// Prior versions, oldest first, still resident for rollback.
    retained: VecDeque<Arc<ModelSnapshot>>,
    /// Retired buffers awaiting recycling. A buffer still pinned by a
    /// reader simply waits here until its last share drops.
    free: Vec<Arc<ModelSnapshot>>,
    next_version: u64,
    retain: usize,
}

/// The epoch-versioned snapshot publication point (see module docs).
///
/// One writer (the trainer) publishes; any number of readers (serving
/// engines) resolve. All methods take `&self`, so one
/// `Arc<SnapshotStore>` — or a plain borrow across scoped threads — is
/// the whole sharing story.
#[derive(Debug)]
pub struct SnapshotStore {
    /// Mirror of the current version for lock-free staleness probes.
    version: AtomicU64,
    inner: Mutex<StoreInner>,
}

impl SnapshotStore {
    /// Creates a store and publishes `model` as version 1 (captured at
    /// `steps` trainer steps). `retain` is how many *prior* versions stay
    /// resident for rollback after each publication.
    pub fn new(model: &Dlrm, steps: u64, retain: usize) -> Self {
        let mut buffer = Self::fresh_buffer(model);
        Self::capture(&mut buffer, model, 1, steps);
        Self {
            version: AtomicU64::new(1),
            inner: Mutex::new(StoreInner {
                current: buffer,
                retained: VecDeque::new(),
                free: Vec::new(),
                next_version: 2,
                retain,
            }),
        }
    }

    /// Allocates a buffer model with `model`'s architecture (weights are
    /// overwritten by every capture, so the seed is irrelevant).
    fn fresh_buffer(model: &Dlrm) -> Arc<ModelSnapshot> {
        let buffer = Dlrm::new(model.config().clone(), 0)
            .expect("snapshot buffer shares a validated config");
        Arc::new(ModelSnapshot {
            version: 0,
            steps: 0,
            published_at: Instant::now(),
            model: buffer,
        })
    }

    /// Copies `model`'s weights into `buffer` and stamps it. The caller
    /// guarantees exclusivity (`Arc::get_mut` succeeds).
    fn capture(buffer: &mut Arc<ModelSnapshot>, model: &Dlrm, version: u64, steps: u64) {
        let snap = Arc::get_mut(buffer).expect("capture buffer is exclusively owned");
        snap.model.copy_weights_from(model);
        snap.version = version;
        snap.steps = steps;
        snap.published_at = Instant::now();
    }

    /// The latest published snapshot — a consistent, immutable model any
    /// number of engines can score concurrently. Never blocks on the
    /// slab copy: publication happens in writer-owned buffers and only
    /// the head swap is under the lock.
    pub fn latest(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.inner.lock().expect("snapshot store poisoned").current)
    }

    /// The latest published version, lock-free — the staleness probe an
    /// engine runs per batch to decide whether its held snapshot is
    /// within its staleness bound.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes a new snapshot of `model` (captured at `steps` trainer
    /// steps) and returns its version. Steady-state allocation-free: the
    /// copy lands in a recycled buffer whenever one is unpinned (enforced
    /// in `tests/zero_alloc.rs`).
    pub fn publish(&self, model: &Dlrm, steps: u64) -> u64 {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        self.publish_locked(&mut inner, model, steps)
    }

    /// Re-publishes retained `version`'s exact bytes as a **new**
    /// (monotonic) version, without pausing serving: engines keep scoring
    /// whatever snapshot they hold and pick up the rolled-back weights on
    /// their next refresh. Returns the new version.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::VersionNotRetained`] if `version` is not in the
    /// retained ring.
    pub fn rollback_to(&self, version: u64) -> Result<u64, SnapshotError> {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        let Some(source) = inner
            .retained
            .iter()
            .find(|s| s.version == version)
            .map(Arc::clone)
        else {
            return Err(SnapshotError::VersionNotRetained {
                version,
                retained: inner.retained.iter().map(|s| s.version).collect(),
            });
        };
        Ok(self.publish_locked(&mut inner, &source.model, source.steps))
    }

    fn publish_locked(&self, inner: &mut StoreInner, model: &Dlrm, steps: u64) -> u64 {
        // Recycle: any retired buffer no reader pins. `Arc::get_mut`
        // succeeding *is* the proof of exclusivity — a reader's share
        // makes it fail, and the buffer simply waits in the pool.
        let mut buffer = match inner.free.iter().position(|b| Arc::strong_count(b) == 1) {
            Some(i) => inner.free.swap_remove(i),
            None => Self::fresh_buffer(model),
        };
        let version = inner.next_version;
        inner.next_version += 1;
        Self::capture(&mut buffer, model, version, steps);
        let previous = std::mem::replace(&mut inner.current, buffer);
        inner.retained.push_back(previous);
        while inner.retained.len() > inner.retain {
            let retired = inner.retained.pop_front().expect("ring non-empty");
            inner.free.push(retired);
        }
        self.version.store(version, Ordering::Release);
        version
    }

    /// Re-publishes the current head's exact bytes as a new (monotonic)
    /// version and returns it. This is the heartbeat publish of a
    /// trainer whose weights have not changed — or of a fleet simulation
    /// standing in for one: readers observe a fresh version and a reset
    /// model age, and every recycling/pinning invariant of a real
    /// publish holds (the head is pinned by `current` itself during the
    /// copy, so its buffer is never recycled mid-read).
    pub fn republish_head(&self) -> u64 {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        let head = Arc::clone(&inner.current);
        self.publish_locked(&mut inner, &head.model, head.steps)
    }

    /// Versions currently available to roll back to, oldest first.
    pub fn retained_versions(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("snapshot store poisoned")
            .retained
            .iter()
            .map(|s| s.version)
            .collect()
    }

    /// How many prior versions the store keeps resident.
    pub fn retain(&self) -> usize {
        self.inner.lock().expect("snapshot store poisoned").retain
    }
}

/// A staggered periodic publish schedule on a simulated clock: fires at
/// `phase_ns`, `phase_ns + every_ns`, `phase_ns + 2*every_ns`, ... Pure
/// arithmetic (no clocks, no state), in the decision-function style of
/// the serve plane's batchers — a fleet of tenants with the same
/// `every_ns` but distinct phases publishes round-robin instead of in a
/// thundering herd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishCadence {
    every_ns: u64,
    phase_ns: u64,
}

impl PublishCadence {
    /// A cadence firing every `every_ns`, offset by `phase_ns` (reduced
    /// modulo `every_ns`).
    ///
    /// # Panics
    ///
    /// Panics if `every_ns == 0`.
    pub fn new(every_ns: u64, phase_ns: u64) -> Self {
        assert!(every_ns > 0, "cadence period must be positive");
        Self {
            every_ns,
            phase_ns: phase_ns % every_ns,
        }
    }

    /// The publish period.
    pub fn every_ns(&self) -> u64 {
        self.every_ns
    }

    /// The stagger offset, in `[0, every_ns)`.
    pub fn phase_ns(&self) -> u64 {
        self.phase_ns
    }

    /// The earliest fire time (the phase itself).
    pub fn first_fire_ns(&self) -> u64 {
        self.phase_ns
    }

    /// The smallest fire time strictly greater than `now_ns`.
    pub fn next_fire_after(&self, now_ns: u64) -> u64 {
        if now_ns < self.phase_ns {
            return self.phase_ns;
        }
        let k = (now_ns - self.phase_ns) / self.every_ns + 1;
        self.phase_ns + k * self.every_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_dlrm::DlrmConfig;

    fn model(seed: u64) -> Dlrm {
        Dlrm::new(DlrmConfig::tiny(), seed).unwrap()
    }

    fn weight_bits(m: &Dlrm) -> Vec<u32> {
        let mut bits = Vec::new();
        for layer in m.bottom().layers().iter().chain(m.top().layers()) {
            bits.extend(layer.weight().as_slice().iter().map(|v| v.to_bits()));
            bits.extend(layer.bias().iter().map(|v| v.to_bits()));
        }
        for t in 0..m.num_tables() {
            bits.extend(m.table(t).as_slice().iter().map(|v| v.to_bits()));
        }
        bits
    }

    #[test]
    fn publishes_are_strictly_monotonic_and_bit_exact() {
        let store = SnapshotStore::new(&model(1), 0, 2);
        assert_eq!(store.version(), 1);
        assert_eq!(store.latest().version(), 1);
        let m2 = model(2);
        let v = store.publish(&m2, 7);
        assert_eq!(v, 2);
        let snap = store.latest();
        assert_eq!(snap.version(), 2);
        assert_eq!(snap.steps(), 7);
        assert_eq!(weight_bits(snap.model()), weight_bits(&m2));
    }

    #[test]
    fn retained_ring_holds_the_last_n_prior_versions() {
        let store = SnapshotStore::new(&model(1), 0, 2);
        for s in 0..4u64 {
            store.publish(&model(10 + s), s);
        }
        // Published 1..=5; current is 5; retained are the 2 before it.
        assert_eq!(store.version(), 5);
        assert_eq!(store.retained_versions(), vec![3, 4]);
    }

    #[test]
    fn rollback_republishes_retained_bytes_exactly_as_a_new_version() {
        let store = SnapshotStore::new(&model(1), 0, 3);
        let m2 = model(22);
        store.publish(&m2, 4);
        store.publish(&model(33), 8);
        // Roll back to version 2 (m2's weights).
        let v = store.rollback_to(2).unwrap();
        assert_eq!(v, 4, "rollback is a new monotonic version");
        let snap = store.latest();
        assert_eq!(snap.version(), 4);
        assert_eq!(snap.steps(), 4, "rollback restores the captured steps");
        assert_eq!(weight_bits(snap.model()), weight_bits(&m2));
    }

    #[test]
    fn rollback_to_a_missing_version_is_a_typed_error() {
        let store = SnapshotStore::new(&model(1), 0, 1);
        store.publish(&model(2), 1);
        store.publish(&model(3), 2);
        let err = store.rollback_to(1).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::VersionNotRetained {
                version: 1,
                retained: vec![2],
            }
        );
        assert!(err.to_string().contains("not retained"));
    }

    #[test]
    fn warm_store_recycles_buffers_instead_of_allocating() {
        let m = model(1);
        let store = SnapshotStore::new(&m, 0, 1);
        // Warm: fill current + ring, retire one buffer into the pool.
        store.publish(&m, 1);
        store.publish(&m, 2);
        let recycled_ptr = {
            let inner = store.inner.lock().unwrap();
            assert_eq!(inner.free.len(), 1);
            Arc::as_ptr(&inner.free[0])
        };
        store.publish(&m, 3);
        assert_eq!(
            Arc::as_ptr(&store.latest()),
            recycled_ptr,
            "warm publish must reuse the retired buffer"
        );
    }

    #[test]
    fn a_pinned_buffer_is_never_recycled() {
        let m = model(1);
        let store = SnapshotStore::new(&m, 0, 0);
        let pinned = store.latest(); // reader holds version 1
        let v1_bits = weight_bits(pinned.model());
        // With retain=0 every publish retires the previous head straight
        // into the pool — but the pin must keep it out of reuse.
        for s in 0..4 {
            store.publish(&model(50 + s), s);
        }
        assert_eq!(pinned.version(), 1);
        assert_eq!(
            weight_bits(pinned.model()),
            v1_bits,
            "a held snapshot must never change under the reader"
        );
    }

    #[test]
    fn republish_head_is_a_bit_exact_new_version() {
        let m2 = model(22);
        let store = SnapshotStore::new(&model(1), 0, 2);
        store.publish(&m2, 9);
        let v = store.republish_head();
        assert_eq!(v, 3, "republish is a new monotonic version");
        let snap = store.latest();
        assert_eq!(snap.version(), 3);
        assert_eq!(snap.steps(), 9, "steps carry over from the head");
        assert_eq!(weight_bits(snap.model()), weight_bits(&m2));
        // The previous head landed in the retained ring as usual.
        assert_eq!(store.retained_versions(), vec![1, 2]);
    }

    #[test]
    fn publish_cadence_fires_on_a_staggered_grid() {
        let c = PublishCadence::new(100, 30);
        assert_eq!(c.first_fire_ns(), 30);
        assert_eq!(c.next_fire_after(0), 30);
        assert_eq!(c.next_fire_after(29), 30);
        assert_eq!(c.next_fire_after(30), 130, "strictly after");
        assert_eq!(c.next_fire_after(129), 130);
        assert_eq!(c.next_fire_after(1_000), 1_030);
        // Phase reduces modulo the period; zero phase fires at 0 then
        // every period.
        assert_eq!(PublishCadence::new(100, 230).phase_ns(), 30);
        let z = PublishCadence::new(100, 0);
        assert_eq!(z.first_fire_ns(), 0);
        assert_eq!(z.next_fire_after(0), 100);
        // Two tenants, same period, different phases: their fire times
        // interleave and never collide.
        let a = PublishCadence::new(100, 0);
        let b = PublishCadence::new(100, 50);
        let (mut ta, mut tb) = (a.first_fire_ns(), b.first_fire_ns());
        for _ in 0..20 {
            assert_ne!(ta, tb);
            ta = a.next_fire_after(ta);
            tb = b.next_fire_after(tb);
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_cadence_period_rejected() {
        PublishCadence::new(0, 5);
    }

    #[test]
    fn readers_never_observe_a_torn_snapshot_under_a_hammering_writer() {
        // The writer publishes models whose every weight is one constant;
        // a torn copy would mix two constants inside one snapshot.
        let template = model(1);
        let store = Arc::new(SnapshotStore::new(&template, 0, 1));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let writer_store = Arc::clone(&store);
            let writer_stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut m = model(1);
                let mut c = 1.0f32;
                while writer_stop.load(Ordering::Acquire) == 0 {
                    for layer in m.bottom_mut().layers_mut() {
                        let bias = vec![c; layer.out_dim()];
                        let w = tcast_tensor::Matrix::filled(layer.in_dim(), layer.out_dim(), c);
                        layer.set_parameters(w, bias).unwrap();
                    }
                    for t in 0..m.num_tables() {
                        m.table_mut(t).as_mut_slice().fill(c);
                    }
                    writer_store.publish(&m, c as u64);
                    c += 1.0;
                }
            });
            for _ in 0..3 {
                let reader_store = Arc::clone(&store);
                s.spawn(move || {
                    let mut last_version = 0;
                    for _ in 0..200 {
                        let snap = reader_store.latest();
                        assert!(
                            snap.version() >= last_version,
                            "versions went backwards: {} then {}",
                            last_version,
                            snap.version()
                        );
                        last_version = snap.version();
                        if snap.version() == 1 {
                            continue; // seeded initial model, not constant
                        }
                        let slab = snap.model().table(0).as_slice();
                        let first = slab[0];
                        assert!(
                            slab.iter().all(|&v| v == first),
                            "torn table slab at version {}",
                            snap.version()
                        );
                        for layer in snap.model().bottom().layers() {
                            assert!(
                                layer.weight().as_slice().iter().all(|&v| v == first),
                                "torn MLP weights at version {}",
                                snap.version()
                            );
                        }
                    }
                });
            }
            // Readers finish first (scope joins them), then stop the writer.
            stop.store(1, Ordering::Release);
        });
        assert!(store.version() >= 1);
    }
}

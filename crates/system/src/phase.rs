//! Phase and device vocabulary shared by the design-point models.

/// Which engine executes a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Host CPU (and its DDR4 memory).
    Cpu,
    /// GPU (and its HBM).
    Gpu,
    /// The NMP pool.
    Nmp,
    /// An interconnect transfer (PCIe or the pool link). Carries no
    /// compute power in the energy model.
    Link,
}

impl Device {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Device::Cpu => "CPU",
            Device::Gpu => "GPU",
            Device::Nmp => "NMP",
            Device::Link => "LINK",
        }
    }
}

/// The phases of one training iteration, matching the legend of the
/// paper's Figs. 4 and 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Forward embedding gather-reduce.
    FwdGather,
    /// Forward DNN (bottom MLP + interaction + top MLP), including input
    /// transfers.
    FwdDnn,
    /// Backward DNN, including the gradient transfer back toward the
    /// embedding engine.
    BwdDnn,
    /// Baseline gradient expansion.
    BwdExpand,
    /// Baseline coalesce, sorting step (Algorithm 1 Step A).
    BwdCoalesceSort,
    /// Baseline coalesce, accumulation step (Algorithm 1 Step B).
    BwdCoalesceAccu,
    /// Gradient scatter / model update.
    BwdScatter,
    /// The Tensor-Casting index transformation (Algorithm 2) — runs
    /// overlapped with forward propagation; only its *exposed* portion
    /// contributes to the iteration's critical path.
    Casting,
    /// The T.Casted gradient gather-reduce (Algorithm 3).
    BwdCastedGather,
}

impl PhaseKind {
    /// Display label matching the paper's figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::FwdGather => "FWD (Gather)",
            PhaseKind::FwdDnn => "FWD (DNN)",
            PhaseKind::BwdDnn => "BWD (DNN)",
            PhaseKind::BwdExpand => "BWD (Expand)",
            PhaseKind::BwdCoalesceSort => "BWD (Coalesce:sort)",
            PhaseKind::BwdCoalesceAccu => "BWD (Coalesce:accu)",
            PhaseKind::BwdScatter => "BWD (Scatter)",
            PhaseKind::Casting => "FWD (Casting)",
            PhaseKind::BwdCastedGather => "BWD (T.Casted Gather)",
        }
    }

    /// Whether this phase belongs to embedding-layer backpropagation
    /// (used by the "62-92% of training time" characterization).
    pub fn is_embedding_backward(&self) -> bool {
        matches!(
            self,
            PhaseKind::BwdExpand
                | PhaseKind::BwdCoalesceSort
                | PhaseKind::BwdCoalesceAccu
                | PhaseKind::BwdScatter
                | PhaseKind::BwdCastedGather
        )
    }
}

/// One costed phase of an iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// What work this is.
    pub kind: PhaseKind,
    /// Which engine runs it.
    pub device: Device,
    /// Duration in nanoseconds.
    pub ns: f64,
}

impl PhaseCost {
    /// Creates a phase cost.
    pub fn new(kind: PhaseKind, device: Device, ns: f64) -> Self {
        Self { kind, device, ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(PhaseKind::FwdGather.label(), "FWD (Gather)");
        assert_eq!(PhaseKind::BwdCoalesceSort.label(), "BWD (Coalesce:sort)");
        assert_eq!(PhaseKind::BwdCastedGather.label(), "BWD (T.Casted Gather)");
    }

    #[test]
    fn embedding_backward_classification() {
        assert!(PhaseKind::BwdExpand.is_embedding_backward());
        assert!(PhaseKind::BwdScatter.is_embedding_backward());
        assert!(PhaseKind::BwdCastedGather.is_embedding_backward());
        assert!(!PhaseKind::FwdGather.is_embedding_backward());
        assert!(!PhaseKind::BwdDnn.is_embedding_backward());
        assert!(!PhaseKind::Casting.is_embedding_backward());
    }

    #[test]
    fn device_names() {
        assert_eq!(Device::Cpu.name(), "CPU");
        assert_eq!(Device::Nmp.name(), "NMP");
    }
}

//! Parameterized sweep helpers: the machinery behind the sensitivity
//! figures (16, 17, the link sweep) plus a pool-scaling study the paper
//! implies but does not plot (Table I's rank count as a design knob).

use crate::calibration::Calibration;
use crate::design::DesignPoint;
use crate::metrics::Series;
use crate::workload::{RmModel, SystemWorkload};

/// Speedup of `design` over `baseline` for one workload.
fn speedup(
    wl: &SystemWorkload,
    baseline: DesignPoint,
    design: DesignPoint,
    cal: &Calibration,
) -> f64 {
    baseline.evaluate(wl, cal).total_ns / design.evaluate(wl, cal).total_ns
}

/// Fig. 16 series: `design`'s speedup over Baseline(CPU) across batch
/// sizes for one model.
pub fn batch_sweep(
    model: &RmModel,
    batches: &[usize],
    design: DesignPoint,
    cal: &Calibration,
) -> Series {
    let mut s = Series::new(format!("{} {}", model.name, design.name()));
    for &batch in batches {
        let wl = SystemWorkload::build(model.clone(), batch, 64, 42);
        s.push(
            format!("b{batch}"),
            speedup(&wl, DesignPoint::BaselineCpuGpu, design, cal),
        );
    }
    s
}

/// Fig. 17 series: speedup across embedding dimensions.
pub fn dim_sweep(
    model: &RmModel,
    dims: &[usize],
    design: DesignPoint,
    cal: &Calibration,
) -> Series {
    let mut s = Series::new(format!("{} {}", model.name, design.name()));
    for &dim in dims {
        let wl = SystemWorkload::build(model.clone(), 2048, dim, 42);
        s.push(
            format!("dim{dim}"),
            speedup(&wl, DesignPoint::BaselineCpuGpu, design, cal),
        );
    }
    s
}

/// Section VI-D series: Ours(NMP) performance (relative to the 150 GB/s
/// configuration) across link bandwidths.
pub fn link_sweep(model: &RmModel, links_gbps: &[f64], cal: &Calibration) -> Series {
    let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
    let best = DesignPoint::OursNmp
        .evaluate(&wl, &cal.clone().with_pool_link_gbps(150.0))
        .total_ns;
    let mut s = Series::new(format!("{} Ours(NMP)", model.name));
    for &gbps in links_gbps {
        let t = DesignPoint::OursNmp
            .evaluate(&wl, &cal.clone().with_pool_link_gbps(gbps))
            .total_ns;
        s.push(format!("{gbps:.0}GB/s"), best / t);
    }
    s
}

/// Pool-scaling study: Ours(NMP) speedup over Baseline(CPU) as the pool
/// grows from `ranks[0]` to `ranks[last]` channels (per-channel
/// bandwidth fixed at Table I's 25.6 GB/s).
pub fn rank_sweep(model: &RmModel, ranks: &[usize], cal: &Calibration) -> Series {
    let wl = SystemWorkload::build(model.clone(), 2048, 64, 42);
    let mut s = Series::new(format!("{} Ours(NMP)", model.name));
    for &r in ranks {
        let mut c = cal.clone();
        c.pool_channels = r;
        s.push(
            format!("{r} ranks"),
            speedup(&wl, DesignPoint::BaselineCpuGpu, DesignPoint::OursNmp, &c),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn batch_sweep_is_monotone_for_software_casting() {
        let s = batch_sweep(
            &RmModel::rm1(),
            &[1024, 8192, 32768],
            DesignPoint::OursCpu,
            &cal(),
        );
        assert_eq!(s.points.len(), 3);
        assert!(s.points[2].1 > s.points[0].1);
    }

    #[test]
    fn dim_sweep_stays_above_2x_for_nmp() {
        let s = dim_sweep(
            &RmModel::rm1(),
            &[32, 64, 128, 256],
            DesignPoint::OursNmp,
            &cal(),
        );
        assert!(s.points.iter().all(|p| p.1 > 2.0), "{s:?}");
    }

    #[test]
    fn link_sweep_saturates() {
        let s = link_sweep(&RmModel::rm1(), &[25.0, 50.0, 100.0, 150.0], &cal());
        // Relative performance approaches 1.0 and is monotone.
        assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9));
        assert!((s.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!(s.points[0].1 > 0.7);
    }

    #[test]
    fn rank_sweep_shows_diminishing_returns() {
        let s = rank_sweep(&RmModel::rm1(), &[8, 16, 32, 64], &cal());
        // More ranks always help...
        assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1));
        // ...but the increment shrinks (Amdahl: DNN/link/casting remain).
        let d1 = s.points[1].1 - s.points[0].1;
        let d3 = s.points[3].1 - s.points[2].1;
        assert!(d3 < d1, "increments {d1} then {d3}");
    }
}

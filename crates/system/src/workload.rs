//! Workload descriptions: the RM1-RM4 model zoo (Table II) lowered into
//! the quantities the cost model needs.

use tcast_datasets::{CoalesceStats, DatasetPreset};
use tcast_embedding::traffic::WorkloadShape;

/// A recommendation-model architecture (one row of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct RmModel {
    /// Display name ("RM1"...).
    pub name: &'static str,
    /// Number of embedding tables.
    pub tables: usize,
    /// Gathers (lookups) per table per sample — Table II "Gathers/table".
    pub pooling: usize,
    /// Bottom-MLP layer widths.
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP layer widths (last = 1).
    pub top_mlp: Vec<usize>,
    /// Dense (continuous) input features.
    pub dense_features: usize,
    /// Whether the paper classifies it embedding-intensive.
    pub embedding_intensive: bool,
}

impl RmModel {
    /// RM1: 10 tables x 80 gathers, bottom 256-128-64, top 256-64-1
    /// (embedding intensive).
    pub fn rm1() -> Self {
        Self {
            name: "RM1",
            tables: 10,
            pooling: 80,
            bottom_mlp: vec![256, 128, 64],
            top_mlp: vec![256, 64, 1],
            dense_features: 13,
            embedding_intensive: true,
        }
    }

    /// RM2: 40 tables x 80 gathers, bottom 256-128-64, top 512-128-1
    /// (embedding intensive).
    pub fn rm2() -> Self {
        Self {
            name: "RM2",
            tables: 40,
            pooling: 80,
            bottom_mlp: vec![256, 128, 64],
            top_mlp: vec![512, 128, 1],
            dense_features: 13,
            embedding_intensive: true,
        }
    }

    /// RM3: 10 tables x 20 gathers, bottom 2560-512-64, top 512-128-1
    /// (MLP intensive).
    pub fn rm3() -> Self {
        Self {
            name: "RM3",
            tables: 10,
            pooling: 20,
            bottom_mlp: vec![2560, 512, 64],
            top_mlp: vec![512, 128, 1],
            dense_features: 13,
            embedding_intensive: false,
        }
    }

    /// RM4: RM3 with an extra, wider top MLP: top 2048-2048-1024-1
    /// (MLP intensive).
    pub fn rm4() -> Self {
        Self {
            name: "RM4",
            tables: 10,
            pooling: 20,
            bottom_mlp: vec![2560, 1024, 64],
            top_mlp: vec![2048, 2048, 1024, 1],
            dense_features: 13,
            embedding_intensive: false,
        }
    }

    /// All four models in paper order.
    pub fn all() -> Vec<RmModel> {
        vec![Self::rm1(), Self::rm2(), Self::rm3(), Self::rm4()]
    }

    /// Forward-pass FLOPs of both MLPs at `batch` with embedding width
    /// `dim` (2 FLOPs per MAC; interaction output feeds the top MLP).
    pub fn mlp_forward_flops(&self, batch: usize, dim: usize) -> f64 {
        let mut flops = 0.0;
        let mut prev = self.dense_features;
        for &w in &self.bottom_mlp {
            flops += 2.0 * batch as f64 * prev as f64 * w as f64;
            prev = w;
        }
        // DLRM dot interaction over (tables + 1) dim-wide vectors.
        let m = self.tables + 1;
        let interaction_dim = dim + m * (m - 1) / 2;
        let mut prev = interaction_dim;
        for &w in &self.top_mlp {
            flops += 2.0 * batch as f64 * prev as f64 * w as f64;
            prev = w;
        }
        flops
    }
}

/// A fully specified experiment point: model x batch x embedding dim,
/// with the coalescing locality measured from a dataset popularity model.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemWorkload {
    /// The model architecture.
    pub model: RmModel,
    /// Mini-batch size.
    pub batch: usize,
    /// Embedding vector dimension.
    pub dim: usize,
    /// Unique-index count per table per batch (`U`), measured by
    /// sampling the locality model.
    pub unique_per_table: usize,
    /// The dataset whose locality was used.
    pub dataset: DatasetPreset,
}

impl SystemWorkload {
    /// Builds a workload using the paper's default Criteo-like locality.
    pub fn build(model: RmModel, batch: usize, dim: usize, seed: u64) -> Self {
        Self::build_with_dataset(model, batch, dim, DatasetPreset::CriteoKaggle, seed)
    }

    /// Builds a workload with an explicit dataset locality model. The
    /// unique-index fraction is *measured* by generating one table's
    /// index stream and counting distinct ids (Fig. 5b methodology).
    pub fn build_with_dataset(
        model: RmModel,
        batch: usize,
        dim: usize,
        dataset: DatasetPreset,
        seed: u64,
    ) -> Self {
        let workload = dataset.table_workload(model.pooling);
        let stats = CoalesceStats::measure(&workload, batch, seed);
        Self {
            model,
            batch,
            dim,
            unique_per_table: stats.coalesced,
            dataset,
        }
    }

    /// Lookups per table per batch (`n = batch * pooling`).
    pub fn lookups_per_table(&self) -> u64 {
        (self.batch * self.model.pooling) as u64
    }

    /// The traffic-model shape of a single table's mini-batch.
    pub fn table_shape(&self) -> WorkloadShape {
        WorkloadShape {
            lookups: self.lookups_per_table(),
            outputs: self.batch as u64,
            unique: self.unique_per_table as u64,
            dim: self.dim as u64,
        }
    }

    /// Total lookups across all tables.
    pub fn total_lookups(&self) -> u64 {
        self.lookups_per_table() * self.model.tables as u64
    }

    /// Bytes of the pooled embedding activations (all tables), the
    /// tensor shipped to the DNN each iteration.
    pub fn pooled_bytes(&self) -> u64 {
        (self.batch * self.dim * 4 * self.model.tables) as u64
    }

    /// Bytes of the raw `(src,dst)` index arrays (all tables).
    pub fn index_bytes(&self) -> u64 {
        self.total_lookups() * 8
    }

    /// MLP forward FLOPs at this batch/dim.
    pub fn mlp_forward_flops(&self) -> f64 {
        self.model.mlp_forward_flops(self.batch, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_parameters() {
        let rm1 = RmModel::rm1();
        assert_eq!((rm1.tables, rm1.pooling), (10, 80));
        let rm2 = RmModel::rm2();
        assert_eq!((rm2.tables, rm2.pooling), (40, 80));
        let rm3 = RmModel::rm3();
        assert_eq!((rm3.tables, rm3.pooling), (10, 20));
        assert_eq!(RmModel::rm4().top_mlp, vec![2048, 2048, 1024, 1]);
        assert_eq!(RmModel::all().len(), 4);
    }

    #[test]
    fn embedding_vs_mlp_classification() {
        assert!(RmModel::rm1().embedding_intensive);
        assert!(RmModel::rm2().embedding_intensive);
        assert!(!RmModel::rm3().embedding_intensive);
        assert!(!RmModel::rm4().embedding_intensive);
    }

    #[test]
    fn mlp_flops_ordering_matches_model_classes() {
        // RM4 > RM3 > RM1 in MLP compute.
        let b = 2048;
        let f1 = RmModel::rm1().mlp_forward_flops(b, 64);
        let f3 = RmModel::rm3().mlp_forward_flops(b, 64);
        let f4 = RmModel::rm4().mlp_forward_flops(b, 64);
        assert!(f3 > 5.0 * f1);
        assert!(f4 > 2.0 * f3);
    }

    #[test]
    fn workload_quantities() {
        let wl = SystemWorkload::build(RmModel::rm1(), 2048, 64, 1);
        assert_eq!(wl.lookups_per_table(), 2048 * 80);
        assert_eq!(wl.total_lookups(), 2048 * 80 * 10);
        assert_eq!(wl.pooled_bytes(), 2048 * 64 * 4 * 10);
        assert_eq!(wl.index_bytes(), 2048 * 80 * 10 * 8);
        // Locality: unique must be positive and below lookups.
        assert!(wl.unique_per_table > 0);
        assert!((wl.unique_per_table as u64) < wl.lookups_per_table());
    }

    #[test]
    fn larger_batches_coalesce_relatively_better() {
        let small = SystemWorkload::build(RmModel::rm1(), 1024, 64, 2);
        let large = SystemWorkload::build(RmModel::rm1(), 8192, 64, 2);
        let frac_small = small.unique_per_table as f64 / small.lookups_per_table() as f64;
        let frac_large = large.unique_per_table as f64 / large.lookups_per_table() as f64;
        assert!(frac_large < frac_small);
    }

    #[test]
    fn table_shape_roundtrip() {
        let wl = SystemWorkload::build(RmModel::rm3(), 1024, 32, 3);
        let s = wl.table_shape();
        assert_eq!(s.lookups, 1024 * 20);
        assert_eq!(s.outputs, 1024);
        assert_eq!(s.dim, 32);
        assert_eq!(s.unique, wl.unique_per_table as u64);
    }

    #[test]
    fn dataset_choice_changes_locality() {
        let criteo = SystemWorkload::build_with_dataset(
            RmModel::rm1(),
            2048,
            64,
            DatasetPreset::CriteoKaggle,
            4,
        );
        let random =
            SystemWorkload::build_with_dataset(RmModel::rm1(), 2048, 64, DatasetPreset::Random, 4);
        assert!(criteo.unique_per_table < random.unique_per_table);
    }
}

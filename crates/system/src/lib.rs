//! System-level performance and energy model for recommendation training
//! — the machinery behind the paper's evaluation figures.
//!
//! The paper's own evaluation combines real-system wall-clock runs with a
//! Ramulator-backed emulation of the NMP pool (Section V). This crate is
//! the analogous model, built entirely on this repository's substrates:
//!
//! * per-primitive byte counts come from the **analytic traffic model**
//!   (`tcast_embedding::traffic`, validated against Fig. 6);
//! * device bandwidths/efficiencies come from **measured DRAM-simulator
//!   runs** (`tcast-dram`) and documented constants ([`Calibration`]);
//! * the **coalescing locality** (the unique-index fraction `U/n`) is
//!   measured by sampling the dataset popularity models
//!   (`tcast-datasets`, Fig. 5);
//! * each of the paper's four **design points** ([`DesignPoint`]) lowers
//!   a workload into a device-tagged phase schedule ([`build_timeline`]) with
//!   the casting stage overlapped per the Section IV-B runtime;
//! * per-iteration energy applies the device power model of Section VI-C.
//!
//! # Example: the headline comparison
//!
//! ```
//! use tcast_system::{Calibration, DesignPoint, SystemWorkload, RmModel};
//!
//! let cal = Calibration::default();
//! let wl = SystemWorkload::build(RmModel::rm1(), 2048, 64, 7);
//! let base = DesignPoint::BaselineCpuGpu.evaluate(&wl, &cal);
//! let ours = DesignPoint::OursNmp.evaluate(&wl, &cal);
//! let speedup = base.total_ns / ours.total_ns;
//! assert!(speedup > 2.0, "Ours(NMP) must be well ahead, got {speedup:.1}x");
//! ```

pub mod ablation;
mod calibration;
mod design;
mod energy;
mod metrics;
mod phase;
pub mod report;
pub mod sweeps;
mod timeline;
mod workload;

pub use calibration::Calibration;
pub use design::{DesignPoint, Evaluation};
pub use energy::{energy_joules, EnergyBreakdown};
pub use metrics::{geometric_mean, render_table, Series};
pub use phase::{Device, PhaseCost, PhaseKind};
pub use timeline::{build_timeline, render_timeline, TimelineEvent};
pub use workload::{RmModel, SystemWorkload};

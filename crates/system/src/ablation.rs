//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Three knobs are modelled here on top of the standard design points:
//!
//! 1. **Casting exposure** — what Tensor Casting is worth *without* the
//!    Section IV-B runtime (casting executed synchronously on the
//!    backward path instead of overlapped with forward propagation);
//! 2. **Optimizer state traffic** — how stateful optimizers
//!    (Adagrad/RMSprop, 8 B of accumulator traffic per element) inflate
//!    the scatter phase on every design point;
//! 3. **Fused backward** — the `tcast_core::fused_casted_backward`
//!    extension that folds the scatter into the casted gather-reduce,
//!    eliminating the materialized `U x D` coalesced tensor.

use crate::calibration::Calibration;
use crate::design::{DesignPoint, Evaluation};
use crate::phase::PhaseKind;
use crate::workload::SystemWorkload;
use tcast_embedding::traffic;

/// Result of the casting-exposure ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CastingExposure {
    /// Iteration time with casting overlapped (the paper's runtime), ns.
    pub hidden_ns: f64,
    /// Iteration time with casting fully exposed on the backward path, ns.
    pub exposed_ns: f64,
}

impl CastingExposure {
    /// Speedup attributable purely to the runtime co-design.
    pub fn runtime_speedup(&self) -> f64 {
        self.exposed_ns / self.hidden_ns
    }
}

/// Evaluates a casting design point with the overlap runtime enabled
/// (normal) and disabled (casting serialized before the backward pass).
pub fn casting_exposure(
    design: DesignPoint,
    wl: &SystemWorkload,
    cal: &Calibration,
) -> CastingExposure {
    assert!(
        design.uses_casting(),
        "exposure ablation only applies to Tensor Casting design points"
    );
    let eval = design.evaluate(wl, cal);
    CastingExposure {
        hidden_ns: eval.total_ns,
        // Without the runtime, the hidden portion lands on the critical
        // path again.
        exposed_ns: eval.total_ns + eval.casting_hidden_ns,
    }
}

/// Additional scatter time (ns) a stateful optimizer adds to one
/// iteration of `design`, with `state_bytes_per_elem` of optimizer-state
/// traffic per updated element (8 for Adagrad/RMSprop/momentum).
pub fn optimizer_state_overhead_ns(
    design: DesignPoint,
    wl: &SystemWorkload,
    cal: &Calibration,
    state_bytes_per_elem: u64,
) -> f64 {
    let s = wl.table_shape();
    let t = wl.model.tables as f64;
    let extra_bytes = (traffic::scatter(&s, state_bytes_per_elem).total()
        - traffic::scatter(&s, 0).total()) as f64
        * t;
    // The scatter runs on the CPU for CPU-centric designs and on the pool
    // for NMP designs.
    match design {
        DesignPoint::CpuOnly | DesignPoint::BaselineCpuGpu | DesignPoint::OursCpu => {
            extra_bytes / (cal.cpu_mem_gbps * cal.cpu_gather_eff)
        }
        DesignPoint::BaselineNmp | DesignPoint::OursNmp => {
            extra_bytes / (cal.pool_peak_gbps() * cal.pool_rmw_eff)
        }
    }
}

/// Evaluation of the fused-backward extension on the memory-centric
/// system: the separate scatter phase disappears and its traffic shrinks
/// to the table-row read-modify-write only (the coalesced gradients stay
/// in registers).
pub fn fused_backward_evaluation(wl: &SystemWorkload, cal: &Calibration) -> Evaluation {
    let mut eval = DesignPoint::OursNmp.evaluate(wl, cal);
    let s = wl.table_shape();
    let t = wl.model.tables as f64;
    // Savings: the casted gather-reduce no longer writes U rows, and the
    // scatter no longer reads them back.
    let saved_bytes = 2.0 * (s.unique * s.dim * 4) as f64 * t;
    let saved_ns = saved_bytes / (cal.pool_peak_gbps() * cal.pool_rmw_eff);
    for p in &mut eval.phases {
        if p.kind == PhaseKind::BwdScatter {
            p.ns = (p.ns - saved_ns).max(0.0);
        }
    }
    let serial: f64 = eval.phases.iter().map(|p| p.ns).sum();
    eval.total_ns = serial - eval.casting_hidden_ns;
    eval.nmp_busy_ns = (eval.nmp_busy_ns - saved_ns).max(0.0);
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RmModel;

    fn wl() -> SystemWorkload {
        SystemWorkload::build(RmModel::rm1(), 2048, 64, 42)
    }

    #[test]
    fn hidden_casting_always_helps() {
        let cal = Calibration::default();
        for dp in [DesignPoint::OursCpu, DesignPoint::OursNmp] {
            let e = casting_exposure(dp, &wl(), &cal);
            assert!(e.exposed_ns >= e.hidden_ns, "{dp}");
            assert!(e.runtime_speedup() >= 1.0);
        }
    }

    #[test]
    fn runtime_matters_more_where_casting_is_large_relative_to_backward() {
        // On the NMP system the backward is tiny, so exposing the casting
        // hurts relatively more than on the CPU system.
        let cal = Calibration::default();
        let cpu = casting_exposure(DesignPoint::OursCpu, &wl(), &cal);
        let nmp = casting_exposure(DesignPoint::OursNmp, &wl(), &cal);
        assert!(nmp.runtime_speedup() > cpu.runtime_speedup());
    }

    #[test]
    #[should_panic(expected = "only applies to Tensor Casting")]
    fn exposure_rejects_baselines() {
        casting_exposure(DesignPoint::BaselineCpuGpu, &wl(), &Calibration::default());
    }

    #[test]
    fn stateful_optimizer_costs_more_on_cpu_than_pool() {
        let cal = Calibration::default();
        let cpu = optimizer_state_overhead_ns(DesignPoint::BaselineCpuGpu, &wl(), &cal, 8);
        let pool = optimizer_state_overhead_ns(DesignPoint::OursNmp, &wl(), &cal, 8);
        assert!(cpu > pool, "pool bandwidth should absorb state traffic");
        assert!(cpu > 0.0);
        // SGD adds nothing.
        assert_eq!(
            optimizer_state_overhead_ns(DesignPoint::OursNmp, &wl(), &cal, 0),
            0.0
        );
    }

    #[test]
    fn fused_backward_is_faster_still() {
        let cal = Calibration::default();
        let normal = DesignPoint::OursNmp.evaluate(&wl(), &cal);
        let fused = fused_backward_evaluation(&wl(), &cal);
        assert!(fused.total_ns < normal.total_ns);
        assert!(fused.phase_ns(PhaseKind::BwdScatter) < normal.phase_ns(PhaseKind::BwdScatter));
        // Still does useful scatter work (the RMW itself remains).
        assert!(fused.phase_ns(PhaseKind::BwdScatter) > 0.0);
    }
}

//! Per-iteration energy model (Section VI-C, Fig. 14).
//!
//! "When evaluating energy consumption, we multiply the power estimation
//! values with each CPU, GPU, and NMP node's execution time." Each device
//! present in a design point burns active power while running its phases
//! and idle power for the rest of the iteration; link transfers carry no
//! compute power.

use crate::calibration::Calibration;
use crate::design::Evaluation;
use crate::phase::Device;

/// Energy of one iteration, by device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// CPU joules (0 when the system has no CPU).
    pub cpu_j: f64,
    /// GPU joules.
    pub gpu_j: f64,
    /// NMP pool joules.
    pub nmp_j: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.cpu_j + self.gpu_j + self.nmp_j
    }
}

/// Computes the energy of one evaluated iteration.
pub fn energy_joules(eval: &Evaluation, cal: &Calibration) -> EnergyBreakdown {
    let total_s = eval.total_ns * 1e-9;
    let mut out = EnergyBreakdown::default();
    for &device in eval.design.devices() {
        let busy_s = (eval.device_busy_ns(device) * 1e-9).min(total_s);
        let idle_s = total_s - busy_s;
        let (active_w, idle_w) = match device {
            Device::Cpu => (cal.cpu_active_w, cal.cpu_idle_w),
            Device::Gpu => (cal.gpu_active_w, cal.gpu_idle_w),
            Device::Nmp => (cal.pool_active_w, cal.pool_idle_w),
            Device::Link => (0.0, 0.0),
        };
        let joules = busy_s * active_w + idle_s * idle_w;
        match device {
            Device::Cpu => out.cpu_j = joules,
            Device::Gpu => out.gpu_j = joules,
            Device::Nmp => out.nmp_j = joules,
            Device::Link => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;
    use crate::workload::{RmModel, SystemWorkload};

    fn cal() -> Calibration {
        Calibration::default()
    }

    fn wl() -> SystemWorkload {
        SystemWorkload::build(RmModel::rm1(), 2048, 64, 42)
    }

    #[test]
    fn faster_systems_use_less_energy() {
        // Fig. 14: training-time reduction translates into energy savings.
        let w = wl();
        let base = energy_joules(&DesignPoint::BaselineCpuGpu.evaluate(&w, &cal()), &cal());
        let ours_cpu = energy_joules(&DesignPoint::OursCpu.evaluate(&w, &cal()), &cal());
        let ours_nmp = energy_joules(&DesignPoint::OursNmp.evaluate(&w, &cal()), &cal());
        assert!(ours_cpu.total() < base.total());
        assert!(ours_nmp.total() < ours_cpu.total());
    }

    #[test]
    fn ours_cpu_beats_baseline_nmp_energy() {
        // "even the software-only Ours(CPU) provides noticeable
        // energy-efficiency improvements compared to Baseline(NMP)".
        let w = wl();
        let base_nmp = energy_joules(&DesignPoint::BaselineNmp.evaluate(&w, &cal()), &cal());
        let ours_cpu = energy_joules(&DesignPoint::OursCpu.evaluate(&w, &cal()), &cal());
        assert!(ours_cpu.total() < base_nmp.total());
    }

    #[test]
    fn cpu_only_has_no_gpu_energy() {
        let w = wl();
        let e = energy_joules(&DesignPoint::CpuOnly.evaluate(&w, &cal()), &cal());
        assert_eq!(e.gpu_j, 0.0);
        assert_eq!(e.nmp_j, 0.0);
        assert!(e.cpu_j > 0.0);
    }

    #[test]
    fn ours_nmp_has_no_cpu_energy() {
        let w = wl();
        let e = energy_joules(&DesignPoint::OursNmp.evaluate(&w, &cal()), &cal());
        assert_eq!(e.cpu_j, 0.0);
        assert!(e.gpu_j > 0.0);
        assert!(e.nmp_j > 0.0);
    }

    #[test]
    fn energy_is_bounded_by_all_active_and_all_idle() {
        let w = wl();
        for dp in DesignPoint::ALL {
            let eval = dp.evaluate(&w, &cal());
            let e = energy_joules(&eval, &cal());
            let s = eval.total_ns * 1e-9;
            let (mut max_w, mut min_w) = (0.0, 0.0);
            for &d in dp.devices() {
                let (a, i) = match d {
                    Device::Cpu => (cal().cpu_active_w, cal().cpu_idle_w),
                    Device::Gpu => (cal().gpu_active_w, cal().gpu_idle_w),
                    Device::Nmp => (cal().pool_active_w, cal().pool_idle_w),
                    Device::Link => (0.0, 0.0),
                };
                max_w += a;
                min_w += i;
            }
            assert!(e.total() <= s * max_w * (1.0 + 1e-9), "{dp}");
            assert!(e.total() >= s * min_w * (1.0 - 1e-9), "{dp}");
        }
    }
}

//! Output helpers shared by the figure-regeneration binaries: plain-text
//! tables, labelled series, and summary statistics.

/// A labelled series of `(x-label, value)` points — one line/bar group of
/// a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (e.g. a design-point name).
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// Largest y value (0 if empty).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }
}

/// Geometric mean of positive values; 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a padded plain-text table.
///
/// ```
/// let t = tcast_system::render_table(
///     &["model", "speedup"],
///     &[vec!["RM1".into(), "2.0".into()]],
/// );
/// assert!(t.contains("RM1"));
/// assert!(t.contains("speedup"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(headers.to_vec(), &widths));
    let sep: String = {
        let mut s = String::from("|");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('|');
        }
        s.push('\n');
        s
    };
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(
            row.iter().map(String::as_str).collect(),
            &widths,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points() {
        let mut s = Series::new("Ours(NMP)");
        s.push("b1024", 5.0);
        s.push("b2048", 7.5);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.max(), 7.5);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        // Geomean < arithmetic mean for non-constant values.
        assert!(geometric_mean(&[1.0, 9.0]) < 5.0);
    }

    #[test]
    fn table_alignment_and_content() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header, sep, 2 rows
                                    // All lines equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(t.contains("long-name"));
    }
}

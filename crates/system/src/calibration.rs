//! Calibration constants: the single source of truth for device
//! parameters (DESIGN.md section 6).
//!
//! Bandwidths and link speeds are the paper's stated system parameters
//! (Fig. 3, Table I, Section V); efficiency factors are *measured* on the
//! `tcast-dram` cycle-level simulator (see
//! [`Calibration::from_dram_sim`]); compute rates and sort throughputs
//! are documented engineering estimates for the paper's hardware (Xeon
//! server CPU, V100 GPU with the paper's "heavily tuned" kernels —
//! Section V reports their tuned sort/accumulate is 5-12x faster than
//! stock PyTorch, which these numbers reflect).

use tcast_dram::{streams, AddressMapping, DramConfig, MemorySystem};

/// Device parameters consumed by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// CPU memory peak bandwidth, GB/s (the paper's Fig. 3: 80 GB/s).
    pub cpu_mem_gbps: f64,
    /// CPU efficiency on streaming access (expand, sequential copies).
    pub cpu_stream_eff: f64,
    /// CPU efficiency on row-granular gather/scatter/accumulate
    /// (limited by per-core miss-level parallelism, not DRAM).
    pub cpu_gather_eff: f64,
    /// CPU dense-GEMM throughput, GFLOP/s (multi-socket AVX-512 fp32).
    pub cpu_gflops: f64,
    /// CPU sort-by-key throughput, Melem/s (the paper's tuned parallel
    /// radix sort, 5-6x stock PyTorch).
    pub cpu_sort_melems: f64,
    /// GPU HBM peak bandwidth, GB/s (V100: 900).
    pub gpu_mem_gbps: f64,
    /// GPU efficiency on streaming access.
    pub gpu_stream_eff: f64,
    /// GPU dense-GEMM throughput, GFLOP/s (V100 fp32 at ~75% of its
    /// 15.7 TFLOPS peak for large GEMMs).
    pub gpu_gflops: f64,
    /// GPU sort-by-key throughput, Melem/s (CUB radix sort-by-key on
    /// V100 for 32-bit keys).
    pub gpu_sort_melems: f64,
    /// CPU <-> GPU PCIe gen3 bandwidth, GB/s.
    pub pcie_gbps: f64,
    /// GPU <-> pool link bandwidth, GB/s (Section V: 25, swept to 150).
    pub pool_link_gbps: f64,
    /// NMP pool channels (Table I: 32 ranks).
    pub pool_channels: usize,
    /// Per-channel pool bandwidth, GB/s (Table I: 25.6).
    pub pool_channel_gbps: f64,
    /// Pool efficiency on 64 B-granular gathers (measured on tcast-dram).
    pub pool_gather_eff: f64,
    /// Pool efficiency on read-modify-write scatters (measured).
    pub pool_rmw_eff: f64,
    /// Pool efficiency on streaming writes (gradient-table staging and
    /// output drains). Lower than a CPU's streaming efficiency because
    /// the pool's column-first mapping keeps consecutive blocks in one
    /// bank group (tCCD_L-paced) — the price of gather-optimized layout,
    /// measured on the DRAM simulator.
    pub pool_stream_eff: f64,
    /// CPU active power, W (socket under load).
    pub cpu_active_w: f64,
    /// CPU idle power, W.
    pub cpu_idle_w: f64,
    /// GPU active power, W (V100 board).
    pub gpu_active_w: f64,
    /// GPU idle power, W.
    pub gpu_idle_w: f64,
    /// Pool active power, W (32 ranks x (4.5 W LRDIMM + 1.5 W NMP),
    /// Micron power-calculator methodology of Section VI-C).
    pub pool_active_w: f64,
    /// Pool idle power, W.
    pub pool_idle_w: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Self {
            cpu_mem_gbps: 80.0,
            cpu_stream_eff: 0.85,
            cpu_gather_eff: 0.55,
            cpu_gflops: 1_000.0,
            cpu_sort_melems: 150.0,
            gpu_mem_gbps: 900.0,
            gpu_stream_eff: 0.85,
            gpu_gflops: 12_000.0,
            gpu_sort_melems: 4_000.0,
            pcie_gbps: 16.0,
            pool_link_gbps: 25.0,
            pool_channels: 32,
            pool_channel_gbps: 25.6,
            pool_gather_eff: 0.88,
            pool_rmw_eff: 0.82,
            pool_stream_eff: 0.62,
            cpu_active_w: 150.0,
            cpu_idle_w: 60.0,
            gpu_active_w: 300.0,
            gpu_idle_w: 50.0,
            pool_active_w: 192.0,
            pool_idle_w: 45.0,
        }
    }
}

impl Calibration {
    /// Aggregate pool peak bandwidth, GB/s (819.2 for Table I).
    pub fn pool_peak_gbps(&self) -> f64 {
        self.pool_channels as f64 * self.pool_channel_gbps
    }

    /// Effective pool gather bandwidth, GB/s (the Table I ">600 GB/s").
    pub fn pool_gather_gbps(&self) -> f64 {
        self.pool_peak_gbps() * self.pool_gather_eff
    }

    /// Returns a copy with a different pool link bandwidth (the Section
    /// VI-D communication sweep).
    pub fn with_pool_link_gbps(mut self, gbps: f64) -> Self {
        self.pool_link_gbps = gbps;
        self
    }

    /// Re-measures the pool efficiency factors on the cycle-level DRAM
    /// simulator instead of trusting the defaults: runs a 64 B-granular
    /// random gather, an RMW update stream, and a streaming write over
    /// one pool channel (dual-rank DDR4-3200, column-first mapping) and
    /// installs the measured fractions.
    ///
    /// `sample` controls the trace length (8192 is plenty; tests use
    /// less).
    pub fn from_dram_sim(mut self, sample: usize) -> Self {
        let mut cfg = DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst);
        cfg.ranks_per_channel = 2;
        let peak = cfg.peak_bandwidth_gbps();
        let rows: Vec<u32> = (0..sample as u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 200_000)
            .collect();

        let gather = MemorySystem::new(cfg.clone())
            .run_trace(streams::gather_reads(&rows, 64, 0))
            .effective_bandwidth_gbps(&cfg);
        let rmw = MemorySystem::new(cfg.clone())
            .run_trace(streams::update_rmw(&rows[..sample / 2], 64, 0))
            .effective_bandwidth_gbps(&cfg);
        let stream = MemorySystem::new(cfg.clone())
            .run_trace(streams::sequential_writes(sample as u64))
            .effective_bandwidth_gbps(&cfg);

        self.pool_gather_eff = gather / peak;
        self.pool_rmw_eff = rmw / peak;
        self.pool_stream_eff = stream / peak;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_aggregate() {
        let c = Calibration::default();
        assert!((c.pool_peak_gbps() - 819.2).abs() < 0.1);
        // The ">600 GB/s" datapoint.
        assert!(c.pool_gather_gbps() > 600.0);
    }

    #[test]
    fn defaults_are_physical() {
        let c = Calibration::default();
        for eff in [
            c.cpu_stream_eff,
            c.cpu_gather_eff,
            c.gpu_stream_eff,
            c.pool_gather_eff,
            c.pool_rmw_eff,
            c.pool_stream_eff,
        ] {
            assert!(eff > 0.0 && eff <= 1.0);
        }
        assert!(c.cpu_idle_w < c.cpu_active_w);
        assert!(c.gpu_idle_w < c.gpu_active_w);
        assert!(c.pool_idle_w < c.pool_active_w);
    }

    #[test]
    fn measured_calibration_is_close_to_documented_defaults() {
        let measured = Calibration::default().from_dram_sim(2048);
        let default = Calibration::default();
        assert!(
            (measured.pool_gather_eff - default.pool_gather_eff).abs() < 0.1,
            "measured gather eff {} drifted from documented {}",
            measured.pool_gather_eff,
            default.pool_gather_eff
        );
        assert!(
            (measured.pool_rmw_eff - default.pool_rmw_eff).abs() < 0.12,
            "measured rmw eff {} vs {}",
            measured.pool_rmw_eff,
            default.pool_rmw_eff
        );
        assert!(
            (measured.pool_stream_eff - default.pool_stream_eff).abs() < 0.12,
            "measured stream eff {} vs {}",
            measured.pool_stream_eff,
            default.pool_stream_eff
        );
    }

    #[test]
    fn link_sweep_builder() {
        let c = Calibration::default().with_pool_link_gbps(150.0);
        assert_eq!(c.pool_link_gbps, 150.0);
    }
}

//! Programmatic experiment reports: build the EXPERIMENTS.md-style
//! summary (every headline number of the evaluation) as a data structure
//! and render it to markdown — so the document can be regenerated
//! mechanically instead of hand-transcribed from figure output.

use crate::calibration::Calibration;
use crate::design::DesignPoint;
use crate::energy::energy_joules;
use crate::metrics::geometric_mean;
use crate::workload::{RmModel, SystemWorkload};

/// One headline result row: a named quantity with its measured value and
/// the paper's reference band.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// What is being measured.
    pub name: String,
    /// Measured value, formatted.
    pub measured: String,
    /// The paper's reported value/band.
    pub paper: String,
    /// Whether the measured value satisfies the reproduction contract.
    pub in_band: bool,
}

/// The full headline summary of the evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// Individual headline rows.
    pub headlines: Vec<Headline>,
}

impl EvaluationReport {
    /// Runs the default evaluation grid (RM1-4 x b1024-8192, dim 64,
    /// Criteo-like locality) and summarizes the headline claims.
    pub fn build(cal: &Calibration) -> Self {
        let mut grid = Vec::new();
        for model in RmModel::all() {
            for batch in [1024usize, 2048, 4096, 8192] {
                grid.push(SystemWorkload::build(model.clone(), batch, 64, 42));
            }
        }

        let mut sw_speedups = Vec::new();
        let mut hw_speedups = Vec::new();
        let mut emb_fracs = Vec::new();
        let mut util_baseline = Vec::new();
        let mut util_casting = Vec::new();
        let mut energy_ratios = Vec::new();
        for wl in &grid {
            let base = DesignPoint::BaselineCpuGpu.evaluate(wl, cal);
            let ours_cpu = DesignPoint::OursCpu.evaluate(wl, cal);
            let ours_nmp = DesignPoint::OursNmp.evaluate(wl, cal);
            let base_nmp = DesignPoint::BaselineNmp.evaluate(wl, cal);
            sw_speedups.push(base.total_ns / ours_cpu.total_ns);
            hw_speedups.push(base.total_ns / ours_nmp.total_ns);
            if wl.model.embedding_intensive {
                emb_fracs.push(base.embedding_backward_fraction());
            }
            util_baseline.push(base_nmp.nmp_utilization());
            util_casting.push(ours_nmp.nmp_utilization());
            energy_ratios
                .push(energy_joules(&ours_nmp, cal).total() / energy_joules(&base, cal).total());
        }

        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

        let sw_lo = min(&sw_speedups);
        let sw_hi = max(&sw_speedups);
        let hw_lo = min(&hw_speedups);
        let hw_hi = max(&hw_speedups);
        let hw_geo = geometric_mean(&hw_speedups);
        let emb_lo = min(&emb_fracs);
        let emb_hi = max(&emb_fracs);
        let util_ratio = mean(&util_casting) / mean(&util_baseline).max(1e-9);

        let headlines = vec![
            Headline {
                name: "Ours(CPU) end-to-end speedup".into(),
                measured: format!("{sw_lo:.2}x-{sw_hi:.2}x"),
                paper: "1.2-1.6x (default batches), up to 2.8x".into(),
                in_band: sw_lo >= 1.0 && sw_hi <= 3.0,
            },
            Headline {
                name: "Ours(NMP) end-to-end speedup".into(),
                measured: format!("{hw_lo:.2}x-{hw_hi:.2}x, geomean {hw_geo:.2}x"),
                paper: "2.0-15x, average 6.9x".into(),
                in_band: hw_lo >= 1.8 && hw_hi <= 25.0 && (4.0..=14.0).contains(&hw_geo),
            },
            Headline {
                name: "embedding-backward share (CPU-centric, RM1/2)".into(),
                measured: format!("{:.0}%-{:.0}%", 100.0 * emb_lo, 100.0 * emb_hi),
                paper: "62-92%".into(),
                in_band: emb_lo >= 0.5 && emb_hi <= 0.97,
            },
            Headline {
                name: "NMP utilization uplift (T.Casting / TensorDIMM)".into(),
                measured: format!("{util_ratio:.0}x"),
                paper: "~13x (92%+44% vs ~7%)".into(),
                in_band: util_ratio > 5.0,
            },
            Headline {
                name: "Ours(NMP) energy vs Baseline(CPU)".into(),
                measured: format!("{:.2}x-{:.2}x", min(&energy_ratios), max(&energy_ratios)),
                paper: "large savings, tracking throughput".into(),
                in_band: max(&energy_ratios) < 1.0,
            },
        ];
        Self { headlines }
    }

    /// Whether every headline satisfies its band.
    pub fn all_in_band(&self) -> bool {
        self.headlines.iter().all(|h| h.in_band)
    }

    /// Renders the report as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out =
            String::from("| quantity | measured | paper | in band |\n|---|---|---|---|\n");
        for h in &self.headlines {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                h.name,
                h.measured,
                h.paper,
                if h.in_band { "yes" } else { "NO" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_builds_and_is_in_band() {
        let report = EvaluationReport::build(&Calibration::default());
        assert_eq!(report.headlines.len(), 5);
        for h in &report.headlines {
            assert!(
                h.in_band,
                "{}: measured {} vs {}",
                h.name, h.measured, h.paper
            );
        }
        assert!(report.all_in_band());
    }

    #[test]
    fn markdown_rendering() {
        let report = EvaluationReport::build(&Calibration::default());
        let md = report.to_markdown();
        assert!(md.starts_with("| quantity |"));
        assert!(md.contains("Ours(NMP) end-to-end speedup"));
        assert!(md.lines().count() >= 7);
    }

    #[test]
    fn out_of_band_is_reported_not_hidden() {
        // Sabotage the calibration (pool slower than the CPU) and check
        // the report honestly flags the breakage.
        let broken = Calibration {
            pool_channel_gbps: 0.1,
            ..Calibration::default()
        };
        let report = EvaluationReport::build(&broken);
        assert!(!report.all_in_band());
        assert!(report.to_markdown().contains("NO"));
    }
}

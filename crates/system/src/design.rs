//! The four evaluated system design points (Section VI) and their
//! iteration-level cost models.
//!
//! Each design point lowers a [`SystemWorkload`] into a list of
//! device-tagged [`PhaseCost`]s using the analytic traffic model and the
//! calibrated device bandwidths, then applies the paper's scheduling
//! semantics: all phases are serial on the critical path *except* the
//! casting stage, which the Section IV-B runtime overlaps with forward
//! propagation (only its exposed remainder, if any, delays the
//! iteration).

use crate::calibration::Calibration;
use crate::phase::{Device, PhaseCost, PhaseKind};
use crate::workload::SystemWorkload;
use tcast_embedding::traffic;

/// The evaluated system configurations of Fig. 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// CPU trains everything (Section II-C "CPU-only").
    CpuOnly,
    /// The CPU-centric baseline: CPU trains embeddings, GPU trains the
    /// DNN ("Baseline(CPU)" in Fig. 12).
    BaselineCpuGpu,
    /// TensorDIMM-style NMP for gather-reduce and scatter, but gradient
    /// expand-coalesce still on the CPU ("Baseline(NMP)").
    BaselineNmp,
    /// Software-only Tensor Casting on the CPU-GPU system ("Ours(CPU)").
    OursCpu,
    /// The memory-centric system: Tensor Casting + NMP pool ("Ours(NMP)").
    OursNmp,
}

impl DesignPoint {
    /// All design points in the paper's presentation order.
    pub const ALL: [DesignPoint; 5] = [
        DesignPoint::CpuOnly,
        DesignPoint::BaselineCpuGpu,
        DesignPoint::BaselineNmp,
        DesignPoint::OursCpu,
        DesignPoint::OursNmp,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DesignPoint::CpuOnly => "CPU-only",
            DesignPoint::BaselineCpuGpu => "Baseline(CPU)",
            DesignPoint::BaselineNmp => "Baseline(NMP)",
            DesignPoint::OursCpu => "Ours(CPU)",
            DesignPoint::OursNmp => "Ours(NMP)",
        }
    }

    /// Which devices exist in this system (for idle-energy accounting).
    pub fn devices(&self) -> &'static [Device] {
        match self {
            DesignPoint::CpuOnly => &[Device::Cpu],
            DesignPoint::BaselineCpuGpu | DesignPoint::OursCpu => &[Device::Cpu, Device::Gpu],
            DesignPoint::BaselineNmp => &[Device::Cpu, Device::Gpu, Device::Nmp],
            DesignPoint::OursNmp => &[Device::Gpu, Device::Nmp],
        }
    }

    /// Whether this design point uses the Tensor Casting backward path.
    pub fn uses_casting(&self) -> bool {
        matches!(self, DesignPoint::OursCpu | DesignPoint::OursNmp)
    }

    /// Costs one training iteration of `wl` under this design point.
    pub fn evaluate(&self, wl: &SystemWorkload, cal: &Calibration) -> Evaluation {
        let c = Cost { cal };
        let t = wl.model.tables as f64;
        let s = wl.table_shape();

        // Aggregate (all-tables) byte counts from the analytic model.
        let by = |tr: traffic::Traffic| tr.total() as f64 * t;
        let gather_b = by(traffic::gather_reduce(&s));
        let expand_b = by(traffic::gradient_expand(&s));
        let accu_b = by(traffic::coalesce_accumulate(&s));
        let scatter_b = by(traffic::scatter(&s, 0));
        let casted_b = by(traffic::casted_gather_reduce(&s));
        let sort_elems = wl.total_lookups() as f64;
        let mlp_f = wl.mlp_forward_flops();
        let pooled_b = wl.pooled_bytes() as f64;
        let grad_b = pooled_b; // gradients of the pooled activations
        let dense_b = (wl.batch * wl.model.dense_features * 4) as f64;
        let index_b = wl.index_bytes() as f64;
        // Casted arrays: (casted_src, casted_dst) per lookup + unique ids.
        let casted_index_b = index_b + (wl.unique_per_table * wl.model.tables * 4) as f64;
        // Gradient-table staging write inside the pool.
        let staging_b = pooled_b;

        let mut phases = Vec::new();
        let mut push = |kind: PhaseKind, device: Device, ns: f64| {
            phases.push(PhaseCost::new(kind, device, ns));
        };

        let mut casting_total_ns = 0.0;
        let mut casting_window_ns = 0.0;

        match self {
            DesignPoint::CpuOnly => {
                push(PhaseKind::FwdGather, Device::Cpu, c.cpu_gather(gather_b));
                push(PhaseKind::FwdDnn, Device::Cpu, c.cpu_gemm(mlp_f));
                push(PhaseKind::BwdDnn, Device::Cpu, c.cpu_gemm(2.0 * mlp_f));
                push(PhaseKind::BwdExpand, Device::Cpu, c.cpu_stream(expand_b));
                push(
                    PhaseKind::BwdCoalesceSort,
                    Device::Cpu,
                    c.cpu_sort(sort_elems),
                );
                push(
                    PhaseKind::BwdCoalesceAccu,
                    Device::Cpu,
                    c.cpu_gather(accu_b),
                );
                push(PhaseKind::BwdScatter, Device::Cpu, c.cpu_gather(scatter_b));
            }
            DesignPoint::BaselineCpuGpu => {
                push(PhaseKind::FwdGather, Device::Cpu, c.cpu_gather(gather_b));
                push(PhaseKind::FwdDnn, Device::Link, c.pcie(pooled_b + dense_b));
                push(PhaseKind::FwdDnn, Device::Gpu, c.gpu_gemm(mlp_f));
                push(PhaseKind::BwdDnn, Device::Gpu, c.gpu_gemm(2.0 * mlp_f));
                push(PhaseKind::BwdDnn, Device::Link, c.pcie(grad_b));
                push(PhaseKind::BwdExpand, Device::Cpu, c.cpu_stream(expand_b));
                push(
                    PhaseKind::BwdCoalesceSort,
                    Device::Cpu,
                    c.cpu_sort(sort_elems),
                );
                push(
                    PhaseKind::BwdCoalesceAccu,
                    Device::Cpu,
                    c.cpu_gather(accu_b),
                );
                push(PhaseKind::BwdScatter, Device::Cpu, c.cpu_gather(scatter_b));
            }
            DesignPoint::BaselineNmp => {
                let gr = traffic::gather_reduce(&s);
                push(
                    PhaseKind::FwdGather,
                    Device::Nmp,
                    c.pool_gather(gr.read_bytes as f64 * t)
                        + c.pool_stream(gr.write_bytes as f64 * t),
                );
                push(PhaseKind::FwdGather, Device::Link, c.link(pooled_b));
                push(PhaseKind::FwdDnn, Device::Link, c.pcie(dense_b));
                push(PhaseKind::FwdDnn, Device::Gpu, c.gpu_gemm(mlp_f));
                push(PhaseKind::BwdDnn, Device::Gpu, c.gpu_gemm(2.0 * mlp_f));
                push(PhaseKind::BwdDnn, Device::Link, c.pcie(grad_b));
                push(PhaseKind::BwdExpand, Device::Cpu, c.cpu_stream(expand_b));
                push(
                    PhaseKind::BwdCoalesceSort,
                    Device::Cpu,
                    c.cpu_sort(sort_elems),
                );
                push(
                    PhaseKind::BwdCoalesceAccu,
                    Device::Cpu,
                    c.cpu_gather(accu_b),
                );
                // Coalesced gradients travel to the pool for the scatter.
                let coalesced_b =
                    (wl.unique_per_table * wl.model.tables) as f64 * (wl.dim as f64 * 4.0 + 4.0);
                push(PhaseKind::BwdScatter, Device::Link, c.link(coalesced_b));
                // Gradients stream from the link; table rows RMW in-pool.
                let rmw_b = (2 * wl.unique_per_table * wl.model.tables * wl.dim * 4) as f64;
                push(PhaseKind::BwdScatter, Device::Nmp, c.pool_rmw(rmw_b));
            }
            DesignPoint::OursCpu => {
                push(PhaseKind::FwdGather, Device::Cpu, c.cpu_gather(gather_b));
                push(PhaseKind::FwdDnn, Device::Link, c.pcie(pooled_b + dense_b));
                push(PhaseKind::FwdDnn, Device::Gpu, c.gpu_gemm(mlp_f));
                push(PhaseKind::BwdDnn, Device::Gpu, c.gpu_gemm(2.0 * mlp_f));
                push(PhaseKind::BwdDnn, Device::Link, c.pcie(grad_b));
                // Casting on the otherwise-idle GPU, overlapped with the
                // phases above.
                casting_total_ns = c.pcie(index_b)
                    + c.gpu_sort(sort_elems)
                    + c.gpu_stream(4.0 * index_b)
                    + c.pcie(casted_index_b);
                push(PhaseKind::Casting, Device::Gpu, casting_total_ns);
                push(
                    PhaseKind::BwdCastedGather,
                    Device::Cpu,
                    c.cpu_gather(casted_b),
                );
                push(PhaseKind::BwdScatter, Device::Cpu, c.cpu_gather(scatter_b));
            }
            DesignPoint::OursNmp => {
                let gr = traffic::gather_reduce(&s);
                push(
                    PhaseKind::FwdGather,
                    Device::Nmp,
                    c.pool_gather(gr.read_bytes as f64 * t)
                        + c.pool_stream(gr.write_bytes as f64 * t),
                );
                push(PhaseKind::FwdGather, Device::Link, c.link(pooled_b));
                push(PhaseKind::FwdDnn, Device::Link, c.pcie(dense_b));
                push(PhaseKind::FwdDnn, Device::Gpu, c.gpu_gemm(mlp_f));
                push(PhaseKind::BwdDnn, Device::Gpu, c.gpu_gemm(2.0 * mlp_f));
                casting_total_ns =
                    c.pcie(index_b) + c.gpu_sort(sort_elems) + c.gpu_stream(4.0 * index_b);
                push(PhaseKind::Casting, Device::Gpu, casting_total_ns);
                // Gradient table + casted arrays move to the pool, the
                // casted gather-reduce runs on the NMP cores.
                push(
                    PhaseKind::BwdCastedGather,
                    Device::Link,
                    c.link(grad_b + casted_index_b),
                );
                let cg = traffic::casted_gather_reduce(&s);
                push(
                    PhaseKind::BwdCastedGather,
                    Device::Nmp,
                    c.pool_stream(staging_b)
                        + c.pool_gather(cg.read_bytes as f64 * t)
                        + c.pool_stream(cg.write_bytes as f64 * t),
                );
                // Coalesced gradients already staged in pool DRAM.
                let scatter_pool_b = by(traffic::scatter(&s, 0));
                push(
                    PhaseKind::BwdScatter,
                    Device::Nmp,
                    c.pool_rmw(scatter_pool_b),
                );
            }
        }

        // Casting overlaps with everything from iteration start until the
        // DNN gradients are ready (FwdGather + FwdDnn + BwdDnn).
        if self.uses_casting() {
            casting_window_ns = phases
                .iter()
                .filter(|p| {
                    matches!(
                        p.kind,
                        PhaseKind::FwdGather | PhaseKind::FwdDnn | PhaseKind::BwdDnn
                    )
                })
                .map(|p| p.ns)
                .sum();
        }
        let casting_hidden_ns = casting_total_ns.min(casting_window_ns);
        let serial: f64 = phases.iter().map(|p| p.ns).sum();
        let total_ns = serial - casting_hidden_ns;
        let nmp_busy_ns = phases
            .iter()
            .filter(|p| p.device == Device::Nmp)
            .map(|p| p.ns)
            .sum();

        Evaluation {
            design: *self,
            phases,
            total_ns,
            casting_total_ns,
            casting_hidden_ns,
            nmp_busy_ns,
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The costed result of one iteration under one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Which design point produced this.
    pub design: DesignPoint,
    /// All phases with their devices and durations (casting at its full
    /// duration, even though it is overlapped).
    pub phases: Vec<PhaseCost>,
    /// End-to-end iteration time with the casting overlap applied, ns.
    pub total_ns: f64,
    /// Full duration of the casting stage, ns (0 when unused).
    pub casting_total_ns: f64,
    /// Portion of casting hidden under forward propagation, ns.
    pub casting_hidden_ns: f64,
    /// Time the NMP pool was actively executing, ns.
    pub nmp_busy_ns: f64,
}

impl Evaluation {
    /// Sum of a phase kind's durations across devices.
    pub fn phase_ns(&self, kind: PhaseKind) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.ns)
            .sum()
    }

    /// Sum of all phase durations, ignoring overlap (the "accumulated
    /// latency" stacked in Fig. 12).
    pub fn serial_sum_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Total busy time of one device.
    pub fn device_busy_ns(&self, device: Device) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.device == device)
            .map(|p| p.ns)
            .sum()
    }

    /// Fraction of (serial) iteration time spent in embedding-layer
    /// backpropagation — the paper's "62-92%" characterization metric.
    pub fn embedding_backward_fraction(&self) -> f64 {
        let emb: f64 = self
            .phases
            .iter()
            .filter(|p| p.kind.is_embedding_backward())
            .map(|p| p.ns)
            .sum();
        emb / self.serial_sum_ns()
    }

    /// Fraction of iteration time spent in the MLPs.
    pub fn mlp_fraction(&self) -> f64 {
        (self.phase_ns(PhaseKind::FwdDnn) + self.phase_ns(PhaseKind::BwdDnn)) / self.serial_sum_ns()
    }

    /// NMP utilization: fraction of wall-clock time the pool is active
    /// (Fig. 15).
    pub fn nmp_utilization(&self) -> f64 {
        if self.total_ns == 0.0 {
            return 0.0;
        }
        (self.nmp_busy_ns / self.total_ns).min(1.0)
    }

    /// Latency of the backward bottleneck operator this design point
    /// uses: expand+sort+accu for baselines, exposed casting + casted
    /// gather-reduce for Tensor Casting (the Fig. 12 right-axis metric).
    pub fn backward_operator_ns(&self) -> f64 {
        if self.design.uses_casting() {
            (self.casting_total_ns - self.casting_hidden_ns)
                + self.phase_ns(PhaseKind::BwdCastedGather)
        } else {
            self.phase_ns(PhaseKind::BwdExpand)
                + self.phase_ns(PhaseKind::BwdCoalesceSort)
                + self.phase_ns(PhaseKind::BwdCoalesceAccu)
        }
    }
}

/// Unit-cost helpers (GB/s == bytes/ns; GFLOP/s == flops/ns x 1e-?).
struct Cost<'a> {
    cal: &'a Calibration,
}

impl Cost<'_> {
    fn cpu_stream(&self, bytes: f64) -> f64 {
        bytes / (self.cal.cpu_mem_gbps * self.cal.cpu_stream_eff)
    }

    fn cpu_gather(&self, bytes: f64) -> f64 {
        bytes / (self.cal.cpu_mem_gbps * self.cal.cpu_gather_eff)
    }

    fn cpu_gemm(&self, flops: f64) -> f64 {
        flops / self.cal.cpu_gflops
    }

    fn cpu_sort(&self, elems: f64) -> f64 {
        elems * 1e3 / self.cal.cpu_sort_melems
    }

    fn gpu_gemm(&self, flops: f64) -> f64 {
        flops / self.cal.gpu_gflops
    }

    fn gpu_sort(&self, elems: f64) -> f64 {
        elems * 1e3 / self.cal.gpu_sort_melems
    }

    fn gpu_stream(&self, bytes: f64) -> f64 {
        bytes / (self.cal.gpu_mem_gbps * self.cal.gpu_stream_eff)
    }

    fn pcie(&self, bytes: f64) -> f64 {
        bytes / self.cal.pcie_gbps
    }

    fn link(&self, bytes: f64) -> f64 {
        bytes / self.cal.pool_link_gbps
    }

    fn pool_gather(&self, bytes: f64) -> f64 {
        bytes / (self.cal.pool_peak_gbps() * self.cal.pool_gather_eff)
    }

    fn pool_rmw(&self, bytes: f64) -> f64 {
        bytes / (self.cal.pool_peak_gbps() * self.cal.pool_rmw_eff)
    }

    fn pool_stream(&self, bytes: f64) -> f64 {
        bytes / (self.cal.pool_peak_gbps() * self.cal.pool_stream_eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RmModel;

    fn cal() -> Calibration {
        Calibration::default()
    }

    fn wl(model: RmModel, batch: usize) -> SystemWorkload {
        SystemWorkload::build(model, batch, 64, 42)
    }

    #[test]
    fn embedding_backward_dominates_cpu_centric_rm1() {
        // Fig. 4: "backpropagation of embedding layers accounts for
        // approximately 62-92% of end-to-end training time."
        for model in [RmModel::rm1(), RmModel::rm2()] {
            let e = DesignPoint::BaselineCpuGpu.evaluate(&wl(model, 2048), &cal());
            let frac = e.embedding_backward_fraction();
            assert!(
                (0.62..=0.95).contains(&frac),
                "{}: embedding backward fraction {frac}",
                e.design
            );
        }
    }

    #[test]
    fn mlp_fraction_small_for_embedding_models_larger_for_mlp_models() {
        // Fig. 4: MLPs are <1% for RM1/2 and ~24% for RM3/4 on CPU-GPU.
        let rm1 = DesignPoint::BaselineCpuGpu.evaluate(&wl(RmModel::rm1(), 2048), &cal());
        assert!(rm1.mlp_fraction() < 0.08, "RM1 MLP {}", rm1.mlp_fraction());
        let rm4 = DesignPoint::BaselineCpuGpu.evaluate(&wl(RmModel::rm4(), 2048), &cal());
        assert!(
            (0.10..=0.50).contains(&rm4.mlp_fraction()),
            "RM4 MLP {}",
            rm4.mlp_fraction()
        );
        assert!(rm4.mlp_fraction() > 3.0 * rm1.mlp_fraction());
    }

    #[test]
    fn cpu_only_is_slower_especially_for_mlp_models() {
        for (model, min_gap) in [(RmModel::rm1(), 1.0), (RmModel::rm4(), 1.5)] {
            let w = wl(model, 2048);
            let cpu = DesignPoint::CpuOnly.evaluate(&w, &cal());
            let gpu = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal());
            assert!(
                cpu.total_ns > min_gap * gpu.total_ns,
                "{}: {} vs {}",
                w.model.name,
                cpu.total_ns,
                gpu.total_ns
            );
        }
    }

    #[test]
    fn ours_cpu_speedup_in_paper_band() {
        // Section VI-B: 1.2-1.6x at default batches, up to 2.8x larger.
        for model in RmModel::all() {
            for batch in [1024, 2048, 4096] {
                let w = wl(model.clone(), batch);
                let base = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal());
                let ours = DesignPoint::OursCpu.evaluate(&w, &cal());
                let s = base.total_ns / ours.total_ns;
                assert!(
                    (1.05..=3.0).contains(&s),
                    "{} b{batch}: Ours(CPU) speedup {s:.2}",
                    w.model.name
                );
            }
        }
    }

    #[test]
    fn ours_nmp_speedup_in_paper_band() {
        // Section VI-B: 2.0-15x (avg 6.9x) vs Baseline(CPU).
        let mut speedups = Vec::new();
        for model in RmModel::all() {
            for batch in [1024, 2048, 4096, 8192] {
                let w = wl(model.clone(), batch);
                let base = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal());
                let ours = DesignPoint::OursNmp.evaluate(&w, &cal());
                let s = base.total_ns / ours.total_ns;
                assert!(
                    (1.8..=25.0).contains(&s),
                    "{} b{batch}: Ours(NMP) speedup {s:.2}",
                    w.model.name
                );
                speedups.push(s);
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            (4.0..=14.0).contains(&avg),
            "average Ours(NMP) speedup {avg:.2} (paper: 6.9)"
        );
    }

    #[test]
    fn ours_cpu_beats_baseline_nmp_on_average() {
        // Section VI-B: "our software-only Tensor Casting performs even
        // better than the baseline TensorDIMM-based NMP accelerator,
        // achieving an average 15% speedup."
        let mut ratios = Vec::new();
        for model in RmModel::all() {
            for batch in [1024, 2048, 4096, 8192] {
                let w = wl(model.clone(), batch);
                let nmp = DesignPoint::BaselineNmp.evaluate(&w, &cal());
                let ours = DesignPoint::OursCpu.evaluate(&w, &cal());
                ratios.push(nmp.total_ns / ours.total_ns);
            }
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            avg > 1.0,
            "Ours(CPU) must beat Baseline(NMP) on average, got {avg:.2}"
        );
    }

    #[test]
    fn design_point_ordering_is_monotone() {
        // Ours(NMP) <= Ours(CPU) <= Baseline(CPU) in time; Baseline(NMP)
        // beats Baseline(CPU).
        for model in RmModel::all() {
            let w = wl(model, 2048);
            let base_cpu = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal()).total_ns;
            let base_nmp = DesignPoint::BaselineNmp.evaluate(&w, &cal()).total_ns;
            let ours_cpu = DesignPoint::OursCpu.evaluate(&w, &cal()).total_ns;
            let ours_nmp = DesignPoint::OursNmp.evaluate(&w, &cal()).total_ns;
            assert!(ours_nmp < ours_cpu);
            assert!(ours_cpu < base_cpu);
            assert!(base_nmp < base_cpu);
        }
    }

    #[test]
    fn casting_fully_hidden_on_cpu_exposed_on_nmp() {
        // Section VI-A: "the performance advantage of NMP is so
        // pronounced that the casting stage can sometimes become a new
        // performance bottleneck under our memory-centric system."
        let w = wl(RmModel::rm1(), 2048);
        let ours_cpu = DesignPoint::OursCpu.evaluate(&w, &cal());
        assert!(
            ours_cpu.casting_hidden_ns >= ours_cpu.casting_total_ns * 0.999,
            "casting should hide fully under the slow CPU forward"
        );
        let ours_nmp = DesignPoint::OursNmp.evaluate(&w, &cal());
        assert!(
            ours_nmp.casting_hidden_ns < ours_nmp.casting_total_ns,
            "casting should be partially exposed under the fast NMP forward"
        );
    }

    #[test]
    fn nmp_utilization_matches_fig15_shape() {
        // Fig. 15: TensorDIMM ~7% average; T.Casting 92% (RM1/2) and 44%
        // (RM3/4) average.
        let w1 = wl(RmModel::rm1(), 2048);
        let baseline = DesignPoint::BaselineNmp.evaluate(&w1, &cal());
        assert!(
            baseline.nmp_utilization() < 0.20,
            "TensorDIMM utilization {}",
            baseline.nmp_utilization()
        );
        let ours1 = DesignPoint::OursNmp.evaluate(&w1, &cal());
        assert!(
            ours1.nmp_utilization() > 0.35,
            "Ours(NMP) RM1 utilization {}",
            ours1.nmp_utilization()
        );
        let w3 = wl(RmModel::rm3(), 2048);
        let ours3 = DesignPoint::OursNmp.evaluate(&w3, &cal());
        assert!(
            ours1.nmp_utilization() > ours3.nmp_utilization(),
            "embedding-intensive models must utilize NMP more: {} vs {}",
            ours1.nmp_utilization(),
            ours3.nmp_utilization()
        );
        assert!(baseline.nmp_utilization() < ours1.nmp_utilization());
    }

    #[test]
    fn backward_operator_speedup_band() {
        // Fig. 12 right axis: 1.1-9.5x for the expand-coalesce operator.
        for model in RmModel::all() {
            for batch in [1024, 4096, 8192] {
                let w = wl(model.clone(), batch);
                let base = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal());
                let ours = DesignPoint::OursCpu.evaluate(&w, &cal());
                let s = base.backward_operator_ns() / ours.backward_operator_ns();
                assert!(
                    (1.0..=12.0).contains(&s),
                    "{} b{batch}: operator speedup {s:.2}",
                    w.model.name
                );
            }
        }
    }

    #[test]
    fn speedup_grows_with_batch_size() {
        // Fig. 16's qualitative trend for the software-only system.
        let s = |batch| {
            let w = wl(RmModel::rm1(), batch);
            DesignPoint::BaselineCpuGpu.evaluate(&w, &cal()).total_ns
                / DesignPoint::OursCpu.evaluate(&w, &cal()).total_ns
        };
        assert!(s(16384) > s(1024));
    }

    #[test]
    fn phase_accessors_are_consistent() {
        let w = wl(RmModel::rm1(), 2048);
        let e = DesignPoint::BaselineCpuGpu.evaluate(&w, &cal());
        let by_kind: f64 = [
            PhaseKind::FwdGather,
            PhaseKind::FwdDnn,
            PhaseKind::BwdDnn,
            PhaseKind::BwdExpand,
            PhaseKind::BwdCoalesceSort,
            PhaseKind::BwdCoalesceAccu,
            PhaseKind::BwdScatter,
        ]
        .iter()
        .map(|&k| e.phase_ns(k))
        .sum();
        assert!((by_kind - e.serial_sum_ns()).abs() < 1e-6);
        // No casting on the baseline.
        assert_eq!(e.casting_total_ns, 0.0);
        assert_eq!(e.total_ns, e.serial_sum_ns());
    }
}

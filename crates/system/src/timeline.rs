//! Execution-timeline construction and ASCII rendering (Fig. 9).

use crate::calibration::Calibration;
use crate::design::DesignPoint;
use crate::phase::{Device, PhaseKind};
use crate::workload::SystemWorkload;

/// One scheduled interval on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Executing device.
    pub device: Device,
    /// Phase this interval belongs to.
    pub kind: PhaseKind,
    /// Start, ns from iteration begin.
    pub start_ns: f64,
    /// End, ns.
    pub end_ns: f64,
}

impl TimelineEvent {
    /// Interval length, ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// Builds the Fig. 9-style schedule of one iteration: critical-path
/// phases run back-to-back in evaluation order; the casting stage starts
/// at time zero on the GPU, in parallel, and backward waits for it if it
/// outlives the forward window.
pub fn build_timeline(
    design: DesignPoint,
    wl: &SystemWorkload,
    cal: &Calibration,
) -> Vec<TimelineEvent> {
    let eval = design.evaluate(wl, cal);
    let mut events = Vec::new();
    let mut clock = 0.0f64;
    let mut casting_end = 0.0f64;
    for p in &eval.phases {
        if p.kind == PhaseKind::Casting {
            // Overlapped: begins when the index arrays are available
            // (iteration start).
            events.push(TimelineEvent {
                device: p.device,
                kind: p.kind,
                start_ns: 0.0,
                end_ns: p.ns,
            });
            casting_end = p.ns;
            continue;
        }
        // Backward embedding phases must wait for casting to finish.
        let mut start = clock;
        if design.uses_casting() && p.kind.is_embedding_backward() {
            start = start.max(casting_end);
        }
        events.push(TimelineEvent {
            device: p.device,
            kind: p.kind,
            start_ns: start,
            end_ns: start + p.ns,
        });
        clock = start + p.ns;
    }
    events
}

/// Renders a proportional ASCII Gantt chart of a timeline, one lane per
/// device (the textual Fig. 9).
pub fn render_timeline(events: &[TimelineEvent], width: usize) -> String {
    let total = events.iter().map(|e| e.end_ns).fold(0.0, f64::max);
    if total == 0.0 || events.is_empty() {
        return String::from("(empty timeline)\n");
    }
    let lanes = [Device::Cpu, Device::Gpu, Device::Nmp, Device::Link];
    let mut out = String::new();
    for lane in lanes {
        let lane_events: Vec<&TimelineEvent> = events.iter().filter(|e| e.device == lane).collect();
        if lane_events.is_empty() {
            continue;
        }
        let mut row = vec![b'.'; width];
        for e in &lane_events {
            let s = ((e.start_ns / total) * width as f64) as usize;
            let t = (((e.end_ns / total) * width as f64).ceil() as usize).min(width);
            let ch = phase_char(e.kind);
            for slot in row.iter_mut().take(t).skip(s.min(width)) {
                *slot = ch;
            }
        }
        out.push_str(&format!(
            "{:>4} |{}|\n",
            lane.name(),
            String::from_utf8(row).expect("ascii")
        ));
    }
    out.push_str(&format!("      total = {:.3} ms\n", total / 1e6));
    out.push_str("      legend: G=gather D=dnn-fwd d=dnn-bwd E=expand S=sort A=accumulate W=scatter C=casting T=casted-gather\n");
    out
}

fn phase_char(kind: PhaseKind) -> u8 {
    match kind {
        PhaseKind::FwdGather => b'G',
        PhaseKind::FwdDnn => b'D',
        PhaseKind::BwdDnn => b'd',
        PhaseKind::BwdExpand => b'E',
        PhaseKind::BwdCoalesceSort => b'S',
        PhaseKind::BwdCoalesceAccu => b'A',
        PhaseKind::BwdScatter => b'W',
        PhaseKind::Casting => b'C',
        PhaseKind::BwdCastedGather => b'T',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RmModel;

    fn wl() -> SystemWorkload {
        SystemWorkload::build(RmModel::rm1(), 2048, 64, 42)
    }

    #[test]
    fn baseline_timeline_is_fully_serial() {
        let events = build_timeline(DesignPoint::BaselineCpuGpu, &wl(), &Calibration::default());
        // Each event starts where the previous ended.
        for w in events.windows(2) {
            assert!((w[1].start_ns - w[0].end_ns).abs() < 1e-6);
        }
    }

    #[test]
    fn casting_starts_at_zero_and_overlaps_forward() {
        let events = build_timeline(DesignPoint::OursCpu, &wl(), &Calibration::default());
        let casting = events
            .iter()
            .find(|e| e.kind == PhaseKind::Casting)
            .expect("casting event");
        assert_eq!(casting.start_ns, 0.0);
        let gather = events
            .iter()
            .find(|e| e.kind == PhaseKind::FwdGather)
            .expect("gather event");
        // Concurrent with forward gather.
        assert!(casting.end_ns > gather.start_ns);
        assert!(gather.start_ns < casting.end_ns);
    }

    #[test]
    fn backward_waits_for_casting() {
        let cal = Calibration::default();
        let events = build_timeline(DesignPoint::OursNmp, &wl(), &cal);
        let casting_end = events
            .iter()
            .find(|e| e.kind == PhaseKind::Casting)
            .unwrap()
            .end_ns;
        let casted = events
            .iter()
            .find(|e| e.kind == PhaseKind::BwdCastedGather)
            .unwrap();
        assert!(casted.start_ns >= casting_end - 1e-6);
    }

    #[test]
    fn timeline_makespan_matches_evaluation_total() {
        let cal = Calibration::default();
        for dp in DesignPoint::ALL {
            let events = build_timeline(dp, &wl(), &cal);
            let makespan = events.iter().map(|e| e.end_ns).fold(0.0, f64::max);
            let eval = dp.evaluate(&wl(), &cal);
            assert!(
                (makespan - eval.total_ns).abs() / eval.total_ns < 1e-6,
                "{dp}: makespan {makespan} vs total {}",
                eval.total_ns
            );
        }
    }

    #[test]
    fn render_produces_lanes_and_legend() {
        let cal = Calibration::default();
        let events = build_timeline(DesignPoint::OursNmp, &wl(), &cal);
        let text = render_timeline(&events, 60);
        assert!(text.contains("GPU"));
        assert!(text.contains("NMP"));
        assert!(text.contains("legend"));
        assert!(text.contains("total ="));
    }

    #[test]
    fn render_empty_is_graceful() {
        assert_eq!(render_timeline(&[], 40), "(empty timeline)\n");
    }
}

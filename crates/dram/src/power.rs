//! DRAM power/energy model following the Micron system-power-calculator
//! methodology the paper uses for its Section VI-C energy numbers.
//!
//! Energy is decomposed the standard way:
//!
//! * **background** power burned every cycle (clocking, DLL, leakage);
//! * **activate/precharge** energy per ACT-PRE pair (row cycling);
//! * **read/write burst** energy per 64 B column access;
//! * **refresh** energy per REF command;
//! * **termination** (ODT) folded into the burst energies.
//!
//! Defaults approximate an 8 Gb DDR4-3200 x8 device scaled to a 64-bit
//! rank; absolute numbers track datasheet IDD values loosely, but the
//! model's purpose is *relative* energy between access patterns (row
//! hits vs misses, streaming vs gather), which is what the evaluation
//! compares.

use crate::config::DramConfig;
use crate::stats::MemoryStats;

/// Per-event energy parameters for one rank, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Background power per rank, watts (burned for the whole busy
    /// window).
    pub background_w: f64,
    /// Energy per ACT/PRE pair, nJ.
    pub act_pre_nj: f64,
    /// Energy per 64 B read burst, nJ (array + I/O + termination).
    pub read_nj: f64,
    /// Energy per 64 B write burst, nJ.
    pub write_nj: f64,
    /// Energy per all-bank refresh, nJ.
    pub refresh_nj: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            background_w: 0.75,
            act_pre_nj: 15.0,
            read_nj: 5.5,
            write_nj: 6.0,
            refresh_nj: 900.0,
        }
    }
}

/// Energy of one simulated window, by component, in millijoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DramEnergy {
    /// Background energy (time-proportional).
    pub background_mj: f64,
    /// Row activate/precharge energy.
    pub act_pre_mj: f64,
    /// Read burst energy.
    pub read_mj: f64,
    /// Write burst energy.
    pub write_mj: f64,
    /// Refresh energy.
    pub refresh_mj: f64,
}

impl DramEnergy {
    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.background_mj + self.act_pre_mj + self.read_mj + self.write_mj + self.refresh_mj
    }

    /// Energy per moved byte, nJ/B (a bandwidth-independent efficiency
    /// metric). Zero when no data moved.
    pub fn nj_per_byte(&self, stats: &MemoryStats) -> f64 {
        let bytes = stats.bytes();
        if bytes == 0 {
            return 0.0;
        }
        self.total_mj() * 1e6 / bytes as f64
    }
}

/// Computes the energy of a simulated window from its statistics.
pub fn dram_energy(stats: &MemoryStats, config: &DramConfig, p: &PowerParams) -> DramEnergy {
    let seconds = stats.last_data_cycle as f64 * config.timing.tck_ps as f64 * 1e-12;
    let ranks = (config.channels * config.ranks_per_channel) as f64;
    DramEnergy {
        background_mj: p.background_w * ranks * seconds * 1e3,
        // Every ACT is eventually paired with a precharge (explicit PRE,
        // auto-precharge, or refresh-forced closure).
        act_pre_mj: stats.activates as f64 * p.act_pre_nj * 1e-6,
        read_mj: stats.reads as f64 * p.read_nj * 1e-6,
        write_mj: stats.writes as f64 * p.write_nj * 1e-6,
        refresh_mj: stats.refreshes as f64 * p.refresh_nj * 1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams;
    use crate::system::MemorySystem;
    use crate::AddressMapping;

    fn run(cfg: DramConfig, trace: Vec<crate::Request>) -> (MemoryStats, DramEnergy) {
        let mut mem = MemorySystem::new(cfg.clone());
        let stats = mem.run_trace(trace);
        let energy = dram_energy(&stats, &cfg, &PowerParams::default());
        (stats, energy)
    }

    #[test]
    fn energy_components_are_positive_for_real_traffic() {
        let cfg = DramConfig::ddr4_3200();
        let (stats, e) = run(cfg, streams::sequential_reads(4096));
        assert!(e.background_mj > 0.0);
        assert!(e.act_pre_mj > 0.0);
        assert!(e.read_mj > 0.0);
        assert_eq!(e.write_mj, 0.0);
        assert!(e.total_mj() > 0.0);
        assert!(e.nj_per_byte(&stats) > 0.0);
    }

    #[test]
    fn random_access_costs_more_energy_per_byte_than_streaming() {
        // Row cycling dominates: random single-burst rows pay one ACT/PRE
        // per 64 B, streaming amortizes one per row.
        let cfg = DramConfig::ddr4_3200();
        let (seq_stats, seq_e) = run(cfg.clone(), streams::sequential_reads(4096));
        let (rnd_stats, rnd_e) = run(
            cfg.clone(),
            streams::random_reads(4096, cfg.total_blocks(), 7),
        );
        let seq = seq_e.nj_per_byte(&seq_stats);
        let rnd = rnd_e.nj_per_byte(&rnd_stats);
        assert!(
            rnd > 1.3 * seq,
            "random ({rnd:.2} nJ/B) should cost well over streaming ({seq:.2} nJ/B)"
        );
    }

    #[test]
    fn gather_of_full_vectors_sits_between_streaming_and_random() {
        let cfg = DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst);
        let rows: Vec<u32> = (0..2048u32)
            .map(|i| i.wrapping_mul(2654435761) % 50_000)
            .collect();
        let (g_stats, g_e) = run(cfg.clone(), streams::gather_reads(&rows, 256, 0));
        let (s_stats, s_e) = run(cfg.clone(), streams::sequential_reads(8192));
        let (r_stats, r_e) = run(
            cfg.clone(),
            streams::random_reads(8192, cfg.total_blocks(), 3),
        );
        let g = g_e.nj_per_byte(&g_stats);
        let s = s_e.nj_per_byte(&s_stats);
        let r = r_e.nj_per_byte(&r_stats);
        assert!(s < g && g < r, "expected {s:.2} < {g:.2} < {r:.2}");
    }

    #[test]
    fn energy_scales_linearly_with_traffic_volume() {
        let cfg = DramConfig::ddr4_3200();
        let (_, small) = run(cfg.clone(), streams::sequential_reads(2048));
        let (_, large) = run(cfg, streams::sequential_reads(8192));
        let ratio = large.total_mj() / small.total_mj();
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_traffic_zero_energy() {
        let cfg = DramConfig::ddr4_3200();
        let e = dram_energy(&MemoryStats::default(), &cfg, &PowerParams::default());
        assert_eq!(e.total_mj(), 0.0);
        assert_eq!(e.nj_per_byte(&MemoryStats::default()), 0.0);
    }
}

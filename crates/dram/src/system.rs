//! The top-level memory system: channels + routing + the trace runner.

use crate::channel::{Channel, Command};
use crate::config::DramConfig;
use crate::request::Request;
use crate::stats::MemoryStats;

/// A multi-channel memory system driven cycle by cycle.
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    channels: Vec<Channel>,
    now: u64,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    pub fn new(config: DramConfig) -> Self {
        let channels = (0..config.channels)
            .map(|_| Channel::new(&config))
            .collect();
        Self {
            config,
            channels,
            now: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Enables/disables command tracing on all channels.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        for ch in &mut self.channels {
            ch.set_trace_enabled(enabled);
        }
    }

    /// Drains and returns the per-channel command traces.
    pub fn take_traces(&mut self) -> Vec<Vec<Command>> {
        self.channels.iter_mut().map(|c| c.take_trace()).collect()
    }

    /// Attempts to enqueue a request; returns `false` when the target
    /// channel's queue is full (caller should tick and retry).
    pub fn enqueue(&mut self, req: Request) -> bool {
        let at = self.config.mapping.decode(req.block, &self.config);
        self.channels[at.channel].enqueue(req, at, self.now)
    }

    /// Advances the whole system by one memory cycle.
    pub fn tick(&mut self) {
        for ch in &mut self.channels {
            ch.tick(self.now);
        }
        self.now += 1;
    }

    /// Whether every channel queue is empty.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(Channel::is_idle)
    }

    /// Runs until all queued requests have issued their data bursts.
    pub fn drain(&mut self) {
        while !self.is_idle() {
            self.tick();
        }
    }

    /// Feeds an entire trace through the system in closed-loop fashion
    /// (next request enters as soon as its channel has queue space) and
    /// returns the merged statistics.
    ///
    /// This measures *best-case effective bandwidth* for the access
    /// pattern — the quantity the paper's methodology extracts from
    /// Ramulator.
    pub fn run_trace(&mut self, trace: impl IntoIterator<Item = Request>) -> MemoryStats {
        let mut it = trace.into_iter();
        let mut pending: Option<Request> = it.next();
        while let Some(req) = pending {
            if self.enqueue(req) {
                pending = it.next();
            } else {
                self.tick();
            }
        }
        self.drain();
        self.stats()
    }

    /// Merged statistics across channels.
    pub fn stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for ch in &self.channels {
            total.merge(&ch.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::config::RowPolicy;
    use crate::streams;

    #[test]
    fn sequential_reads_approach_peak_bandwidth() {
        let cfg = DramConfig::ddr4_3200();
        let mut mem = MemorySystem::new(cfg.clone());
        let stats = mem.run_trace(streams::sequential_reads(8192));
        let eff = stats.effective_bandwidth_gbps(&cfg);
        let peak = cfg.peak_bandwidth_gbps();
        assert!(
            eff > 0.85 * peak,
            "sequential stream reached only {eff:.1} of {peak:.1} GB/s"
        );
        assert!(stats.row_hit_rate() > 0.9);
    }

    #[test]
    fn random_reads_lose_significant_bandwidth() {
        let cfg = DramConfig::ddr4_3200();
        let mut mem = MemorySystem::new(cfg.clone());
        let blocks = cfg.total_blocks();
        let stats = mem.run_trace(streams::random_reads(8192, blocks, 7));
        let eff = stats.effective_bandwidth_gbps(&cfg);
        let peak = cfg.peak_bandwidth_gbps();
        assert!(
            eff < 0.7 * peak,
            "random stream should be well below peak, got {eff:.1}/{peak:.1}"
        );
        assert!(eff > 0.15 * peak, "but not absurdly low: {eff:.1}");
    }

    #[test]
    fn multi_channel_scales_bandwidth() {
        let one = DramConfig::ddr4_3200();
        let four = DramConfig::ddr4_3200().with_channels(4);
        let e1 = MemorySystem::new(one.clone())
            .run_trace(streams::sequential_reads(8192))
            .effective_bandwidth_gbps(&one);
        let e4 = MemorySystem::new(four.clone())
            .run_trace(streams::sequential_reads(8192))
            .effective_bandwidth_gbps(&four);
        assert!(
            e4 > 3.0 * e1,
            "4-channel ({e4:.1}) should be ~4x 1-channel ({e1:.1})"
        );
    }

    #[test]
    fn closed_page_beats_open_page_on_random_single_access() {
        // Random single-burst-per-row traffic: open policy pays a PRE on
        // every conflict; closed policy precharges for free.
        let blocks = DramConfig::ddr4_3200().total_blocks();
        let open = DramConfig::ddr4_3200().with_mapping(AddressMapping::BankInterleaved);
        let closed = open.clone().with_row_policy(RowPolicy::Closed);
        let eo = MemorySystem::new(open.clone())
            .run_trace(streams::random_reads(4096, blocks, 3))
            .effective_bandwidth_gbps(&open);
        let ec = MemorySystem::new(closed.clone())
            .run_trace(streams::random_reads(4096, blocks, 3))
            .effective_bandwidth_gbps(&closed);
        assert!(
            ec >= eo * 0.98,
            "closed-page ({ec:.1}) should not lose to open-page ({eo:.1}) on random traffic"
        );
    }

    #[test]
    fn writes_are_serviced() {
        let cfg = DramConfig::ddr4_3200();
        let mut mem = MemorySystem::new(cfg);
        let reqs: Vec<Request> = (0..256).map(Request::write).collect();
        let stats = mem.run_trace(reqs);
        assert_eq!(stats.writes, 256);
        assert_eq!(stats.reads, 0);
    }

    #[test]
    fn mixed_read_write_stream_completes() {
        let cfg = DramConfig::ddr4_3200();
        let mut mem = MemorySystem::new(cfg);
        let reqs: Vec<Request> = (0..512)
            .map(|i| {
                if i % 3 == 0 {
                    Request::write(i * 17)
                } else {
                    Request::read(i * 17)
                }
            })
            .collect();
        let stats = mem.run_trace(reqs);
        assert_eq!(stats.reads + stats.writes, 512);
        assert!(stats.last_data_cycle > 0);
    }

    #[test]
    fn drain_on_empty_system_is_noop() {
        let mut mem = MemorySystem::new(DramConfig::ddr4_3200());
        mem.drain();
        assert_eq!(mem.now(), 0);
    }
}

//! One memory channel: request queue, FR-FCFS scheduler, command issue.
//!
//! The scheduler implements first-ready, first-come-first-served:
//! each cycle it issues (at most) one command on the channel's command
//! bus, preferring the oldest request whose column access can fire *now*
//! (a row hit), then the oldest request that needs an ACT, then the
//! oldest that needs a PRE of a conflicting row.

use std::collections::VecDeque;

use crate::address::DecodedAddr;
use crate::bank::RankState;
use crate::config::{DramConfig, RowPolicy};
use crate::request::{AccessType, Request};
use crate::stats::MemoryStats;
use crate::timing::TimingParams;

/// DRAM command classes (recorded in the optional trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Row activation.
    Activate,
    /// Row precharge.
    Precharge,
    /// Column read (64 B burst).
    Read,
    /// Column write (64 B burst).
    Write,
    /// All-bank refresh.
    Refresh,
}

/// One issued DRAM command, as recorded by the command trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Issue cycle.
    pub cycle: u64,
    /// Command class.
    pub kind: CommandKind,
    /// Target rank.
    pub rank: usize,
    /// Target bank group.
    pub bankgroup: usize,
    /// Target bank within the group.
    pub bank: usize,
    /// Target row (0 for refresh).
    pub row: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    at: DecodedAddr,
    arrival: u64,
    needed_act: bool,
    needed_pre: bool,
}

/// One channel's scheduler and timing state.
#[derive(Debug)]
pub(crate) struct Channel {
    timing: TimingParams,
    row_policy: RowPolicy,
    queue_depth: usize,
    banks_per_group: usize,
    ranks: Vec<RankState>,
    queue: VecDeque<Pending>,
    /// Earliest cycle the shared data bus is free.
    next_data_free: u64,
    pub stats: MemoryStats,
    trace: Option<Vec<Command>>,
}

impl Channel {
    pub fn new(config: &DramConfig) -> Self {
        Self {
            timing: config.timing,
            row_policy: config.row_policy,
            queue_depth: config.queue_depth,
            banks_per_group: config.banks_per_group,
            ranks: (0..config.ranks_per_channel)
                .map(|_| {
                    RankState::new(
                        config.bankgroups,
                        config.banks_per_group,
                        config.timing.trefi,
                    )
                })
                .collect(),
            queue: VecDeque::new(),
            next_data_free: 0,
            stats: MemoryStats::default(),
            trace: None,
        }
    }

    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace = if enabled { Some(Vec::new()) } else { None };
    }

    pub fn take_trace(&mut self) -> Vec<Command> {
        match self.trace.take() {
            Some(t) => {
                self.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        }
    }

    pub fn has_space(&self) -> bool {
        self.queue.len() < self.queue_depth
    }

    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn enqueue(&mut self, req: Request, at: DecodedAddr, now: u64) -> bool {
        if !self.has_space() {
            return false;
        }
        self.queue.push_back(Pending {
            req,
            at,
            arrival: now,
            needed_act: false,
            needed_pre: false,
        });
        true
    }

    fn record(&mut self, cmd: Command) {
        if let Some(t) = self.trace.as_mut() {
            t.push(cmd);
        }
    }

    /// Advances one cycle: issues at most one command.
    pub fn tick(&mut self, now: u64) {
        if self.refresh_if_due(now) {
            return;
        }
        if self.try_issue_column(now) {
            return;
        }
        if self.try_issue_activate(now) {
            return;
        }
        self.try_issue_precharge(now);
    }

    /// All-bank refresh per rank when tREFI elapses.
    fn refresh_if_due(&mut self, now: u64) -> bool {
        let t = self.timing;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            if now >= rank.next_refresh {
                for bank in &mut rank.banks {
                    bank.open_row = None;
                    bank.next_act = bank.next_act.max(now + t.trfc);
                }
                rank.next_refresh += t.trefi;
                self.stats.refreshes += 1;
                self.record(Command {
                    cycle: now,
                    kind: CommandKind::Refresh,
                    rank: r,
                    bankgroup: 0,
                    bank: 0,
                    row: 0,
                });
                return true;
            }
        }
        false
    }

    fn bank_index(&self, at: &DecodedAddr) -> usize {
        at.bankgroup * self.banks_per_group + at.bank
    }

    /// Oldest request whose row is open and whose column command is
    /// timing-clean fires now.
    fn try_issue_column(&mut self, now: u64) -> bool {
        let t = self.timing;
        let burst = t.burst_cycles();
        let mut chosen: Option<usize> = None;
        for (qi, p) in self.queue.iter().enumerate() {
            let rank = &self.ranks[p.at.rank];
            let bank = &rank.banks[self.bank_index(&p.at)];
            if bank.open_row != Some(p.at.row) || now < bank.next_col {
                continue;
            }
            let (next_any, next_group) = match p.req.access {
                AccessType::Read => (rank.next_rd_any, rank.next_rd_group[p.at.bankgroup]),
                AccessType::Write => (rank.next_wr_any, rank.next_wr_group[p.at.bankgroup]),
            };
            if now < next_any || now < next_group {
                continue;
            }
            let burst_start = now
                + match p.req.access {
                    AccessType::Read => t.cl,
                    AccessType::Write => t.cwl,
                };
            if burst_start < self.next_data_free {
                continue;
            }
            chosen = Some(qi);
            break;
        }
        let Some(qi) = chosen else { return false };
        let p = self.queue.remove(qi).expect("index in range");
        let bi = self.bank_index(&p.at);
        let g = p.at.bankgroup;
        let rank = &mut self.ranks[p.at.rank];

        let (kind, burst_start, completion) = match p.req.access {
            AccessType::Read => {
                rank.next_rd_any = rank.next_rd_any.max(now + t.tccd_s);
                rank.next_rd_group[g] = rank.next_rd_group[g].max(now + t.tccd_l);
                // Read-to-write bus turnaround.
                let rtw = now + t.cl + burst + 2 - t.cwl.min(t.cl + burst + 1);
                rank.next_wr_any = rank.next_wr_any.max(rtw);
                rank.banks[bi].next_pre = rank.banks[bi].next_pre.max(now + t.trtp);
                (CommandKind::Read, now + t.cl, now + t.cl + burst)
            }
            AccessType::Write => {
                rank.next_wr_any = rank.next_wr_any.max(now + t.tccd_s);
                rank.next_wr_group[g] = rank.next_wr_group[g].max(now + t.tccd_l);
                // Write-to-read turnaround (group-aware).
                let base = now + t.cwl + burst;
                rank.next_rd_any = rank.next_rd_any.max(base + t.twtr_s);
                rank.next_rd_group[g] = rank.next_rd_group[g].max(base + t.twtr_l);
                rank.banks[bi].next_pre = rank.banks[bi].next_pre.max(base + t.twr);
                (CommandKind::Write, now + t.cwl, now + t.cwl + burst)
            }
        };
        self.next_data_free = burst_start + burst;

        if self.row_policy == RowPolicy::Closed {
            // Auto-precharge: the bank closes itself after the access.
            let bank = &mut self.ranks[p.at.rank].banks[bi];
            bank.open_row = None;
            let pre_at = match p.req.access {
                AccessType::Read => now + t.trtp,
                AccessType::Write => now + t.cwl + burst + t.twr,
            };
            bank.next_act = bank.next_act.max(pre_at + t.trp);
        }

        // Stats: hit classification + latency.
        match (p.needed_act, p.needed_pre) {
            (false, _) => self.stats.row_hits += 1,
            (true, false) => self.stats.row_misses += 1,
            (true, true) => self.stats.row_conflicts += 1,
        }
        match p.req.access {
            AccessType::Read => {
                self.stats.reads += 1;
                self.stats.total_read_latency += completion - p.arrival;
            }
            AccessType::Write => self.stats.writes += 1,
        }
        self.stats.last_data_cycle = self.stats.last_data_cycle.max(completion);
        self.record(Command {
            cycle: now,
            kind,
            rank: p.at.rank,
            bankgroup: g,
            bank: p.at.bank,
            row: p.at.row,
        });
        true
    }

    /// Oldest request whose bank is closed and whose ACT is timing-clean.
    fn try_issue_activate(&mut self, now: u64) -> bool {
        let t = self.timing;
        let mut chosen: Option<usize> = None;
        // A bank already being activated for an earlier queued request
        // must not be re-activated for a younger one.
        let mut blocked_banks = std::collections::HashSet::new();
        for (qi, p) in self.queue.iter().enumerate() {
            let key = (p.at.rank, p.at.bankgroup, p.at.bank);
            let rank = &self.ranks[p.at.rank];
            let bank = &rank.banks[self.bank_index(&p.at)];
            if bank.open_row.is_some() {
                continue;
            }
            if blocked_banks.contains(&key) {
                continue;
            }
            blocked_banks.insert(key);
            let ready = now >= bank.next_act
                && now >= rank.next_act_any
                && now >= rank.next_act_group[p.at.bankgroup]
                && now >= rank.faw_ready_at(t.tfaw);
            if ready {
                chosen = Some(qi);
                break;
            }
        }
        let Some(qi) = chosen else { return false };
        let (at_rank, g, bank_in_group, row) = {
            let p = &mut self.queue[qi];
            p.needed_act = true;
            (p.at.rank, p.at.bankgroup, p.at.bank, p.at.row)
        };
        let bi = g * self.banks_per_group + bank_in_group;
        let rank = &mut self.ranks[at_rank];
        let bank = &mut rank.banks[bi];
        bank.open_row = Some(row);
        bank.next_col = now + t.trcd;
        bank.next_pre = bank.next_pre.max(now + t.tras);
        bank.next_act = now + t.trc;
        rank.next_act_any = rank.next_act_any.max(now + t.trrd_s);
        rank.next_act_group[g] = rank.next_act_group[g].max(now + t.trrd_l);
        rank.record_act(now);
        self.stats.activates += 1;
        self.record(Command {
            cycle: now,
            kind: CommandKind::Activate,
            rank: at_rank,
            bankgroup: g,
            bank: bank_in_group,
            row,
        });
        true
    }

    /// Oldest request whose bank holds a *different* row: precharge it.
    fn try_issue_precharge(&mut self, now: u64) -> bool {
        let t = self.timing;
        let mut chosen: Option<usize> = None;
        let mut seen_banks = std::collections::HashSet::new();
        for (qi, p) in self.queue.iter().enumerate() {
            let key = (p.at.rank, p.at.bankgroup, p.at.bank);
            let rank = &self.ranks[p.at.rank];
            let bank = &rank.banks[self.bank_index(&p.at)];
            let conflicting = matches!(bank.open_row, Some(r) if r != p.at.row);
            if !conflicting {
                // An older request may still want this open row; do not let
                // a younger conflicting request close it.
                seen_banks.insert(key);
                continue;
            }
            if seen_banks.contains(&key) {
                continue;
            }
            seen_banks.insert(key);
            if now >= bank.next_pre {
                chosen = Some(qi);
                break;
            }
        }
        let Some(qi) = chosen else { return false };
        let (at_rank, g, bank_in_group) = {
            let p = &mut self.queue[qi];
            p.needed_pre = true;
            (p.at.rank, p.at.bankgroup, p.at.bank)
        };
        let bi = g * self.banks_per_group + bank_in_group;
        let bank = &mut self.ranks[at_rank].banks[bi];
        bank.open_row = None;
        bank.next_act = bank.next_act.max(now + t.trp);
        self.stats.precharges += 1;
        self.record(Command {
            cycle: now,
            kind: CommandKind::Precharge,
            rank: at_rank,
            bankgroup: g,
            bank: bank_in_group,
            row: 0,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;

    fn mini_config() -> DramConfig {
        DramConfig::ddr4_3200()
    }

    fn decode(cfg: &DramConfig, block: u64) -> DecodedAddr {
        cfg.mapping.decode(block, cfg)
    }

    #[test]
    fn single_read_completes_with_act_plus_cas_latency() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        let at = decode(&cfg, 0);
        assert!(ch.enqueue(Request::read(0), at, 0));
        let mut now = 0;
        while ch.stats.reads == 0 && now < 10_000 {
            ch.tick(now);
            now += 1;
        }
        assert_eq!(ch.stats.reads, 1);
        assert_eq!(ch.stats.activates, 1);
        assert_eq!(ch.stats.row_misses, 1);
        let t = cfg.timing;
        // ACT@0, RD@tRCD, data done at tRCD + CL + burst.
        assert_eq!(
            ch.stats.total_read_latency,
            t.trcd + t.cl + t.burst_cycles()
        );
    }

    #[test]
    fn same_row_requests_hit() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        // Consecutive columns of one bank: one channel x group sweep apart.
        assert_eq!(cfg.mapping, AddressMapping::RowBankColumn);
        let stride = (cfg.channels * cfg.bankgroups) as u64;
        let a = decode(&cfg, 0);
        let b = decode(&cfg, stride);
        assert_eq!((a.bank, a.bankgroup, a.row), (b.bank, b.bankgroup, b.row));
        ch.enqueue(Request::read(0), a, 0);
        ch.enqueue(Request::read(stride), b, 0);
        let mut now = 0;
        while ch.stats.reads < 2 && now < 10_000 {
            ch.tick(now);
            now += 1;
        }
        assert_eq!(ch.stats.row_hits, 1);
        assert_eq!(ch.stats.row_misses, 1);
    }

    #[test]
    fn row_conflict_triggers_precharge() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        // Same bank, different rows: one full row-walk apart under
        // RowBankColumn (channels x groups x columns x ranks x banks).
        let blocks_per_row_same_bank = cfg.channels as u64
            * cfg.bankgroups as u64
            * cfg.columns
            * cfg.ranks_per_channel as u64
            * cfg.banks_per_group as u64;
        let a = decode(&cfg, 0);
        let b = decode(&cfg, blocks_per_row_same_bank);
        assert_eq!((a.bank, a.bankgroup), (b.bank, b.bankgroup));
        assert_ne!(a.row, b.row);
        ch.enqueue(Request::read(0), a, 0);
        ch.enqueue(Request::read(blocks_per_row_same_bank), b, 0);
        let mut now = 0;
        while ch.stats.reads < 2 && now < 50_000 {
            ch.tick(now);
            now += 1;
        }
        assert_eq!(ch.stats.reads, 2);
        assert_eq!(ch.stats.precharges, 1);
        assert_eq!(ch.stats.row_conflicts, 1);
    }

    #[test]
    fn queue_depth_enforced() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        for i in 0..cfg.queue_depth as u64 {
            assert!(ch.enqueue(Request::read(i), decode(&cfg, i), 0));
        }
        assert!(!ch.enqueue(Request::read(999), decode(&cfg, 999), 0));
    }

    #[test]
    fn refresh_fires_at_trefi() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        let trefi = cfg.timing.trefi;
        for now in 0..=trefi {
            ch.tick(now);
        }
        assert_eq!(ch.stats.refreshes, 1);
    }

    #[test]
    fn trace_records_commands_in_cycle_order() {
        let cfg = mini_config();
        let mut ch = Channel::new(&cfg);
        ch.set_trace_enabled(true);
        for i in 0..8u64 {
            ch.enqueue(Request::read(i * 1000), decode(&cfg, i * 1000), 0);
        }
        for now in 0..20_000 {
            ch.tick(now);
        }
        let trace = ch.take_trace();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }
}

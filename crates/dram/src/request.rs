//! Memory requests: 64 B block reads and writes.

/// Whether a request loads or stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// 64 B load.
    Read,
    /// 64 B store.
    Write,
}

/// One 64 B memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// 64 B block id (byte address >> 6).
    pub block: u64,
    /// Load or store.
    pub access: AccessType,
}

impl Request {
    /// A read of block `block`.
    pub fn read(block: u64) -> Self {
        Self {
            block,
            access: AccessType::Read,
        }
    }

    /// A write of block `block`.
    pub fn write(block: u64) -> Self {
        Self {
            block,
            access: AccessType::Write,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        self.access == AccessType::Read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Request::read(5).is_read());
        assert!(!Request::write(5).is_read());
        assert_eq!(Request::read(5).block, 5);
    }
}

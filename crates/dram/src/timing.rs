//! DDR4 timing parameter sets.
//!
//! All values are in memory-clock cycles (one cycle = two data beats on
//! the DDR bus). Presets follow JEDEC DDR4 speed-bin tables; minor
//! vendor-to-vendor variation does not affect any qualitative result.

/// DDR4 timing parameters, in memory-clock cycles unless noted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Clock period in picoseconds (e.g. 625 ps for DDR4-3200).
    pub tck_ps: u64,
    /// CAS (read) latency.
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// ACT to internal read/write delay.
    pub trcd: u64,
    /// Precharge period.
    pub trp: u64,
    /// ACT to PRE minimum.
    pub tras: u64,
    /// ACT to ACT, same bank.
    pub trc: u64,
    /// CAS to CAS, different bank group.
    pub tccd_s: u64,
    /// CAS to CAS, same bank group.
    pub tccd_l: u64,
    /// ACT to ACT, different bank group (same rank).
    pub trrd_s: u64,
    /// ACT to ACT, same bank group (same rank).
    pub trrd_l: u64,
    /// Four-activate window.
    pub tfaw: u64,
    /// Write recovery time (end of write burst to PRE).
    pub twr: u64,
    /// Write-to-read turnaround, different bank group.
    pub twtr_s: u64,
    /// Write-to-read turnaround, same bank group.
    pub twtr_l: u64,
    /// Read to PRE.
    pub trtp: u64,
    /// Average refresh interval.
    pub trefi: u64,
    /// Refresh cycle time (8 Gb device).
    pub trfc: u64,
    /// Burst length in beats (8 for DDR4).
    pub burst_length: u64,
}

impl TimingParams {
    /// DDR4-3200AA (22-22-22): 25.6 GB/s per 64-bit channel — the paper's
    /// per-rank bandwidth in Table I.
    pub fn ddr4_3200() -> Self {
        Self {
            tck_ps: 625,
            cl: 22,
            cwl: 16,
            trcd: 22,
            trp: 22,
            tras: 52,
            trc: 74,
            tccd_s: 4,
            tccd_l: 8,
            trrd_s: 4,
            trrd_l: 8,
            tfaw: 34,
            twr: 24,
            twtr_s: 4,
            twtr_l: 12,
            trtp: 12,
            trefi: 12_480,
            trfc: 560,
            burst_length: 8,
        }
    }

    /// DDR4-2400R (16-16-16): 19.2 GB/s per channel — a capacity-optimized
    /// LRDIMM operating point.
    pub fn ddr4_2400() -> Self {
        Self {
            tck_ps: 833,
            cl: 16,
            cwl: 12,
            trcd: 16,
            trp: 16,
            tras: 39,
            trc: 55,
            tccd_s: 4,
            tccd_l: 6,
            trrd_s: 4,
            trrd_l: 6,
            tfaw: 26,
            twr: 18,
            twtr_s: 3,
            twtr_l: 9,
            trtp: 9,
            trefi: 9_360,
            trfc: 420,
            burst_length: 8,
        }
    }

    /// Data-bus cycles occupied by one burst (`burst_length / 2`, DDR).
    pub fn burst_cycles(&self) -> u64 {
        self.burst_length / 2
    }

    /// Peak bytes per memory cycle for a 64-bit channel (2 beats x 8 B).
    pub fn peak_bytes_per_cycle(&self) -> u64 {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_3200_sanity() {
        let t = TimingParams::ddr4_3200();
        // JEDEC identities: tRC = tRAS + tRP (approximately, by spec).
        assert_eq!(t.trc, t.tras + t.trp);
        assert!(t.tccd_l > t.tccd_s);
        assert!(t.trrd_l >= t.trrd_s);
        assert!(t.tfaw >= 4 * t.trrd_s);
        assert_eq!(t.burst_cycles(), 4);
    }

    #[test]
    fn ddr4_2400_sanity() {
        let t = TimingParams::ddr4_2400();
        assert_eq!(t.trc, t.tras + t.trp);
        assert!(t.cl >= t.cwl);
    }

    #[test]
    fn faster_bin_has_shorter_clock() {
        assert!(TimingParams::ddr4_3200().tck_ps < TimingParams::ddr4_2400().tck_ps);
    }

    #[test]
    fn refresh_overhead_is_single_digit_percent() {
        for t in [TimingParams::ddr4_3200(), TimingParams::ddr4_2400()] {
            let overhead = t.trfc as f64 / t.trefi as f64;
            assert!(overhead > 0.02 && overhead < 0.08, "overhead {overhead}");
        }
    }
}

//! Memory-system configuration: geometry, mapping, scheduling policy.

use crate::address::AddressMapping;
use crate::timing::TimingParams;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave rows open after access (bet on spatial locality).
    #[default]
    Open,
    /// Auto-precharge after every column access (bet against reuse —
    /// what gather/scatter-dominated NMP designs prefer).
    Closed,
}

/// Full configuration of a simulated memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Independent channels (each with its own command/data bus).
    pub channels: usize,
    /// Ranks per channel (share the channel buses).
    pub ranks_per_channel: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bankgroups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: u64,
    /// 64 B column bursts per row (columns x device width / 64 B).
    pub columns: u64,
    /// Timing parameter set.
    pub timing: TimingParams,
    /// Physical-to-DRAM address mapping.
    pub mapping: AddressMapping,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
    /// Per-channel scheduler queue depth.
    pub queue_depth: usize,
}

impl DramConfig {
    /// Single-channel DDR4-3200 (25.6 GB/s peak): one *rank* of the
    /// paper's disaggregated pool, the unit each NMP core owns.
    pub fn ddr4_3200() -> Self {
        Self {
            channels: 1,
            ranks_per_channel: 1,
            bankgroups: 4,
            banks_per_group: 4,
            rows: 65_536,
            columns: 128,
            timing: TimingParams::ddr4_3200(),
            mapping: AddressMapping::RowBankColumn,
            row_policy: RowPolicy::Open,
            queue_depth: 32,
        }
    }

    /// Host-CPU memory system: 4 channels of DDR4-2400 with 2 ranks each
    /// (~76.8 GB/s peak — the "80 GB/s DDR4" CPU of the paper's Fig. 3).
    pub fn cpu_ddr4() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 2,
            bankgroups: 4,
            banks_per_group: 4,
            rows: 65_536,
            columns: 128,
            timing: TimingParams::ddr4_2400(),
            mapping: AddressMapping::RowBankColumn,
            row_policy: RowPolicy::Open,
            queue_depth: 32,
        }
    }

    /// Returns a copy with a different channel count.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Returns a copy with a different row policy.
    pub fn with_row_policy(mut self, policy: RowPolicy) -> Self {
        self.row_policy = policy;
        self
    }

    /// Returns a copy with a different address mapping.
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bankgroups * self.banks_per_group
    }

    /// Total 64 B blocks addressable across the whole system.
    pub fn total_blocks(&self) -> u64 {
        self.channels as u64
            * self.ranks_per_channel as u64
            * self.banks_per_rank() as u64
            * self.rows
            * self.columns
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_blocks() * 64
    }

    /// Aggregate peak bandwidth in GB/s (all channels).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle = self.timing.peak_bytes_per_cycle() * self.channels as u64;
        bytes_per_cycle as f64 / (self.timing.tck_ps as f64 * 1e-12) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_3200_peak_is_25_6() {
        let c = DramConfig::ddr4_3200();
        assert!((c.peak_bandwidth_gbps() - 25.6).abs() < 0.1);
    }

    #[test]
    fn cpu_config_peak_near_80() {
        let c = DramConfig::cpu_ddr4();
        let peak = c.peak_bandwidth_gbps();
        assert!((70.0..=85.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn channel_scaling_is_linear() {
        let one = DramConfig::ddr4_3200();
        let four = one.clone().with_channels(4);
        assert!((four.peak_bandwidth_gbps() - 4.0 * one.peak_bandwidth_gbps()).abs() < 1e-9);
    }

    #[test]
    fn capacity_accounting() {
        let c = DramConfig::ddr4_3200();
        // 1 ch x 1 rank x 16 banks x 65536 rows x 128 blocks x 64 B = 8 GiB.
        assert_eq!(c.capacity_bytes(), 8 * (1 << 30));
    }

    #[test]
    fn builder_methods() {
        let c = DramConfig::ddr4_3200()
            .with_row_policy(RowPolicy::Closed)
            .with_mapping(AddressMapping::BankInterleaved);
        assert_eq!(c.row_policy, RowPolicy::Closed);
        assert_eq!(c.mapping, AddressMapping::BankInterleaved);
    }
}

//! Command-trace verification: checks that a recorded command stream
//! obeys the DDR4 timing protocol.
//!
//! The scheduler in [`crate::MemorySystem`] *should* never emit an
//! illegal command sequence; this module is the independent referee that
//! proves it, command by command, from the trace alone. The workspace
//! property tests feed it traces from randomized request streams.

use crate::channel::{Command, CommandKind};
use crate::timing::TimingParams;
use std::collections::VecDeque;

/// A protocol violation found in a command trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending command within the trace.
    pub at: usize,
    /// Human-readable rule description.
    pub rule: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "command #{}: {}", self.at, self.rule)
    }
}

#[derive(Debug, Clone, Default)]
struct BankCheck {
    open_row: Option<u64>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_rd: Option<u64>,
    last_wr: Option<u64>,
}

/// Checks a single channel's command trace against `t`, returning every
/// violation found (empty = protocol-clean).
///
/// Rules enforced:
/// * one command per cycle (strictly increasing cycles per channel);
/// * ACT only to a closed bank; RD/WR only to the open row; PRE only to
///   an open bank (under the open-row policy the simulator records);
/// * tRC / tRP / tRCD / tRAS / tRTP per bank;
/// * tRRD_S/tRRD_L between ACTs within a rank;
/// * at most 4 ACTs per rank inside any tFAW window;
/// * tCCD_S/tCCD_L between column commands within a rank;
/// * refresh closes every bank for tRFC.
///
/// The checker assumes the *open*-page policy (the trace recorder's
/// default); traces from closed-page runs should skip row-state rules via
/// [`verify_trace_timing_only`].
pub fn verify_trace(trace: &[Command], t: &TimingParams) -> Vec<Violation> {
    verify(trace, t, true)
}

/// Like [`verify_trace`] but checks only global timing rules (tRRD, tFAW,
/// tCCD, command-bus occupancy), not per-bank row state — usable for any
/// row policy.
pub fn verify_trace_timing_only(trace: &[Command], t: &TimingParams) -> Vec<Violation> {
    verify(trace, t, false)
}

fn verify(trace: &[Command], t: &TimingParams, check_rows: bool) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut banks: std::collections::HashMap<(usize, usize, usize), BankCheck> =
        std::collections::HashMap::new();
    // Per rank: ACT history for tFAW/tRRD, column history for tCCD.
    let mut rank_acts: std::collections::HashMap<usize, VecDeque<(u64, usize)>> =
        std::collections::HashMap::new();
    let mut rank_cols: std::collections::HashMap<usize, (u64, usize)> =
        std::collections::HashMap::new();
    let mut rank_refresh_until: std::collections::HashMap<usize, u64> =
        std::collections::HashMap::new();
    let mut last_cycle: Option<u64> = None;

    for (i, cmd) in trace.iter().enumerate() {
        let mut fail = |rule: String| {
            violations.push(Violation { at: i, rule });
        };
        // Command bus: one command per cycle.
        if let Some(prev) = last_cycle {
            if cmd.cycle <= prev {
                fail(format!(
                    "command bus conflict: cycle {} not after {}",
                    cmd.cycle, prev
                ));
            }
        }
        last_cycle = Some(cmd.cycle);

        let key = (cmd.rank, cmd.bankgroup, cmd.bank);
        match cmd.kind {
            CommandKind::Activate => {
                let acts = rank_acts.entry(cmd.rank).or_default();
                // tFAW: at most 4 ACTs in any window.
                if acts.len() >= 4 {
                    let oldest = acts[acts.len() - 4].0;
                    if cmd.cycle < oldest + t.tfaw {
                        fail(format!(
                            "tFAW violated: 5th ACT at {} within {} of ACT at {oldest}",
                            cmd.cycle, t.tfaw
                        ));
                    }
                }
                // tRRD vs the previous ACT in this rank.
                if let Some(&(prev_cycle, prev_group)) = acts.back() {
                    let min = if prev_group == cmd.bankgroup {
                        t.trrd_l
                    } else {
                        t.trrd_s
                    };
                    if cmd.cycle < prev_cycle + min {
                        fail(format!(
                            "tRRD violated: ACT at {} within {min} of ACT at {prev_cycle}",
                            cmd.cycle
                        ));
                    }
                }
                acts.push_back((cmd.cycle, cmd.bankgroup));
                if acts.len() > 8 {
                    acts.pop_front();
                }

                if let Some(&until) = rank_refresh_until.get(&cmd.rank) {
                    if cmd.cycle < until {
                        fail(format!(
                            "ACT at {} during refresh blackout (until {until})",
                            cmd.cycle
                        ));
                    }
                }

                let bank = banks.entry(key).or_default();
                if check_rows && bank.open_row.is_some() {
                    fail("ACT to an already-open bank".to_string());
                }
                if let Some(last_act) = bank.last_act {
                    if cmd.cycle < last_act + t.trc {
                        fail(format!(
                            "tRC violated: ACT at {} within {} of ACT at {last_act}",
                            cmd.cycle, t.trc
                        ));
                    }
                }
                if let Some(last_pre) = bank.last_pre {
                    if cmd.cycle < last_pre + t.trp {
                        fail(format!(
                            "tRP violated: ACT at {} within {} of PRE at {last_pre}",
                            cmd.cycle, t.trp
                        ));
                    }
                }
                bank.open_row = Some(cmd.row);
                bank.last_act = Some(cmd.cycle);
            }
            CommandKind::Read | CommandKind::Write => {
                let bank = banks.entry(key).or_default();
                if check_rows {
                    match bank.open_row {
                        None => fail("column command to a closed bank".to_string()),
                        Some(row) if cmd.kind == CommandKind::Read && row != cmd.row => {
                            fail(format!("READ to row {} while row {row} is open", cmd.row));
                        }
                        _ => {}
                    }
                }
                if let Some(last_act) = bank.last_act {
                    if cmd.cycle < last_act + t.trcd {
                        fail(format!(
                            "tRCD violated: column at {} within {} of ACT at {last_act}",
                            cmd.cycle, t.trcd
                        ));
                    }
                }
                // tCCD vs the previous column command in this rank.
                if let Some(&(prev_cycle, prev_group)) = rank_cols.get(&cmd.rank) {
                    let min = if prev_group == cmd.bankgroup {
                        t.tccd_l
                    } else {
                        t.tccd_s
                    };
                    if cmd.cycle < prev_cycle + min {
                        fail(format!(
                            "tCCD violated: column at {} within {min} of column at {prev_cycle}",
                            cmd.cycle
                        ));
                    }
                }
                rank_cols.insert(cmd.rank, (cmd.cycle, cmd.bankgroup));
                match cmd.kind {
                    CommandKind::Read => banks.entry(key).or_default().last_rd = Some(cmd.cycle),
                    CommandKind::Write => banks.entry(key).or_default().last_wr = Some(cmd.cycle),
                    _ => unreachable!(),
                }
            }
            CommandKind::Precharge => {
                let bank = banks.entry(key).or_default();
                if check_rows && bank.open_row.is_none() {
                    fail("PRE to a closed bank".to_string());
                }
                if let Some(last_act) = bank.last_act {
                    if cmd.cycle < last_act + t.tras {
                        fail(format!(
                            "tRAS violated: PRE at {} within {} of ACT at {last_act}",
                            cmd.cycle, t.tras
                        ));
                    }
                }
                if let Some(last_rd) = bank.last_rd {
                    if cmd.cycle < last_rd + t.trtp {
                        fail(format!(
                            "tRTP violated: PRE at {} within {} of READ at {last_rd}",
                            cmd.cycle, t.trtp
                        ));
                    }
                }
                if let Some(last_wr) = bank.last_wr {
                    let min = last_wr + t.cwl + t.burst_cycles() + t.twr;
                    if cmd.cycle < min {
                        fail(format!(
                            "write recovery violated: PRE at {} before {min}",
                            cmd.cycle
                        ));
                    }
                }
                bank.open_row = None;
                bank.last_pre = Some(cmd.cycle);
            }
            CommandKind::Refresh => {
                // Close every bank in the rank; blackout for tRFC.
                for ((r, _, _), bank) in banks.iter_mut() {
                    if *r == cmd.rank {
                        bank.open_row = None;
                    }
                }
                rank_refresh_until.insert(cmd.rank, cmd.cycle + t.trfc);
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr4_3200()
    }

    fn act(cycle: u64, bankgroup: usize, bank: usize, row: u64) -> Command {
        Command {
            cycle,
            kind: CommandKind::Activate,
            rank: 0,
            bankgroup,
            bank,
            row,
        }
    }

    fn rd(cycle: u64, bankgroup: usize, bank: usize, row: u64) -> Command {
        Command {
            cycle,
            kind: CommandKind::Read,
            rank: 0,
            bankgroup,
            bank,
            row,
        }
    }

    #[test]
    fn legal_act_then_read_is_clean() {
        let p = t();
        let trace = vec![act(0, 0, 0, 5), rd(p.trcd, 0, 0, 5)];
        assert!(verify_trace(&trace, &p).is_empty());
    }

    #[test]
    fn early_read_violates_trcd() {
        let p = t();
        let trace = vec![act(0, 0, 0, 5), rd(p.trcd - 1, 0, 0, 5)];
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("tRCD")), "{v:?}");
    }

    #[test]
    fn read_to_closed_bank_flagged() {
        let p = t();
        let trace = vec![rd(10, 0, 0, 5)];
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("closed bank")));
        // Timing-only mode skips row-state checks.
        assert!(verify_trace_timing_only(&trace, &p).is_empty());
    }

    #[test]
    fn five_acts_in_faw_window_flagged() {
        let p = t();
        // 5 ACTs to distinct banks, spaced by tRRD_S but within tFAW.
        let trace: Vec<Command> = (0..5)
            .map(|i| act(i * p.trrd_s, (i % 4) as usize, (i / 4) as usize, 1))
            .collect();
        // tFAW=34 > 4*tRRD_S=16, so the 5th ACT at cycle 16 violates.
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("tFAW")), "{v:?}");
    }

    #[test]
    fn trrd_l_within_group_flagged() {
        let p = t();
        let trace = vec![act(0, 0, 0, 1), act(p.trrd_s, 0, 1, 1)];
        // Same bank group: needs tRRD_L (8) not tRRD_S (4).
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("tRRD")), "{v:?}");
    }

    #[test]
    fn tccd_l_within_group_flagged() {
        let p = t();
        let trace = vec![
            act(0, 0, 0, 1),
            act(p.trrd_l, 1, 0, 1),
            rd(100, 0, 0, 1),
            rd(100 + p.tccd_s, 1, 0, 1), // different group: OK at tCCD_S
            rd(100 + p.tccd_s + p.tccd_s, 1, 0, 1), // same group: needs tCCD_L
        ];
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("tCCD")), "{v:?}");
    }

    #[test]
    fn command_bus_double_booking_flagged() {
        let p = t();
        let trace = vec![act(5, 0, 0, 1), act(5, 1, 0, 1)];
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("command bus")));
    }

    #[test]
    fn premature_precharge_flagged() {
        let p = t();
        let trace = vec![
            act(0, 0, 0, 1),
            Command {
                cycle: p.tras - 1,
                kind: CommandKind::Precharge,
                rank: 0,
                bankgroup: 0,
                bank: 0,
                row: 0,
            },
        ];
        let v = verify_trace(&trace, &p);
        assert!(v.iter().any(|v| v.rule.contains("tRAS")), "{v:?}");
    }

    #[test]
    fn empty_trace_is_clean() {
        assert!(verify_trace(&[], &t()).is_empty());
    }
}

//! Canonical address-stream generators for bandwidth characterization.
//!
//! These produce the access patterns the paper's methodology cares about:
//! sequential streaming (upper bound), uniform-random 64 B accesses
//! (lower bound), and *embedding-gather* streams — one burst of
//! `row_bytes/64` consecutive blocks per looked-up row, rows scattered —
//! which is the pattern the NMP cores actually service.

use crate::request::Request;

/// `count` back-to-back sequential 64 B reads starting at block 0.
pub fn sequential_reads(count: u64) -> Vec<Request> {
    (0..count).map(Request::read).collect()
}

/// `count` sequential 64 B writes starting at block 0.
pub fn sequential_writes(count: u64) -> Vec<Request> {
    (0..count).map(Request::write).collect()
}

/// `count` uniform-random 64 B reads over `[0, range)` blocks, seeded.
pub fn random_reads(count: u64, range: u64, seed: u64) -> Vec<Request> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            Request::read(r % range.max(1))
        })
        .collect()
}

/// An embedding-gather read stream: for every looked-up row id, read the
/// `row_bytes / 64` consecutive blocks that hold that embedding vector.
///
/// `row_ids` come from an index array's `src` column; `base_block` is the
/// table's base address (in blocks). Rows narrower than 64 B still cost a
/// full block (the DRAM minimum access granularity the paper leans on:
/// "the minimum access granularity per each rank is 64 bytes").
pub fn gather_reads(row_ids: &[u32], row_bytes: u64, base_block: u64) -> Vec<Request> {
    let blocks_per_row = row_bytes.div_ceil(64).max(1);
    let mut out = Vec::with_capacity(row_ids.len() * blocks_per_row as usize);
    for &r in row_ids {
        let first = base_block + r as u64 * blocks_per_row;
        for b in 0..blocks_per_row {
            out.push(Request::read(first + b));
        }
    }
    out
}

/// The scatter dual of [`gather_reads`]: write every block of every
/// updated row.
pub fn scatter_writes(row_ids: &[u32], row_bytes: u64, base_block: u64) -> Vec<Request> {
    let blocks_per_row = row_bytes.div_ceil(64).max(1);
    let mut out = Vec::with_capacity(row_ids.len() * blocks_per_row as usize);
    for &r in row_ids {
        let first = base_block + r as u64 * blocks_per_row;
        for b in 0..blocks_per_row {
            out.push(Request::write(first + b));
        }
    }
    out
}

/// A read-modify-write stream per row: the scatter-with-optimizer pattern
/// (read current row, write updated row).
pub fn update_rmw(row_ids: &[u32], row_bytes: u64, base_block: u64) -> Vec<Request> {
    let blocks_per_row = row_bytes.div_ceil(64).max(1);
    let mut out = Vec::with_capacity(row_ids.len() * 2 * blocks_per_row as usize);
    for &r in row_ids {
        let first = base_block + r as u64 * blocks_per_row;
        for b in 0..blocks_per_row {
            out.push(Request::read(first + b));
        }
        for b in 0..blocks_per_row {
            out.push(Request::write(first + b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_dense_and_ordered() {
        let s = sequential_reads(4);
        assert_eq!(s.len(), 4);
        assert!(s
            .iter()
            .enumerate()
            .all(|(i, r)| r.block == i as u64 && r.is_read()));
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let a = random_reads(100, 1000, 5);
        let b = random_reads(100, 1000, 5);
        let c = random_reads(100, 1000, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|r| r.block < 1000));
    }

    #[test]
    fn gather_expands_rows_into_blocks() {
        // dim-64 f32 rows = 256 B = 4 blocks each.
        let s = gather_reads(&[0, 2], 256, 100);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].block, 100);
        assert_eq!(s[3].block, 103);
        assert_eq!(s[4].block, 108); // row 2 starts at 100 + 2*4
        assert!(s.iter().all(Request::is_read));
    }

    #[test]
    fn narrow_rows_round_up_to_one_block() {
        // dim-8 f32 rows = 32 B: still one 64 B block (min granularity).
        let s = gather_reads(&[0, 1], 32, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].block, 1);
    }

    #[test]
    fn scatter_mirrors_gather() {
        let g = gather_reads(&[3, 7], 256, 0);
        let s = scatter_writes(&[3, 7], 256, 0);
        assert_eq!(g.len(), s.len());
        for (a, b) in g.iter().zip(s.iter()) {
            assert_eq!(a.block, b.block);
            assert!(a.is_read());
            assert!(!b.is_read());
        }
    }

    #[test]
    fn rmw_reads_then_writes_each_row() {
        let s = update_rmw(&[1], 128, 0); // 2 blocks per row
        assert_eq!(s.len(), 4);
        assert!(s[0].is_read() && s[1].is_read());
        assert!(!s[2].is_read() && !s[3].is_read());
        assert_eq!(s[0].block, s[2].block);
    }
}

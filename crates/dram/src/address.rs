//! Physical-address to DRAM-coordinate mapping.
//!
//! Addresses enter the simulator as 64 B *block ids* (byte address >> 6).
//! The mapping decides which bits select channel / rank / bank / row /
//! column — a first-order determinant of achievable bandwidth, so two
//! canonical layouts are provided (and ablated in the benches).

use crate::config::DramConfig;

/// Block-id bit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// `row : bank : rank : column : bankgroup : channel` (low bits right).
    ///
    /// Consecutive blocks stripe across channels, then across *bank
    /// groups* (so back-to-back bursts pace at tCCD_S, not tCCD_L), then
    /// walk a full row's columns: the streaming-optimized layout real
    /// DDR4 controllers use.
    #[default]
    RowBankColumn,
    /// `row : column : rank : bank : channel` (low bits right).
    ///
    /// Consecutive blocks stripe across channels then *banks*: maximizes
    /// bank-level parallelism for isolated 64 B accesses.
    BankInterleaved,
    /// `row : rank : bank : bankgroup : column : channel` (low bits right).
    ///
    /// Consecutive blocks walk the columns of one DRAM row, so a
    /// multi-block embedding vector lands entirely in one row (one ACT
    /// per vector); different vectors scatter across bank groups and
    /// banks, which FR-FCFS interleaves at tCCD_S. This is the
    /// gather-optimized layout the NMP DIMMs use.
    ColumnFirst,
}

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bankgroup: usize,
    /// Bank within the group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// 64 B column burst within the row.
    pub column: u64,
}

impl AddressMapping {
    /// Decodes a 64 B block id under this mapping for `config`'s geometry.
    ///
    /// Ids beyond the configured capacity wrap (the simulator is a timing
    /// model, not a memory protection unit).
    pub fn decode(&self, block: u64, config: &DramConfig) -> DecodedAddr {
        let channels = config.channels as u64;
        let ranks = config.ranks_per_channel as u64;
        let groups = config.bankgroups as u64;
        let banks = config.banks_per_group as u64;
        let columns = config.columns;
        let rows = config.rows;

        let mut x = block;
        let mut take = |n: u64| {
            let v = x % n;
            x /= n;
            v
        };

        match self {
            AddressMapping::RowBankColumn => {
                let channel = take(channels);
                let bankgroup = take(groups);
                let column = take(columns);
                let rank = take(ranks);
                let bank = take(banks);
                let row = take(rows);
                DecodedAddr {
                    channel: channel as usize,
                    rank: rank as usize,
                    bankgroup: bankgroup as usize,
                    bank: bank as usize,
                    row,
                    column,
                }
            }
            AddressMapping::BankInterleaved => {
                let channel = take(channels);
                let bank = take(banks);
                let bankgroup = take(groups);
                let rank = take(ranks);
                let column = take(columns);
                let row = take(rows);
                DecodedAddr {
                    channel: channel as usize,
                    rank: rank as usize,
                    bankgroup: bankgroup as usize,
                    bank: bank as usize,
                    row,
                    column,
                }
            }
            AddressMapping::ColumnFirst => {
                let channel = take(channels);
                let column = take(columns);
                let bankgroup = take(groups);
                let bank = take(banks);
                let rank = take(ranks);
                let row = take(rows);
                DecodedAddr {
                    channel: channel as usize,
                    rank: rank as usize,
                    bankgroup: bankgroup as usize,
                    bank: bank as usize,
                    row,
                    column,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_3200().with_channels(2)
    }

    #[test]
    fn row_bank_column_stripes_bankgroups_then_columns() {
        let c = cfg();
        // Same channel, consecutive blocks alternate bank groups (tCCD_S).
        let a = AddressMapping::RowBankColumn.decode(0, &c);
        let b = AddressMapping::RowBankColumn.decode(2, &c);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 0);
        assert_eq!(b.bankgroup, a.bankgroup + 1);
        assert_eq!(a.column, b.column);
        // One full channel x group sweep later: next column, same bank/row.
        let stride = (c.channels * c.bankgroups) as u64;
        let d = AddressMapping::RowBankColumn.decode(stride, &c);
        assert_eq!(d.bankgroup, a.bankgroup);
        assert_eq!(d.bank, a.bank);
        assert_eq!(d.row, a.row);
        assert_eq!(d.column, a.column + 1);
    }

    #[test]
    fn channel_bit_is_lowest_in_both() {
        let c = cfg();
        for m in [
            AddressMapping::RowBankColumn,
            AddressMapping::BankInterleaved,
            AddressMapping::ColumnFirst,
        ] {
            assert_eq!(m.decode(0, &c).channel, 0);
            assert_eq!(m.decode(1, &c).channel, 1);
            assert_eq!(m.decode(2, &c).channel, 0);
        }
    }

    #[test]
    fn bank_interleaved_switches_banks_first() {
        let c = cfg();
        let a = AddressMapping::BankInterleaved.decode(0, &c);
        let b = AddressMapping::BankInterleaved.decode(2, &c);
        // Same channel, consecutive banks, same column.
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.column, b.column);
        assert!(b.bank != a.bank || b.bankgroup != a.bankgroup);
    }

    #[test]
    fn decode_is_a_bijection_over_capacity() {
        // Every block id below capacity maps to a distinct coordinate.
        let mut c = cfg();
        c.rows = 4;
        c.columns = 4;
        let total = c.total_blocks();
        assert_eq!(total, 2 * 16 * 4 * 4);
        for m in [
            AddressMapping::RowBankColumn,
            AddressMapping::BankInterleaved,
            AddressMapping::ColumnFirst,
        ] {
            let mut seen = std::collections::HashSet::new();
            for blk in 0..total {
                let d = m.decode(blk, &c);
                assert!(d.row < c.rows);
                assert!(d.column < c.columns);
                assert!(d.channel < c.channels);
                assert!(
                    seen.insert((d.channel, d.rank, d.bankgroup, d.bank, d.row, d.column)),
                    "duplicate coordinate for block {blk} under {m:?}"
                );
            }
        }
    }

    #[test]
    fn column_first_keeps_vectors_in_one_row() {
        let c = cfg();
        // Four consecutive blocks on one channel (a 256 B embedding
        // vector): same row, same bank, consecutive columns.
        let m = AddressMapping::ColumnFirst;
        let base = m.decode(0, &c);
        for i in 1..4u64 {
            let d = m.decode(i * c.channels as u64, &c);
            assert_eq!(d.row, base.row);
            assert_eq!(d.bank, base.bank);
            assert_eq!(d.bankgroup, base.bankgroup);
            assert_eq!(d.column, base.column + i);
        }
        // The next vector over lands in a different bank group.
        let next = m.decode(c.columns * c.channels as u64, &c);
        assert_ne!(next.bankgroup, base.bankgroup);
    }

    #[test]
    fn out_of_range_ids_wrap() {
        let mut c = cfg();
        c.rows = 4;
        c.columns = 4;
        let total = c.total_blocks();
        let m = AddressMapping::RowBankColumn;
        assert_eq!(m.decode(0, &c), m.decode(total, &c));
    }
}

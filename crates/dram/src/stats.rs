//! Aggregated memory-system statistics.

use crate::config::DramConfig;

/// Counters accumulated while servicing a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Completed 64 B reads.
    pub reads: u64,
    /// Completed 64 B writes.
    pub writes: u64,
    /// Issued ACT commands.
    pub activates: u64,
    /// Issued explicit PRE commands (row conflicts).
    pub precharges: u64,
    /// Issued all-bank refreshes.
    pub refreshes: u64,
    /// Column accesses that found their row open.
    pub row_hits: u64,
    /// Column accesses that needed only an ACT.
    pub row_misses: u64,
    /// Column accesses that needed PRE + ACT.
    pub row_conflicts: u64,
    /// Sum over reads of (data-available cycle - arrival cycle).
    pub total_read_latency: u64,
    /// Cycle at which the last data burst finished.
    pub last_data_cycle: u64,
}

impl MemoryStats {
    /// Total data moved, in bytes (64 B per access).
    pub fn bytes(&self) -> u64 {
        (self.reads + self.writes) * 64
    }

    /// Effective bandwidth over the busy interval, in GB/s.
    pub fn effective_bandwidth_gbps(&self, config: &DramConfig) -> f64 {
        if self.last_data_cycle == 0 {
            return 0.0;
        }
        let seconds = self.last_data_cycle as f64 * config.timing.tck_ps as f64 * 1e-12;
        self.bytes() as f64 / seconds / 1e9
    }

    /// Fraction of column accesses that were row-buffer hits.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Mean read latency in nanoseconds.
    pub fn avg_read_latency_ns(&self, config: &DramConfig) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.total_read_latency as f64 / self.reads as f64 * config.timing.tck_ps as f64 * 1e-3
    }

    /// Merges another channel's counters into this one.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.total_read_latency += other.total_read_latency;
        self.last_data_cycle = self.last_data_cycle.max(other.last_data_cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_counts_both_directions() {
        let s = MemoryStats {
            reads: 10,
            writes: 5,
            ..Default::default()
        };
        assert_eq!(s.bytes(), 15 * 64);
    }

    #[test]
    fn bandwidth_formula() {
        let cfg = DramConfig::ddr4_3200();
        let s = MemoryStats {
            reads: 1000,
            last_data_cycle: 4000, // 4 cycles per 64 B = exactly peak
            ..Default::default()
        };
        let eff = s.effective_bandwidth_gbps(&cfg);
        assert!((eff - cfg.peak_bandwidth_gbps()).abs() < 0.1, "eff {eff}");
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let cfg = DramConfig::ddr4_3200();
        let s = MemoryStats::default();
        assert_eq!(s.effective_bandwidth_gbps(&cfg), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.avg_read_latency_ns(&cfg), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_cycle() {
        let mut a = MemoryStats {
            reads: 1,
            last_data_cycle: 100,
            ..Default::default()
        };
        let b = MemoryStats {
            reads: 2,
            writes: 3,
            last_data_cycle: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.writes, 3);
        assert_eq!(a.last_data_cycle, 100);
    }

    #[test]
    fn hit_rate() {
        let s = MemoryStats {
            row_hits: 3,
            row_misses: 1,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}

//! A cycle-level DDR4 DRAM simulator — the reproduction's substitute for
//! Ramulator (Section V of the paper: "these prior work utilize a
//! cycle-level DRAM simulator to measure the effective memory throughput
//! of the memory system when fed in with the appropriate DRAM commands").
//!
//! The model is command-accurate at the granularity the paper's
//! methodology needs:
//!
//! * full DDR4 geometry (channels → ranks → bank groups → banks → rows ×
//!   columns) with 64 B column bursts (BL8 on a 64-bit bus);
//! * the timing constraints that matter for gather/scatter streams:
//!   tRCD/tRP/tRAS/tRC (row cycle), tCCD_S/L (burst spacing, bank-group
//!   aware), tRRD_S/L + tFAW (activation throttling), tWR/tWTR/tRTP
//!   (write turnarounds), CL/CWL (latencies), tREFI/tRFC (refresh);
//! * FR-FCFS scheduling with open- or closed-page row policies;
//! * per-request latency and per-channel bandwidth/row-hit statistics.
//!
//! [`MemorySystem::run_trace`] measures the *effective bandwidth* of an
//! address stream — the quantity Table I reports (">600 GB/s of the
//! 819.2 GB/s peak") and the calibration input for the system-level cost
//! model in `tcast-system`.
//!
//! # Example
//!
//! ```
//! use tcast_dram::{DramConfig, MemorySystem, Request, streams};
//!
//! let config = DramConfig::ddr4_3200(); // one channel: 25.6 GB/s peak
//! let mut mem = MemorySystem::new(config.clone());
//! let trace = streams::sequential_reads(4096);
//! let stats = mem.run_trace(trace);
//! let eff = stats.effective_bandwidth_gbps(&config);
//! assert!(eff > 0.8 * config.peak_bandwidth_gbps()); // streaming ~ peak
//! ```

mod address;
mod bank;
mod channel;
mod config;
pub mod power;
mod request;
mod stats;
pub mod streams;
mod system;
mod timing;
pub mod verify;

pub use address::{AddressMapping, DecodedAddr};
pub use channel::{Command, CommandKind};
pub use config::{DramConfig, RowPolicy};
pub use request::{AccessType, Request};
pub use stats::MemoryStats;
pub use system::MemorySystem;
pub use timing::TimingParams;

//! Per-bank and per-rank timing state machines.

use std::collections::VecDeque;

/// One DRAM bank: its open row and the earliest cycle each command class
/// may next be issued to it.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bank {
    /// The row currently latched in the row buffer, if any.
    pub open_row: Option<u64>,
    /// Earliest cycle an ACT may issue (tRC from the last ACT, tRP from
    /// the last PRE, refresh blackout).
    pub next_act: u64,
    /// Earliest cycle a PRE may issue (tRAS from ACT, tRTP from READ,
    /// write recovery from WRITE).
    pub next_pre: u64,
    /// Earliest cycle a column command may issue (tRCD from ACT).
    pub next_col: u64,
}

/// Rank-scope timing state: activation throttles (tRRD/tFAW), column
/// cadences (tCCD) and bus-turnaround constraints, plus refresh.
#[derive(Debug, Clone)]
pub(crate) struct RankState {
    pub banks: Vec<Bank>,
    /// Earliest ACT to *any* bank (tRRD_S).
    pub next_act_any: u64,
    /// Earliest ACT per bank group (tRRD_L).
    pub next_act_group: Vec<u64>,
    /// Issue cycles of up to the last 4 ACTs (tFAW window).
    pub act_window: VecDeque<u64>,
    /// Earliest READ to any bank (tCCD_S, write-to-read turnaround).
    pub next_rd_any: u64,
    /// Earliest READ per bank group (tCCD_L, tWTR_L).
    pub next_rd_group: Vec<u64>,
    /// Earliest WRITE to any bank (tCCD_S, read-to-write turnaround).
    pub next_wr_any: u64,
    /// Earliest WRITE per bank group (tCCD_L).
    pub next_wr_group: Vec<u64>,
    /// Next scheduled refresh.
    pub next_refresh: u64,
}

impl RankState {
    pub fn new(bankgroups: usize, banks_per_group: usize, trefi: u64) -> Self {
        Self {
            banks: vec![Bank::default(); bankgroups * banks_per_group],
            next_act_any: 0,
            next_act_group: vec![0; bankgroups],
            act_window: VecDeque::with_capacity(4),
            next_rd_any: 0,
            next_rd_group: vec![0; bankgroups],
            next_wr_any: 0,
            next_wr_group: vec![0; bankgroups],
            next_refresh: trefi,
        }
    }

    /// Earliest cycle tFAW admits another ACT.
    pub fn faw_ready_at(&self, tfaw: u64) -> u64 {
        if self.act_window.len() < 4 {
            0
        } else {
            self.act_window.front().copied().unwrap_or(0) + tfaw
        }
    }

    /// Records an ACT at `cycle` in the tFAW window.
    pub fn record_act(&mut self, cycle: u64) {
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_closed_and_ready() {
        let b = Bank::default();
        assert!(b.open_row.is_none());
        assert_eq!(b.next_act, 0);
    }

    #[test]
    fn faw_window_tracks_last_four_acts() {
        let mut r = RankState::new(4, 4, 1000);
        assert_eq!(r.faw_ready_at(34), 0);
        for c in [10, 20, 30, 40] {
            r.record_act(c);
        }
        // Window full: next ACT must wait for oldest + tFAW.
        assert_eq!(r.faw_ready_at(34), 10 + 34);
        r.record_act(50);
        // Oldest (10) evicted; now keyed to 20.
        assert_eq!(r.faw_ready_at(34), 20 + 34);
        assert_eq!(r.act_window.len(), 4);
    }

    #[test]
    fn rank_state_geometry() {
        let r = RankState::new(4, 4, 1000);
        assert_eq!(r.banks.len(), 16);
        assert_eq!(r.next_act_group.len(), 4);
        assert_eq!(r.next_refresh, 1000);
    }
}

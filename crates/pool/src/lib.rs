//! Persistent work-sharing thread pool for the Tensor Casting workspace.
//!
//! Before this crate existed, every parallel kernel in the repository
//! (`matmul_parallel`, the parallel gather/coalesce primitives, the casted
//! gather-reduce, the parallel casting transform) paid OS-thread
//! spawn/join on **every call** through `std::thread::scope`. At realistic
//! mini-batch sizes the spawn cost rivals the kernel itself, which is
//! exactly the scheduling overhead the paper's co-design removes from the
//! embedding-backward critical path. [`Pool`] fixes the host-side
//! analogue: workers are spawned once and live for the process, and each
//! kernel invocation only enqueues closures and waits on a latch.
//!
//! # Scoped execution
//!
//! [`Pool::scope`] mirrors `std::thread::scope`: tasks may borrow from the
//! caller's stack, and the scope does not return until every spawned task
//! finished. Kernels therefore migrate mechanically — `scope.spawn`
//! closures that write disjoint `split_at_mut` bands keep working
//! unchanged:
//!
//! ```
//! use tcast_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let mut out = vec![0u64; 1024];
//! let chunk = out.len() / 4;
//! pool.scope(|scope| {
//!     for (i, band) in out.chunks_mut(chunk).enumerate() {
//!         scope.spawn(move || {
//!             for (j, v) in band.iter_mut().enumerate() {
//!                 *v = (i * chunk + j) as u64;
//!             }
//!         });
//!     }
//! });
//! assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
//! ```
//!
//! # Nesting never deadlocks
//!
//! A thread blocked in [`Pool::scope`] does not idle: while its latch is
//! open it pops and runs queued tasks itself ("help-first" waiting). A
//! task that itself opens a scope on the same pool therefore always makes
//! progress, even on a pool with a single worker — the blocked thread
//! drains the inner scope's tasks on its own stack.
//!
//! # The process-wide pool
//!
//! [`global`] returns a lazily-created pool sized to
//! `std::thread::available_parallelism`. The legacy `*_parallel(..,
//! threads)` kernel entry points all route through it, which is what makes
//! a steady-state training step perform **zero** thread spawns.

use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased queued task. Lifetimes are erased on enqueue;
/// [`Pool::scope`] guarantees every task completes before the borrows it
/// captures go out of scope.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when a task is pushed, when a scope's last task
    /// completes, and on shutdown.
    activity: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pushes a task and wakes one sleeper (worker or helping waiter).
    fn push(&self, task: Task) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(task);
        self.activity.notify_all();
    }
}

/// A fixed set of long-lived worker threads executing scoped tasks.
///
/// Construction is the only place threads are spawned; every
/// [`Pool::scope`] call afterwards reuses them. Dropping the pool joins
/// all workers.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            activity: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tcast-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Creates a pool sized to `std::thread::available_parallelism`
    /// (falling back to 1 if the hint is unavailable).
    pub fn with_default_parallelism() -> Self {
        Self::new(default_parallelism())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing from the
    /// enclosing stack frame can be spawned; returns only after every
    /// spawned task completed.
    ///
    /// The calling thread helps execute queued tasks while it waits, so
    /// scopes may nest (a task may open another scope on the same pool)
    /// without deadlocking regardless of worker count.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is captured and resumed on the calling
    /// thread after all tasks of the scope finished (first panic wins).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        // Even if `f` panics mid-spawn, already-queued tasks still borrow
        // the enclosing frame — wait for them before unwinding further.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_help();
        if let Some(task_panic) = scope
            .state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take()
        {
            resume_unwind(task_panic);
        }
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.activity.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.activity.wait(queue).expect("pool queue poisoned");
            }
        };
        match task {
            Some(task) => task(),
            None => return,
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`Pool::scope`].
///
/// The `'env` lifetime is invariant (as with `std::thread::scope`): tasks
/// may borrow anything that outlives the scope call.
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Queues `f` for execution on the pool. Returns immediately; the
    /// enclosing [`Pool::scope`] call joins it.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let shared = Arc::clone(&self.pool.shared);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(panic) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().expect("scope panic slot poisoned");
                slot.get_or_insert(panic);
            }
            state.pending.fetch_sub(1, Ordering::SeqCst);
            // Serialize with a waiter that just observed pending > 0 and
            // is about to block: taking the queue lock before notifying
            // guarantees the wake-up is not lost.
            drop(shared.queue.lock().expect("pool queue poisoned"));
            shared.activity.notify_all();
        });
        // SAFETY: the closure only borrows data living at least for
        // `'env`, and `Pool::scope` blocks (helping, then waiting on the
        // latch) until `pending` returns to zero — i.e. until this task
        // ran to completion — before those borrows can expire. This is
        // the standard scoped-threadpool lifetime erasure.
        let task: Task = unsafe {
            mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        self.pool.shared.push(task);
    }

    /// Blocks until all tasks spawned on this scope completed, running
    /// queued tasks (from any scope) while waiting.
    fn wait_help(&self) {
        let shared = &self.pool.shared;
        let mut queue = shared.queue.lock().expect("pool queue poisoned");
        loop {
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(task) = queue.pop_front() {
                drop(queue);
                task();
                queue = shared.queue.lock().expect("pool queue poisoned");
                continue;
            }
            queue = shared.activity.wait(queue).expect("pool queue poisoned");
        }
    }
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &self.state.pending.load(Ordering::SeqCst))
            .finish()
    }
}

/// `std::thread::available_parallelism` as a plain `usize` (min 1).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide shared pool, created on first use with
/// [`default_parallelism`] workers. All `*_parallel(.., threads)` kernel
/// wrappers run here, so repeated kernel calls never spawn threads.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::with_default_parallelism)
}

/// How a kernel should execute: serially on the calling thread, or
/// split into `threads` tasks on a [`Pool`].
///
/// Every pooled kernel in this workspace is *bit-identical* to its serial
/// counterpart (same per-output accumulation order), so `Exec` only
/// selects a schedule, never a result.
#[derive(Clone, Copy, Debug, Default)]
pub enum Exec<'p> {
    /// Run on the calling thread.
    #[default]
    Serial,
    /// Split into `threads` tasks executed by `pool`.
    Pooled {
        /// The pool tasks are dispatched to.
        pool: &'p Pool,
        /// Task-count hint (clamped to at least 1 by kernels).
        threads: usize,
    },
}

impl<'p> Exec<'p> {
    /// Pooled execution using all of the pool's workers.
    pub fn pooled(pool: &'p Pool) -> Self {
        Exec::Pooled {
            pool,
            threads: pool.threads(),
        }
    }

    /// The task-count hint (1 for serial execution).
    pub fn threads(&self) -> usize {
        match self {
            Exec::Serial => 1,
            Exec::Pooled { threads, .. } => (*threads).max(1),
        }
    }

    /// The pool, if pooled.
    pub fn pool(&self) -> Option<&'p Pool> {
        match self {
            Exec::Serial => None,
            Exec::Pooled { pool, .. } => Some(pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_borrow_disjoint_bands() {
        let pool = Pool::new(4);
        let mut data = vec![0u32; 97]; // non-divisible by 4 on purpose
        let chunk = data.len().div_ceil(4);
        pool.scope(|s| {
            for band in data.chunks_mut(chunk) {
                s.spawn(move || {
                    for v in band.iter_mut() {
                        *v += 7;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn more_threads_than_items() {
        let pool = Pool::new(16);
        let mut data = [0u8; 3];
        pool.scope(|s| {
            for v in data.iter_mut() {
                s.spawn(move || *v = 1);
            }
        });
        assert_eq!(data, [1, 1, 1]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_even_on_one_worker() {
        // A task that itself opens a scope must not starve: the blocked
        // waiter helps drain the queue.
        let pool = Pool::new(1);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn deeply_nested_scopes() {
        let pool = Pool::new(2);
        fn recurse(pool: &Pool, depth: usize, counter: &AtomicU64) {
            if depth == 0 {
                counter.fetch_add(1, Ordering::SeqCst);
                return;
            }
            pool.scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| recurse(pool, depth - 1, counter));
                }
            });
        }
        let counter = AtomicU64::new(0);
        recurse(&pool, 4, &counter);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = Pool::new(2);
        let r = pool.scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(r, 42);
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = Pool::new(2);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn task_panic_propagates_after_scope_completes() {
        let pool = Pool::new(2);
        let survivors = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {
                    survivors.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        // The sibling task still ran to completion before the unwind.
        assert_eq!(survivors.load(Ordering::SeqCst), 1);
        // The pool remains usable after a panicked scope.
        let ok = AtomicU64::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.scope(|s| s.spawn(|| {}));
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert_eq!(global().threads(), default_parallelism());
    }

    #[test]
    fn exec_accessors() {
        assert_eq!(Exec::Serial.threads(), 1);
        assert!(Exec::Serial.pool().is_none());
        let pool = Pool::new(3);
        let exec = Exec::pooled(&pool);
        assert_eq!(exec.threads(), 3);
        assert!(exec.pool().is_some());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new(2);
        pool.scope(|s| s.spawn(|| {}));
        drop(pool); // must not hang
    }
}

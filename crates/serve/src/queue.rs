//! The admission queue: when to fuse waiting queries into one inference
//! batch.
//!
//! Batching is *the* serving-side throughput lever (each fused batch
//! amortizes the MLP weight traffic over every query in it), but every
//! query a batch waits for adds queueing delay to the ones already
//! admitted — the throughput/tail-latency tension DeepRecSys centers on.
//! Three policies span the design space:
//!
//! * [`BatchPolicy::Fixed`] — fire at exactly `batch` queries; maximal
//!   fusion, unbounded wait at low load (the throughput-bench policy).
//! * [`BatchPolicy::Deadline`] — fire at `max_batch` queries or when the
//!   oldest admitted query has waited `max_wait_ns`, whichever first;
//!   the classic bounded-staleness batcher.
//! * [`BatchPolicy::Adaptive`] — a DeepRecSys-style hill-climbing
//!   batcher: the target batch size grows additively while observed
//!   batch latency sits below the SLA and halves multiplicatively when
//!   a batch violates it, so the batcher finds the largest batch the
//!   SLA admits under the current load *without* a latency model.
//!
//! Decision logic is pure (no clocks, no I/O): the serve loop feeds it
//! `now` and it answers *fire k queries* or *wake me at t* — which is
//! what makes the policies unit-testable and the simulated-clock loop
//! deterministic in structure.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::request::Query;

/// A query waiting in the admission queue.
#[derive(Debug, Clone)]
pub struct QueuedQuery {
    /// The query itself.
    pub query: Arc<Query>,
    /// When it arrived, on the serve loop's nanosecond clock.
    pub arrival_ns: u64,
}

/// What the policy wants the serve loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Fuse and score the oldest `n` queries now.
    Fire(usize),
    /// Nothing to do before this clock value (wake earlier if a query
    /// arrives first).
    WaitUntil(u64),
    /// Idle: wait for the next arrival.
    Wait,
}

/// The DeepRecSys-style adaptive batcher's tunables and state.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBatcher {
    sla_ns: u64,
    max_batch: usize,
    max_wait_ns: u64,
    target: usize,
    /// Grow the target when a batch's latency lands under this fraction
    /// of the SLA (headroom guard: growing at 99.9% of the SLA would
    /// oscillate straight into violations).
    grow_below: f64,
}

impl AdaptiveBatcher {
    /// Creates a batcher hill-climbing toward `sla_ns`, with the batch
    /// capped at `max_batch` and the oldest query never waiting longer
    /// than `max_wait_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or `sla_ns == 0`.
    pub fn new(sla_ns: u64, max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(sla_ns > 0, "sla must be positive");
        Self {
            sla_ns,
            max_batch,
            max_wait_ns,
            target: 1,
            grow_below: 0.8,
        }
    }

    /// The current hill-climbed batch-size target.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Feeds back one completed batch's end-to-end latency (admission of
    /// its oldest query to completion): additive increase under the SLA
    /// headroom, multiplicative decrease on violation. A batch landing
    /// *exactly* at the SLA is a violation — the serve plane's deadline
    /// convention is everywhere exclusive (meet iff `latency < sla_ns`;
    /// see [`AdmissionQueue::shed_expired_into`]).
    pub fn observe(&mut self, batch_latency_ns: u64) {
        if batch_latency_ns >= self.sla_ns {
            self.target /= 2;
        } else if (batch_latency_ns as f64) < self.grow_below * self.sla_ns as f64 {
            self.target += 1;
        }
        // The decision function owns its own bounds: whatever latency
        // sequence arrives, the target stays inside [1, max_batch].
        self.target = self.target.clamp(1, self.max_batch);
    }
}

/// When to fuse the queue into a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchPolicy {
    /// Fire at exactly `batch` queries (drain the remainder when the
    /// stream ends).
    Fixed {
        /// Queries per fused batch.
        batch: usize,
    },
    /// Fire at `max_batch` queries or once the oldest has waited
    /// `max_wait_ns`.
    Deadline {
        /// Largest fused batch.
        max_batch: usize,
        /// Longest the oldest admitted query may wait.
        max_wait_ns: u64,
    },
    /// Hill-climb the batch size toward an SLA target.
    Adaptive(AdaptiveBatcher),
}

impl BatchPolicy {
    /// Short label for reports and benchmark rows.
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Fixed { .. } => "fixed",
            BatchPolicy::Deadline { .. } => "deadline",
            BatchPolicy::Adaptive(_) => "adaptive",
        }
    }
}

/// FIFO admission queue driven by a [`BatchPolicy`].
#[derive(Debug)]
pub struct AdmissionQueue {
    queue: VecDeque<QueuedQuery>,
    policy: BatchPolicy,
    max_depth: usize,
    shed: u64,
}

impl AdmissionQueue {
    /// An empty queue under the given policy.
    pub fn new(policy: BatchPolicy) -> Self {
        match &policy {
            BatchPolicy::Fixed { batch } => assert!(*batch > 0, "batch must be positive"),
            BatchPolicy::Deadline { max_batch, .. } => {
                assert!(*max_batch > 0, "max_batch must be positive");
            }
            BatchPolicy::Adaptive(_) => {}
        }
        Self {
            queue: VecDeque::new(),
            policy,
            max_depth: 0,
            shed: 0,
        }
    }

    /// Queries currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no queries wait.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Deepest the queue has been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Queries shed so far (see [`AdmissionQueue::shed_expired_into`]).
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Sheds every waiting query whose deadline is already provably
    /// unmeetable at clock `now_ns`. The serve plane's deadline
    /// convention is *exclusive*: a query meets its SLA iff its
    /// end-to-end latency is strictly below `sla_ns`, so one that has
    /// already waited `sla_ns` or longer would violate even if scored in
    /// zero time — scoring it only burns pool time that queries still
    /// inside their budget need. (Violation counting and
    /// [`AdaptiveBatcher::observe`] use the same `>= sla_ns` boundary,
    /// so a shed query and a scored query that aged identically land on
    /// the same side of the SLA.) Shed queries are drained into `out`
    /// (cleared first) so the serve loop can complete their closed-loop
    /// clients without scoring them.
    ///
    /// Admission order is FIFO and arrival times are non-decreasing, so
    /// the expired queries form a prefix of the queue.
    pub fn shed_expired_into(&mut self, now_ns: u64, sla_ns: u64, out: &mut Vec<QueuedQuery>) {
        out.clear();
        while let Some(front) = self.queue.front() {
            if now_ns.saturating_sub(front.arrival_ns) < sla_ns {
                break;
            }
            out.push(self.queue.pop_front().expect("front exists"));
        }
        self.shed += out.len() as u64;
    }

    /// The policy (e.g. to read an adaptive batcher's current target).
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Admits an arrived query.
    pub fn push(&mut self, query: Arc<Query>, arrival_ns: u64) {
        self.queue.push_back(QueuedQuery { query, arrival_ns });
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// Asks the policy what to do at clock `now_ns`. `more_arrivals` is
    /// whether the stream can still deliver queries — when it cannot,
    /// every policy drains what it holds rather than waiting for a batch
    /// that will never fill.
    pub fn decide(&self, now_ns: u64, more_arrivals: bool) -> Decision {
        let len = self.queue.len();
        if len == 0 {
            return Decision::Wait;
        }
        let oldest = self.queue.front().expect("non-empty").arrival_ns;
        let (cap, deadline) = match &self.policy {
            BatchPolicy::Fixed { batch } => (*batch, None),
            BatchPolicy::Deadline {
                max_batch,
                max_wait_ns,
            } => (*max_batch, Some(oldest.saturating_add(*max_wait_ns))),
            BatchPolicy::Adaptive(b) => (b.target, Some(oldest.saturating_add(b.max_wait_ns))),
        };
        if len >= cap {
            return Decision::Fire(cap);
        }
        if !more_arrivals {
            return Decision::Fire(len);
        }
        match deadline {
            Some(t) if t <= now_ns => Decision::Fire(len.min(cap)),
            Some(t) => Decision::WaitUntil(t),
            None => Decision::Wait,
        }
    }

    /// Removes and returns the oldest `n` queries (the fused batch).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` queries wait.
    pub fn take(&mut self, n: usize) -> Vec<QueuedQuery> {
        let mut out = Vec::with_capacity(n);
        self.take_into(n, &mut out);
        out
    }

    /// [`AdmissionQueue::take`] draining into a cleared, caller-owned
    /// buffer — the serve loop's steady-state form (no per-batch
    /// allocation once the buffer reaches the largest fired batch).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` queries wait.
    pub fn take_into(&mut self, n: usize, out: &mut Vec<QueuedQuery>) {
        assert!(n <= self.queue.len(), "cannot take {n} queries");
        out.clear();
        out.extend(self.queue.drain(..n));
    }

    /// Feeds a completed batch's end-to-end latency back to the policy
    /// (only the adaptive batcher adapts).
    pub fn observe_batch(&mut self, batch_latency_ns: u64) {
        if let BatchPolicy::Adaptive(b) = &mut self.policy {
            b.observe(batch_latency_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_tensor::Matrix;

    fn q(id: u64) -> Arc<Query> {
        Arc::new(Query {
            id,
            dense: Matrix::zeros(1, 2),
            indices: Vec::new().into(),
        })
    }

    #[test]
    fn fixed_policy_fires_at_exactly_the_target() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 3 });
        queue.push(q(0), 10);
        queue.push(q(1), 20);
        assert_eq!(queue.decide(100, true), Decision::Wait);
        queue.push(q(2), 30);
        assert_eq!(queue.decide(100, true), Decision::Fire(3));
        let taken = queue.take(3);
        assert_eq!(taken.len(), 3);
        assert_eq!(taken[0].query.id, 0, "FIFO order");
        assert!(queue.is_empty());
        assert_eq!(queue.max_depth(), 3);
    }

    #[test]
    fn fixed_policy_drains_when_the_stream_ends() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 8 });
        queue.push(q(0), 0);
        queue.push(q(1), 5);
        assert_eq!(queue.decide(10, true), Decision::Wait);
        assert_eq!(queue.decide(10, false), Decision::Fire(2));
    }

    #[test]
    fn deadline_policy_fires_on_oldest_wait() {
        let policy = BatchPolicy::Deadline {
            max_batch: 16,
            max_wait_ns: 100,
        };
        let mut queue = AdmissionQueue::new(policy);
        queue.push(q(0), 50);
        queue.push(q(1), 80);
        // Deadline is oldest arrival + max_wait = 150.
        assert_eq!(queue.decide(120, true), Decision::WaitUntil(150));
        assert_eq!(queue.decide(150, true), Decision::Fire(2));
    }

    #[test]
    fn deadline_policy_caps_the_batch() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Deadline {
            max_batch: 2,
            max_wait_ns: 1_000,
        });
        for i in 0..5 {
            queue.push(q(i), i);
        }
        assert_eq!(queue.decide(10, true), Decision::Fire(2));
    }

    #[test]
    fn empty_queue_always_waits() {
        let queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 1 });
        assert_eq!(queue.decide(0, true), Decision::Wait);
        assert_eq!(queue.decide(0, false), Decision::Wait);
    }

    #[test]
    fn adaptive_batcher_grows_under_sla_and_halves_on_violation() {
        let mut b = AdaptiveBatcher::new(1_000_000, 32, 100_000);
        assert_eq!(b.target(), 1);
        for _ in 0..5 {
            b.observe(100_000); // far under SLA
        }
        assert_eq!(b.target(), 6);
        b.observe(2_000_000); // violation
        assert_eq!(b.target(), 3);
        b.observe(2_000_000);
        b.observe(2_000_000);
        b.observe(2_000_000);
        assert_eq!(b.target(), 1, "never drops below 1");
        // Near-SLA latencies (between 80% and 100%) hold steady.
        b.observe(900_000);
        assert_eq!(b.target(), 1);
    }

    #[test]
    fn adaptive_batcher_saturates_at_max_batch() {
        let mut b = AdaptiveBatcher::new(1_000_000, 4, 100_000);
        for _ in 0..10 {
            b.observe(1);
        }
        assert_eq!(b.target(), 4);
    }

    #[test]
    fn adaptive_queue_uses_the_live_target() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Adaptive(AdaptiveBatcher::new(
            1_000_000, 32, 500,
        )));
        queue.push(q(0), 0);
        // Target starts at 1: fire immediately.
        assert_eq!(queue.decide(0, true), Decision::Fire(1));
        queue.take(1);
        // Feedback far under SLA: target grows to 2.
        queue.observe_batch(1_000);
        queue.push(q(1), 100);
        assert_eq!(queue.decide(100, true), Decision::WaitUntil(600));
        queue.push(q(2), 200);
        assert_eq!(queue.decide(200, true), Decision::Fire(2));
    }

    #[test]
    fn shedding_drains_only_the_expired_prefix() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 8 });
        queue.push(q(0), 0);
        queue.push(q(1), 50);
        queue.push(q(2), 180);
        let mut out = vec![QueuedQuery {
            query: q(99),
            arrival_ns: 0,
        }];
        // SLA 100 at clock 150: queries 0 (waited 150) and 1 (waited
        // 100, unmeetable at equality) expire; query 2 has not arrived
        // long enough.
        queue.shed_expired_into(150, 100, &mut out);
        assert_eq!(out.len(), 2, "out buffer is cleared then filled");
        assert_eq!(out[0].query.id, 0);
        assert_eq!(out[1].query.id, 1);
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.shed_count(), 2);
        // Nothing expired: the buffer still gets cleared.
        queue.shed_expired_into(150, 100, &mut out);
        assert!(out.is_empty());
        assert_eq!(queue.shed_count(), 2);
        // The survivor expires later.
        queue.shed_expired_into(280, 100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(queue.shed_count(), 3);
        assert!(queue.is_empty());
    }

    #[test]
    fn exactly_at_deadline_is_a_violation_on_every_path() {
        // The unified boundary convention: meet iff latency < sla_ns.
        // A query aged exactly sla_ns is shed (unmeetable even at zero
        // service time)...
        let mut queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 8 });
        queue.push(q(0), 100);
        let mut out = Vec::new();
        queue.shed_expired_into(1_100, 1_000, &mut out);
        assert_eq!(out.len(), 1, "age == sla is shed");
        // ...and a batch landing exactly at the SLA is treated as a
        // violation by the adaptive batcher (halve, not grow/hold).
        let mut b = AdaptiveBatcher::new(1_000_000, 32, 100_000);
        for _ in 0..7 {
            b.observe(100_000);
        }
        assert_eq!(b.target(), 8);
        b.observe(1_000_000); // exactly at the SLA
        assert_eq!(b.target(), 4, "latency == sla halves the target");
    }

    #[test]
    fn adaptive_batcher_target_never_escapes_bounds() {
        // Hammer the hill-climb with adversarial latency sequences; the
        // target is an enforced invariant of the decision function, not
        // an emergent property of polite inputs.
        let mut b = AdaptiveBatcher::new(1_000_000, 4, 100_000);
        for i in 0..200u64 {
            // Alternate extremes: zero latency, exact-SLA, and 100x SLA.
            let lat = match i % 3 {
                0 => 0,
                1 => 1_000_000,
                _ => 100_000_000,
            };
            b.observe(lat);
            assert!((1..=4).contains(&b.target()), "target {}", b.target());
        }
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn take_more_than_queued_panics() {
        let mut queue = AdmissionQueue::new(BatchPolicy::Fixed { batch: 1 });
        queue.push(q(0), 0);
        queue.take(2);
    }
}

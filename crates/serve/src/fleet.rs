//! The multi-tenant serving fleet: N tenants — each with its own model,
//! snapshot store, admission queue, batching policy and SLA — sharing
//! one execution pool under weighted-fair scheduling.
//!
//! DeepRecSys's subject is scheduling *across* engines at datacenter
//! scale: the hard serving problem is not one model's batch size but
//! what happens to tenant B's p99 when tenant A's traffic spikes 50x.
//! This module is that layer, built from the single-tenant pieces:
//!
//! * each [`Tenant`] owns a [`SnapshotStore`] (its frozen model, with an
//!   optional staggered [`PublishCadence`] standing in for a live
//!   trainer), a [`QueryModel`], an [`AdmissionQueue`] under any
//!   [`BatchPolicy`], an SLA, and per-tenant unmeetable-deadline
//!   shedding — the exact machinery of the single-tenant loop;
//! * arrivals come from [`RateCurve`]s (diurnal days, flash crowds), so
//!   tenants see genuinely heterogeneous load;
//! * pool time is shared by [`WfqScheduler`], a *pure* virtual-time
//!   weighted-fair scheduler in the `AdaptiveBatcher` decision-function
//!   style: each fired batch charges its tenant `cost / weight` virtual
//!   time and the next batch goes to the backlogged tenant with the
//!   smallest virtual time — so over any backlogged interval, tenants'
//!   pool-time shares converge to their weight ratio, and a flash crowd
//!   can only eat its own share;
//! * results roll up through the existing `merge` machinery:
//!   per-tenant [`ServeReport`]s and [`FreshnessLedger`]s fold
//!   bucket-exactly into the fleet view.
//!
//! # Determinism
//!
//! The fleet loop is a discrete-event simulation: arrivals, latencies,
//! shedding, SLA accounting and WFQ charging all advance a simulated
//! clock by [`PoolCostModel`] — an affine cost per fused batch — never
//! by wall time. Every batch is still *really scored* through the
//! tenant's [`ServeEngine`] (real casting caches, real eviction churn,
//! bit-real logits; the measured wall time is reported separately), but
//! scheduling is a pure function of `(tenant specs, seed)`: the same
//! fleet replays bit-identically, which is what makes cross-tenant
//! isolation a CI-gateable property instead of a load-test anecdote.
//!
//! [`PublishCadence`]: tcast_snapshot::PublishCadence

use std::sync::Arc;
use std::time::Instant;

use crate::engine::ServeEngine;
use crate::queue::{AdmissionQueue, BatchPolicy, Decision, QueuedQuery};
use crate::request::{QueryModel, RateCurve};
use crate::stats::{FreshnessLedger, LatencyHistogram, ServeReport};
use tcast_dlrm::{Dlrm, Execution};
use tcast_embedding::EmbeddingError;
use tcast_snapshot::{ModelSnapshot, PublishCadence, SnapshotStore};
use tcast_tensor::SplitMix64;

/// Fixed-point scale for virtual time (`cost * SCALE / weight` stays
/// exact for any nanosecond cost and weight that fit in u64).
const WFQ_SCALE: u128 = 1 << 20;

/// The pure virtual-time weighted-fair scheduler.
///
/// Classic WFQ bookkeeping: tenant `i` accumulates virtual time
/// `cost / weight[i]` per nanosecond of pool time it is charged, and
/// the pool always serves the backlogged tenant with the least virtual
/// time (ties break to the lowest index). A tenant going idle stops
/// accumulating; on re-arrival the caller raises it to the backlogged
/// minimum ([`WfqScheduler::raise_to`]) so idle periods never bank
/// credit — the standard start-time catch-up that keeps a bursty tenant
/// from starving everyone after a quiet hour.
///
/// No clocks, no queues, no I/O: like the batching policies, this is a
/// decision function the fleet loop drives, unit-testable in isolation.
#[derive(Debug, Clone)]
pub struct WfqScheduler {
    weights: Vec<u64>,
    vtime: Vec<u128>,
    charged: Vec<u64>,
}

impl WfqScheduler {
    /// A scheduler over `weights.len()` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero.
    pub fn new(weights: &[u64]) -> Self {
        assert!(!weights.is_empty(), "scheduler needs at least one tenant");
        assert!(
            weights.iter().all(|&w| w > 0),
            "weights must be positive (a zero weight can never be served)"
        );
        Self {
            weights: weights.to_vec(),
            vtime: vec![0; weights.len()],
            charged: vec![0; weights.len()],
        }
    }

    /// Tenant `i`'s virtual time.
    pub fn vtime(&self, i: usize) -> u128 {
        self.vtime[i]
    }

    /// Catch-up on an idle-to-backlogged transition: raise tenant `i`'s
    /// virtual time to `floor` (the minimum over currently backlogged
    /// tenants) if it fell behind while idle. Never lowers.
    pub fn raise_to(&mut self, i: usize, floor: u128) {
        if self.vtime[i] < floor {
            self.vtime[i] = floor;
        }
    }

    /// Charges tenant `i` for `cost_ns` of pool time.
    pub fn charge(&mut self, i: usize, cost_ns: u64) {
        self.charged[i] += cost_ns;
        self.vtime[i] += u128::from(cost_ns) * WFQ_SCALE / u128::from(self.weights[i]);
    }

    /// The tenant to serve next among `ready`: least virtual time, ties
    /// to the lowest index. `None` iff `ready` is empty.
    pub fn pick(&self, ready: impl IntoIterator<Item = usize>) -> Option<usize> {
        ready.into_iter().min_by_key(|&i| (self.vtime[i], i))
    }

    /// Pool time charged to tenant `i` so far.
    pub fn charged_ns(&self, i: usize) -> u64 {
        self.charged[i]
    }

    /// Pool time charged across all tenants.
    pub fn total_charged_ns(&self) -> u64 {
        self.charged.iter().sum()
    }
}

/// The deterministic pool-time cost of a fused batch: an affine model
/// `batch_overhead_ns + ns_per_sample * samples`, echoing the measured
/// shape of the scoring engine (fixed dispatch cost plus per-candidate
/// MLP work). Driving the simulated clock with this — instead of the
/// measured wall time — is what makes the whole fleet run a pure
/// function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCostModel {
    /// Per-batch fixed cost (dispatch, fusion layout).
    pub batch_overhead_ns: u64,
    /// Marginal cost per candidate sample scored.
    pub ns_per_sample: u64,
}

impl Default for PoolCostModel {
    /// Loosely calibrated to the lean serving MLP on one core: ~20 us
    /// of per-batch overhead plus ~5 us per candidate.
    fn default() -> Self {
        Self {
            batch_overhead_ns: 20_000,
            ns_per_sample: 5_000,
        }
    }
}

impl PoolCostModel {
    /// Simulated service time of a fused batch scoring `samples`
    /// candidates.
    pub fn service_ns(&self, samples: u64) -> u64 {
        self.batch_overhead_ns + self.ns_per_sample * samples
    }
}

/// A mid-run popularity-distribution shift (see
/// [`QueryModel::shift_popularity`]): at `at_ns` on the simulated
/// clock, the hot head of the tenant's catalog rotates by `rotation` —
/// the cache-churn event that forces the engine's warm `CastingCache`
/// to evict its way to the new head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopularityShift {
    /// When the shift lands, on the simulated clock.
    pub at_ns: u64,
    /// Catalog rotation applied to the popularity ranks.
    pub rotation: usize,
}

/// Everything that defines one tenant's behavior in the fleet.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (report rows, bench output).
    pub name: String,
    /// Weighted-fair share of pool time (relative to other tenants).
    pub weight: u64,
    /// Total queries this tenant's workload issues.
    pub queries: usize,
    /// Arrival-rate curve (constant, diurnal, flash crowd).
    pub arrivals: RateCurve,
    /// Batching policy for this tenant's admission queue.
    pub policy: BatchPolicy,
    /// Tail-latency SLA (exclusive deadline: meet iff latency < sla).
    pub sla_ns: u64,
    /// Shed queries whose deadline is provably unmeetable.
    pub shed_unmeetable: bool,
    /// Arrival-schedule seed. Deliberately per-spec (not per-index) so
    /// a tenant replays the identical arrival schedule whether it runs
    /// solo or inside a fleet — the isolation baseline comparison.
    pub seed: u64,
    /// Staggered snapshot republish cadence (a stand-in for this
    /// tenant's live trainer); `None` serves version 1 throughout.
    pub publish: Option<PublishCadence>,
    /// Optional mid-run popularity shift.
    pub popularity_shift: Option<PopularityShift>,
}

/// One tenant: its spec, its private snapshot store (own model), and
/// its private query workload.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's behavioral spec.
    pub spec: TenantSpec,
    /// The tenant's own model, behind its own epoch-versioned store.
    pub store: SnapshotStore,
    /// The tenant's query catalog and popularity state.
    pub workload: QueryModel,
}

impl Tenant {
    /// A tenant serving `model` (captured as the store's version 1)
    /// under `spec`, drawing queries from `workload`.
    pub fn new(spec: TenantSpec, model: &Dlrm, workload: QueryModel) -> Self {
        Self {
            spec,
            store: SnapshotStore::new(model, 0, 2),
            workload,
        }
    }
}

/// Fleet-wide knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The simulated-clock cost of a fused batch.
    pub cost: PoolCostModel,
    /// Per-table casting-cache capacity of every tenant engine.
    pub cache_capacity: usize,
    /// The shared execution substrate: every tenant engine scores on
    /// this (clone one `Execution::Pooled(pool)` to share one pool).
    pub execution: Execution,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            cost: PoolCostModel::default(),
            cache_capacity: crate::engine::DEFAULT_CACHE_CAPACITY,
            execution: Execution::Serial,
        }
    }
}

/// One tenant's slice of the fleet outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's name.
    pub name: String,
    /// Its weighted-fair weight.
    pub weight: u64,
    /// The standard serving report (latency, violations, shed, cache
    /// hit rate), with `span_ns` set to the fleet-wide clock span so
    /// per-tenant QPS values are comparable.
    pub serve: ServeReport,
    /// Freshness against the tenant's own store; model age is on the
    /// simulated clock.
    pub freshness: FreshnessLedger,
    /// Simulated pool time charged to this tenant.
    pub pool_ns: u64,
    /// This tenant's fraction of all charged pool time.
    pub pool_share: f64,
    /// Cadence republishes performed on the tenant's store.
    pub publishes: u64,
    /// Casting-cache evictions in the tenant's engine (popularity
    /// shifts show up here).
    pub cache_evictions: u64,
    /// Wall time actually spent scoring this tenant's batches (not part
    /// of the simulation; reported for calibration).
    pub measured_ns: u64,
}

/// The fleet outcome: per-tenant reports plus the merged rollups.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// All tenants' serve reports folded through [`ServeReport::merge`].
    pub fleet: ServeReport,
    /// All tenants' ledgers folded through [`FreshnessLedger::merge`].
    pub freshness: FreshnessLedger,
    /// Final simulated clock.
    pub span_ns: u64,
    /// Real wall time of the whole run.
    pub wall_ns: u64,
}

impl FleetReport {
    /// A tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }
}

/// Per-tenant runtime state inside the fleet loop.
struct TenantRun<'a> {
    spec: &'a TenantSpec,
    store: &'a SnapshotStore,
    workload: &'a mut QueryModel,
    queue: AdmissionQueue,
    engine: ServeEngine,
    held: Arc<ModelSnapshot>,
    rng: SplitMix64,
    /// Next arrival on the simulated clock (`u64::MAX` once all issued).
    next_arrival_ns: u64,
    issued: usize,
    completed: usize,
    latency: LatencyHistogram,
    service: LatencyHistogram,
    violations: u64,
    samples: u64,
    batches: u64,
    freshness: FreshnessLedger,
    publishes: u64,
    next_publish_ns: u64,
    last_publish_ns: u64,
    shift_pending: Option<PopularityShift>,
    measured_ns: u64,
    batch_buf: Vec<QueuedQuery>,
    shed_buf: Vec<QueuedQuery>,
}

impl<'a> TenantRun<'a> {
    fn new(tenant: &'a mut Tenant, config: &FleetConfig) -> Self {
        let spec = &tenant.spec;
        let held = tenant.store.latest();
        let engine = ServeEngine::new(
            held.model(),
            config.cache_capacity,
            config.execution.clone(),
        );
        let mut rng = SplitMix64::new(spec.seed);
        let next_arrival_ns = if spec.queries > 0 {
            spec.arrivals.next_arrival_after(0, &mut rng)
        } else {
            u64::MAX
        };
        Self {
            queue: AdmissionQueue::new(spec.policy.clone()),
            engine,
            held,
            rng,
            next_arrival_ns,
            issued: 0,
            completed: 0,
            latency: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            violations: 0,
            samples: 0,
            batches: 0,
            freshness: FreshnessLedger::default(),
            publishes: 0,
            next_publish_ns: spec.publish.map_or(u64::MAX, |c| c.next_fire_after(0)),
            last_publish_ns: 0,
            shift_pending: spec.popularity_shift,
            measured_ns: 0,
            batch_buf: Vec::new(),
            shed_buf: Vec::new(),
            store: &tenant.store,
            workload: &mut tenant.workload,
            spec,
        }
    }

    fn done(&self) -> bool {
        self.completed >= self.spec.queries
    }

    /// Applies due cadence republishes (at their scheduled times, so
    /// model-age accounting is exact even when the clock jumps a whole
    /// batch at once).
    fn apply_publishes(&mut self, clock_ns: u64) {
        while self.next_publish_ns <= clock_ns {
            self.store.republish_head();
            self.publishes += 1;
            self.last_publish_ns = self.next_publish_ns;
            let cadence = self.spec.publish.expect("cadence exists");
            self.next_publish_ns = cadence.next_fire_after(self.next_publish_ns);
        }
    }

    fn apply_shift(&mut self, clock_ns: u64) {
        if let Some(shift) = self.shift_pending {
            if shift.at_ns <= clock_ns {
                self.workload.shift_popularity(shift.rotation);
                self.shift_pending = None;
            }
        }
    }

    /// Sheds provably unmeetable queries; shed queries complete without
    /// scoring (the single-tenant convention).
    fn shed(&mut self, clock_ns: u64) {
        self.queue
            .shed_expired_into(clock_ns, self.spec.sla_ns, &mut self.shed_buf);
        self.completed += self.shed_buf.len();
    }

    fn into_report(self, span_ns: u64, pool_ns: u64, total_pool_ns: u64) -> TenantReport {
        TenantReport {
            name: self.spec.name.clone(),
            weight: self.spec.weight,
            serve: ServeReport {
                queries: self.completed as u64,
                batches: self.batches,
                samples: self.samples,
                latency: self.latency,
                service: self.service,
                span_ns,
                sla_ns: self.spec.sla_ns,
                sla_violations: self.violations,
                max_queue_depth: self.queue.max_depth(),
                cache_hit_rate: self.engine.cache_hit_rate(),
                shed: self.queue.shed_count(),
                restores: 0,
                restore_ns: 0,
            },
            freshness: self.freshness,
            pool_ns,
            pool_share: if total_pool_ns == 0 {
                0.0
            } else {
                pool_ns as f64 / total_pool_ns as f64
            },
            publishes: self.publishes,
            cache_evictions: self.engine.cache_evictions(),
            measured_ns: self.measured_ns,
        }
    }
}

/// Runs the fleet to completion (every tenant's `queries` served or
/// shed) and reports per-tenant and merged outcomes.
///
/// The loop is a discrete-event simulation over one shared pool: at
/// each step it delivers due arrivals/publishes/shifts, sheds expired
/// queries, asks every tenant's queue for a decision, and serves *one*
/// batch — the fireable tenant with the least WFQ virtual time. The
/// batch is really scored through the tenant's engine; the clock
/// advances by the [`PoolCostModel`] cost, which is also what the WFQ
/// scheduler charges. Scores, schedules, latencies and shares are all
/// bit-reproducible for fixed specs.
///
/// # Errors
///
/// Propagates engine scoring errors (query/model shape disagreements).
///
/// # Panics
///
/// Panics if `tenants` is empty, a weight is zero, or the cost model is
/// degenerate (`service_ns(1) == 0` could stall the clock).
pub fn run_fleet(
    tenants: &mut [Tenant],
    config: &FleetConfig,
) -> Result<FleetReport, EmbeddingError> {
    assert!(!tenants.is_empty(), "fleet needs at least one tenant");
    assert!(
        config.cost.service_ns(1) > 0,
        "cost model must give batches positive service time"
    );
    let wall_start = Instant::now();
    let weights: Vec<u64> = tenants.iter().map(|t| t.spec.weight).collect();
    let mut sched = WfqScheduler::new(&weights);
    let mut runs: Vec<TenantRun> = tenants
        .iter_mut()
        .map(|t| TenantRun::new(t, config))
        .collect();
    let mut clock: u64 = 0;
    let mut fire: Vec<(usize, usize)> = Vec::new();

    while !runs.iter().all(TenantRun::done) {
        // 1. Deliver everything due at or before `clock`.
        for i in 0..runs.len() {
            runs[i].apply_publishes(clock);
            runs[i].apply_shift(clock);
            while runs[i].next_arrival_ns <= clock && runs[i].issued < runs[i].spec.queries {
                let was_empty = runs[i].queue.is_empty();
                let at = runs[i].next_arrival_ns;
                let query = runs[i].workload.draw();
                runs[i].queue.push(query, at);
                runs[i].issued += 1;
                runs[i].next_arrival_ns = if runs[i].issued < runs[i].spec.queries {
                    let run = &mut runs[i];
                    run.spec.arrivals.next_arrival_after(at, &mut run.rng)
                } else {
                    u64::MAX
                };
                if was_empty {
                    // Idle-to-backlogged: catch up to the backlogged
                    // minimum so idle time never banks WFQ credit.
                    let floor = (0..runs.len())
                        .filter(|&j| j != i && !runs[j].queue.is_empty())
                        .map(|j| sched.vtime(j))
                        .min();
                    if let Some(floor) = floor {
                        sched.raise_to(i, floor);
                    }
                }
            }
            if runs[i].spec.shed_unmeetable {
                runs[i].shed(clock);
            }
        }

        // 2. Collect decisions; track the earliest future event.
        fire.clear();
        let mut next_event = u64::MAX;
        for (i, run) in runs.iter().enumerate() {
            let more = run.issued < run.spec.queries;
            match run.queue.decide(clock, more) {
                Decision::Fire(n) => fire.push((i, n)),
                Decision::WaitUntil(t) => next_event = next_event.min(t),
                Decision::Wait => {}
            }
            if more {
                next_event = next_event.min(run.next_arrival_ns);
            }
        }
        if fire.is_empty() {
            if next_event == u64::MAX {
                break; // nothing in flight and nothing due: all done
            }
            clock = next_event.max(clock + 1);
            continue;
        }

        // 3. Serve one batch: the least-virtual-time fireable tenant.
        let i = sched
            .pick(fire.iter().map(|&(i, _)| i))
            .expect("fire set non-empty");
        let n = fire
            .iter()
            .find(|&&(j, _)| j == i)
            .expect("picked tenant is fireable")
            .1;
        let run = &mut runs[i];
        run.queue.take_into(n, &mut run.batch_buf);
        if run.store.version() != run.held.version() {
            run.held = run.store.latest();
        }
        let held = Arc::clone(&run.held);
        let t0 = Instant::now();
        let scored = run.engine.score_queued(held.model(), &run.batch_buf)?;
        let samples = scored.num_samples() as u64;
        run.measured_ns += t0.elapsed().as_nanos() as u64;
        let service_ns = config.cost.service_ns(samples);
        clock += service_ns;
        sched.charge(i, service_ns);
        run.batches += 1;
        run.samples += samples;
        run.service.record(service_ns);
        let oldest = run.batch_buf.first().expect("batch non-empty").arrival_ns;
        run.queue.observe_batch(clock - oldest);
        for item in &run.batch_buf {
            let latency = clock - item.arrival_ns;
            run.latency.record(latency);
            // Exclusive deadline, same boundary as shed and batcher.
            if latency >= run.spec.sla_ns {
                run.violations += 1;
            }
        }
        run.completed += n;
        run.freshness.record(
            held.version(),
            run.store.version().saturating_sub(held.version()),
            clock.saturating_sub(run.last_publish_ns),
        );
    }

    let span_ns = clock;
    let total_pool_ns = sched.total_charged_ns();
    let tenant_reports: Vec<TenantReport> = runs
        .into_iter()
        .enumerate()
        .map(|(i, run)| run.into_report(span_ns, sched.charged_ns(i), total_pool_ns))
        .collect();
    let mut fleet = ServeReport::default();
    let mut freshness = FreshnessLedger::default();
    for t in &tenant_reports {
        fleet.merge(&t.serve);
        freshness.merge(&t.freshness);
    }
    Ok(FleetReport {
        tenants: tenant_reports,
        fleet,
        freshness,
        span_ns,
        wall_ns: wall_start.elapsed().as_nanos() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::AdaptiveBatcher;
    use crate::request::CandidateCount;
    use tcast_dlrm::DlrmConfig;

    #[test]
    fn wfq_shares_track_weights_under_saturation() {
        // Two always-backlogged tenants at 3:1, every batch costing the
        // same: shares must converge to 3:1 exactly.
        let mut s = WfqScheduler::new(&[3, 1]);
        for _ in 0..400 {
            let i = s.pick([0, 1]).unwrap();
            s.charge(i, 1_000);
        }
        let (a, b) = (s.charged_ns(0), s.charged_ns(1));
        assert_eq!(a + b, 400_000);
        let share = a as f64 / (a + b) as f64;
        assert!((share - 0.75).abs() < 0.01, "weight-3 share {share}");
    }

    #[test]
    fn wfq_heterogeneous_costs_still_split_by_weight() {
        // Tenant 0's batches cost 5x tenant 1's; time shares (not batch
        // counts) must still follow the 1:1 weights.
        let mut s = WfqScheduler::new(&[1, 1]);
        for _ in 0..1000 {
            let i = s.pick([0, 1]).unwrap();
            s.charge(i, if i == 0 { 5_000 } else { 1_000 });
        }
        let (a, b) = (s.charged_ns(0) as f64, s.charged_ns(1) as f64);
        let share = a / (a + b);
        assert!((share - 0.5).abs() < 0.01, "time share {share}");
    }

    #[test]
    fn wfq_idle_tenant_does_not_bank_credit() {
        let mut s = WfqScheduler::new(&[1, 1]);
        // Tenant 0 runs alone for a long stretch.
        for _ in 0..100 {
            s.charge(0, 1_000);
        }
        // Tenant 1 wakes; without catch-up it would monopolize the pool
        // for 100 rounds. With catch-up it alternates immediately.
        s.raise_to(1, s.vtime(0));
        let mut consecutive_ones = 0;
        let mut max_consecutive = 0;
        for _ in 0..50 {
            let i = s.pick([0, 1]).unwrap();
            s.charge(i, 1_000);
            if i == 1 {
                consecutive_ones += 1;
                max_consecutive = max_consecutive.max(consecutive_ones);
            } else {
                consecutive_ones = 0;
            }
        }
        assert!(
            max_consecutive <= 1,
            "caught-up tenant must alternate, ran {max_consecutive} in a row"
        );
    }

    #[test]
    fn wfq_ties_break_deterministically_to_the_lowest_index() {
        let s = WfqScheduler::new(&[2, 2, 2]);
        assert_eq!(s.pick([2, 1, 0]), Some(0));
        assert_eq!(s.pick([2, 1]), Some(1));
        assert_eq!(s.pick(std::iter::empty()), None);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn wfq_zero_weight_rejected() {
        WfqScheduler::new(&[1, 0]);
    }

    #[test]
    fn cost_model_is_affine() {
        let c = PoolCostModel {
            batch_overhead_ns: 100,
            ns_per_sample: 7,
        };
        assert_eq!(c.service_ns(0), 100);
        assert_eq!(c.service_ns(10), 170);
    }

    fn tiny_tenant(name: &str, weight: u64, queries: usize, seed: u64) -> Tenant {
        let config = DlrmConfig::tiny();
        let model = Dlrm::new(config.clone(), seed).unwrap();
        let workload = QueryModel::new(
            &config.table_workloads(),
            config.dense_features,
            16,
            CandidateCount::Fixed(2),
            1.1,
            seed,
        );
        Tenant::new(
            TenantSpec {
                name: name.to_string(),
                weight,
                queries,
                arrivals: RateCurve::Constant { qps: 20_000.0 },
                policy: BatchPolicy::Adaptive(AdaptiveBatcher::new(2_000_000, 8, 200_000)),
                sla_ns: 2_000_000,
                shed_unmeetable: true,
                seed,
                publish: Some(PublishCadence::new(5_000_000, seed % 5_000_000)),
                popularity_shift: None,
            },
            &model,
            workload,
        )
    }

    fn run_tiny_fleet() -> FleetReport {
        let mut tenants = vec![tiny_tenant("a", 2, 40, 11), tiny_tenant("b", 1, 30, 22)];
        run_fleet(&mut tenants, &FleetConfig::default()).unwrap()
    }

    #[test]
    fn fleet_completes_every_tenant_and_rolls_up() {
        let report = run_tiny_fleet();
        assert_eq!(report.tenants.len(), 2);
        let a = report.tenant("a").unwrap();
        let b = report.tenant("b").unwrap();
        assert_eq!(a.serve.queries, 40, "scored + shed covers every query");
        assert_eq!(b.serve.queries, 30);
        assert_eq!(a.serve.latency.count() + a.serve.shed, 40);
        assert_eq!(b.serve.latency.count() + b.serve.shed, 30);
        assert_eq!(report.fleet.queries, 70, "rollup sums tenants");
        assert_eq!(report.fleet.sla_ns, a.serve.sla_ns, "rollup adopts an SLA");
        assert_eq!(
            report.freshness.batches(),
            a.freshness.batches() + b.freshness.batches()
        );
        assert!(a.pool_ns > 0 && b.pool_ns > 0);
        assert!((a.pool_share + b.pool_share - 1.0).abs() < 1e-9);
        assert!(report.span_ns > 0);
        // Cadence republishes happened and versions advanced.
        assert!(a.publishes > 0);
        assert!(a.freshness.versions.iter().any(|&v| v > 1));
    }

    #[test]
    fn fleet_runs_are_bit_deterministic() {
        let (r1, r2) = (run_tiny_fleet(), run_tiny_fleet());
        assert_eq!(r1.span_ns, r2.span_ns);
        for (a, b) in r1.tenants.iter().zip(r2.tenants.iter()) {
            assert_eq!(a.pool_ns, b.pool_ns);
            assert_eq!(a.serve.batches, b.serve.batches);
            assert_eq!(a.serve.sla_violations, b.serve.sla_violations);
            assert_eq!(a.serve.shed, b.serve.shed);
            assert_eq!(a.serve.latency.count(), b.serve.latency.count());
            assert_eq!(a.serve.latency.max_ns(), b.serve.latency.max_ns());
            assert_eq!(a.serve.latency.p99_ns(), b.serve.latency.p99_ns());
            assert_eq!(a.publishes, b.publishes);
            assert_eq!(a.freshness.versions, b.freshness.versions);
        }
    }

    #[test]
    fn single_tenant_fleet_owns_the_whole_pool() {
        let mut tenants = vec![tiny_tenant("solo", 1, 25, 7)];
        let report = run_fleet(&mut tenants, &FleetConfig::default()).unwrap();
        let t = &report.tenants[0];
        assert_eq!(t.serve.queries, 25);
        assert!((t.pool_share - 1.0).abs() < 1e-9);
        // Pool time is the busy fraction of the span: positive, and
        // never more than the simulated clock that contains it.
        assert!(t.pool_ns > 0 && t.pool_ns <= report.span_ns);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_fleet_rejected() {
        run_fleet(&mut [], &FleetConfig::default()).unwrap();
    }
}

//! Serving telemetry: latency distribution, throughput, queue shape and
//! SLA accounting.
//!
//! Tail latency is the serving-side figure of merit (DeepRecSys' whole
//! scheduling problem is "meet the p99 SLA"), so the histogram exists to
//! answer percentile queries cheaply: values land in logarithmic buckets
//! (4 sub-buckets per power of two, <= 19% relative width) with no
//! allocation on the record path, and percentiles read back the bucket
//! upper bound — an overestimate by at most one bucket width, which is
//! the conservative direction for SLA reporting.

/// Sub-buckets per power of two (resolution/space trade-off).
const SUBS: usize = 4;
/// Bucket count: 64 octaves x SUBS covers the whole u64 range.
const BUCKETS: usize = 64 * SUBS;

/// A log-bucketed histogram of nanosecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value_ns: u64) -> usize {
        let v = value_ns.max(1);
        let octave = 63 - v.leading_zeros() as usize;
        if octave < 2 {
            // Values 1..4 get exact buckets.
            return v as usize - 1;
        }
        // Top two bits below the leading bit select the sub-bucket.
        let sub = ((v >> (octave - 2)) & 0b11) as usize;
        octave * SUBS + sub
    }

    /// Inclusive upper bound of a bucket (the value a percentile reports).
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket < 2 * SUBS {
            // Octaves 0-1 use the exact buckets 0..3; 3..8 are unused.
            return (bucket as u64 + 1).min(3);
        }
        let octave = bucket / SUBS;
        let sub = (bucket % SUBS) as u64;
        // The bucket holds [2^o + sub*2^(o-2), 2^o + (sub+1)*2^(o-2)).
        (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2)) - 1
    }

    /// Records one value.
    pub fn record(&mut self, value_ns: u64) {
        self.buckets[Self::bucket_of(value_ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_ns);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound, exact for
    /// the extremes: `q = 1.0` reports the true max. Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the q-quantile among `count` sorted samples (1-based,
        // ceil): the smallest rank whose cumulative share is >= q.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Folds `other` into `self`. Because buckets are positional, the
    /// merged histogram is exactly the histogram that would have been
    /// produced by recording both value streams into one instance — so
    /// fleet-level percentiles from merged per-engine histograms equal
    /// the single-histogram answer (unit-tested below).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Recorded values above `threshold_ns` — SLA-violation counting via
    /// buckets would round; this needs exactness, so the caller counts
    /// violations at record time. Provided here for bucket-level
    /// estimates in reports.
    pub fn estimated_above(&self, threshold_ns: u64) -> u64 {
        let cut = Self::bucket_of(threshold_ns);
        self.buckets[cut + 1..].iter().sum()
    }
}

/// Aggregate result of one serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Queries completed — scored plus shed.
    pub queries: u64,
    /// Fused batches executed.
    pub batches: u64,
    /// Samples (candidate items) scored.
    pub samples: u64,
    /// End-to-end per-query latency (arrival to batch completion).
    pub latency: LatencyHistogram,
    /// Per-batch engine service time.
    pub service: LatencyHistogram,
    /// Simulated clock span of the run.
    pub span_ns: u64,
    /// The SLA the run was accounted against.
    pub sla_ns: u64,
    /// Queries whose end-to-end latency exceeded the SLA (exact count).
    pub sla_violations: u64,
    /// Deepest the admission queue got.
    pub max_queue_depth: usize,
    /// Casting-cache hit rate across the engine's per-table caches.
    pub cache_hit_rate: f64,
    /// Queries shed at admission because their deadline had already
    /// become provably unmeetable (0 unless shedding is enabled). Shed
    /// queries count in `queries` but record no latency sample and no
    /// SLA violation — shedding exists to spend the compute on queries
    /// that can still meet the SLA.
    pub shed: u64,
    /// Checkpoint hot-restores performed mid-run (online mode).
    pub restores: u64,
    /// Wall time spent inside hot-restores (also on the simulated
    /// clock).
    pub restore_ns: u64,
}

impl ServeReport {
    /// Served queries per second of simulated time.
    pub fn qps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.span_ns as f64 / 1e9)
    }

    /// Mean queries per fused batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.queries as f64 / self.batches as f64
    }

    /// Fraction of queries that violated the SLA.
    pub fn sla_violation_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.sla_violations as f64 / self.queries as f64
    }

    /// Fraction of queries shed instead of scored.
    pub fn shed_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.shed as f64 / self.queries as f64
    }

    /// Folds `other` into `self`, producing the fleet-level report for
    /// engines that ran concurrently: counters add, histograms merge
    /// (bucket-exact — see [`LatencyHistogram::merge`]), `span_ns` and
    /// `max_queue_depth` take the max (concurrent engines share the
    /// clock), and `cache_hit_rate` is re-weighted by scored queries.
    /// `sla_ns` keeps `self`'s value unless `self` is still the empty
    /// accumulator (`sla_ns == 0`), in which case it adopts `other`'s —
    /// folding tenant reports into a `Default` rollup must not silently
    /// zero the SLA. (Violations were counted per-source against each
    /// source's own SLA, so they stay exact even when tenants' SLAs
    /// differ; a heterogeneous rollup's `sla_ns` is only the first
    /// tenant's and is not used for re-counting.)
    pub fn merge(&mut self, other: &ServeReport) {
        if self.sla_ns == 0 {
            self.sla_ns = other.sla_ns;
        }
        let self_scored = self.queries - self.shed;
        let other_scored = other.queries - other.shed;
        let scored = self_scored + other_scored;
        self.cache_hit_rate = if scored == 0 {
            0.0
        } else {
            (self.cache_hit_rate * self_scored as f64 + other.cache_hit_rate * other_scored as f64)
                / scored as f64
        };
        self.queries += other.queries;
        self.batches += other.batches;
        self.samples += other.samples;
        self.latency.merge(&other.latency);
        self.service.merge(&other.service);
        self.span_ns = self.span_ns.max(other.span_ns);
        self.sla_violations += other.sla_violations;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.shed += other.shed;
        self.restores += other.restores;
        self.restore_ns += other.restore_ns;
    }
}

/// Per-batch model-freshness accounting — the staleness ledger grown
/// into a freshness SLA. Each served batch records the snapshot version
/// it was scored against, how many versions behind the store's head that
/// was, and the snapshot's wall-clock age; p99 model age is the
/// freshness figure of merit, symmetric with p99 latency.
///
/// Both serving modes fill the same ledger — the interleaved oracle
/// (`serve_online`, where "version" is the update count and staleness in
/// versions is always 0) and the concurrent runtime — so freshness is
/// comparable across modes on one schema.
#[derive(Debug, Clone, Default)]
pub struct FreshnessLedger {
    /// Snapshot version each batch was scored against, in batch order.
    pub versions: Vec<u64>,
    /// Versions behind the store head at score time, in batch order.
    pub staleness_versions: Vec<u64>,
    /// Wall-clock model age (ns) at score time.
    pub model_age: LatencyHistogram,
}

impl FreshnessLedger {
    /// Records one served batch.
    pub fn record(&mut self, version: u64, versions_behind: u64, model_age_ns: u64) {
        self.versions.push(version);
        self.staleness_versions.push(versions_behind);
        self.model_age.record(model_age_ns);
    }

    /// Folds `other` into `self` (fleet aggregation). Batch order across
    /// engines is interleaving-dependent, so the per-batch vectors
    /// concatenate; the age histogram merges bucket-exactly.
    pub fn merge(&mut self, other: &FreshnessLedger) {
        self.versions.extend_from_slice(&other.versions);
        self.staleness_versions
            .extend_from_slice(&other.staleness_versions);
        self.model_age.merge(&other.model_age);
    }

    /// Batches recorded.
    pub fn batches(&self) -> u64 {
        self.model_age.count()
    }

    /// p99 wall-clock model age (ns) — the freshness SLA headline.
    pub fn p99_model_age_ns(&self) -> u64 {
        self.model_age.p99_ns()
    }

    /// Worst staleness in versions any batch was served at (0 when
    /// empty).
    pub fn max_staleness_versions(&self) -> u64 {
        self.staleness_versions.iter().copied().max().unwrap_or(0)
    }

    /// Mean staleness in versions (0 when empty).
    pub fn mean_staleness_versions(&self) -> f64 {
        if self.staleness_versions.is_empty() {
            return 0.0;
        }
        self.staleness_versions.iter().sum::<u64>() as f64 / self.staleness_versions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 97);
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_ns());
        assert!(h.min_ns() == 97);
        // Bucket overestimate is bounded by one sub-bucket (< 25%).
        assert!((p50 as f64) >= 0.5 * 1000.0 * 97.0 / 2.0);
        assert!((p50 as f64) < 1.25 * 500.0 * 97.0 + 97.0);
    }

    #[test]
    fn exact_extremes() {
        let mut h = LatencyHistogram::new();
        for v in [5, 10, 20, 40, 80u64] {
            h.record(v);
        }
        assert_eq!(h.quantile_ns(1.0), 80);
        assert_eq!(h.max_ns(), 80);
        assert_eq!(h.min_ns(), 5);
        assert!((h.mean_ns() - 31.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn single_value_reports_itself_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            // Within one bucket of the value, never below the min.
            assert!(v >= 12_345 || q < 1.0, "q={q} -> {v}");
            assert!(v <= 12_345 + 12_345 / 4 + 1, "q={q} -> {v}");
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile_ns(0.34), 2);
        assert_eq!(h.p50_ns(), 2);
    }

    #[test]
    fn bucket_upper_bounds_are_monotonic() {
        let mut last = 0;
        for b in 0..BUCKETS - SUBS {
            let u = LatencyHistogram::bucket_upper(b);
            assert!(u >= last, "bucket {b}: {u} < {last}");
            last = u;
        }
    }

    #[test]
    fn every_value_lands_at_or_below_its_bucket_upper() {
        for shift in 0..40 {
            for off in [0u64, 1, 3, 7] {
                let v = (1u64 << shift) + off;
                let b = LatencyHistogram::bucket_of(v);
                assert!(
                    LatencyHistogram::bucket_upper(b) >= v,
                    "value {v} above its bucket bound"
                );
            }
        }
    }

    #[test]
    fn merged_histogram_equals_single_histogram_over_both_streams() {
        // Two disjoint streams recorded separately then merged must
        // report the same percentiles as one histogram fed everything.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut oracle = LatencyHistogram::new();
        for v in 1..=700u64 {
            a.record(v * 131);
            oracle.record(v * 131);
        }
        for v in 1..=300u64 {
            b.record(v * 17 + 5);
            oracle.record(v * 17 + 5);
        }
        a.merge(&b);
        assert_eq!(a.count(), oracle.count());
        assert_eq!(a.min_ns(), oracle.min_ns());
        assert_eq!(a.max_ns(), oracle.max_ns());
        assert!((a.mean_ns() - oracle.mean_ns()).abs() < 1e-9);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile_ns(q), oracle.quantile_ns(q), "q={q}");
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(42);
        a.record(4200);
        let before = (a.count(), a.min_ns(), a.max_ns(), a.p99_ns());
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.min_ns(), a.max_ns(), a.p99_ns()), before);
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.min_ns(), a.min_ns());
        assert_eq!(empty.max_ns(), a.max_ns());
    }

    #[test]
    fn report_merge_aggregates_counters_and_reweights_cache_hits() {
        let mut a = ServeReport {
            queries: 100,
            batches: 20,
            samples: 800,
            span_ns: 5_000,
            sla_ns: 1_000_000,
            sla_violations: 2,
            max_queue_depth: 7,
            cache_hit_rate: 0.5,
            shed: 20, // 80 scored
            ..Default::default()
        };
        a.latency.record(100);
        a.service.record(60);
        let mut b = ServeReport {
            queries: 40,
            batches: 10,
            samples: 320,
            span_ns: 9_000,
            sla_ns: 1_000_000,
            sla_violations: 1,
            max_queue_depth: 3,
            cache_hit_rate: 0.8,
            shed: 0, // 40 scored
            restores: 1,
            restore_ns: 77,
            ..Default::default()
        };
        b.latency.record(900);
        b.service.record(400);
        a.merge(&b);
        // Every counter the report has grown since PR 4 must survive the
        // fold — a missed field silently corrupts fleet rollups.
        assert_eq!(a.queries, 140);
        assert_eq!(a.batches, 30);
        assert_eq!(a.samples, 1120);
        assert_eq!(a.span_ns, 9_000);
        assert_eq!(a.sla_ns, 1_000_000);
        assert_eq!(a.sla_violations, 3);
        assert_eq!(a.max_queue_depth, 7);
        assert_eq!(a.shed, 20);
        assert_eq!(a.restores, 1);
        assert_eq!(a.restore_ns, 77);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.max_ns(), 900);
        assert_eq!(a.service.count(), 2);
        assert_eq!(a.service.max_ns(), 400);
        // (0.5 * 80 + 0.8 * 40) / 120 = 0.6
        assert!((a.cache_hit_rate - 0.6).abs() < 1e-9);
    }

    #[test]
    fn report_merge_into_default_rollup_adopts_the_sla() {
        // The fleet rollup pattern: fold tenant reports into a Default
        // accumulator. The first fold must pick up the SLA instead of
        // pinning it at 0.
        let t0 = ServeReport {
            queries: 10,
            sla_ns: 20_000_000,
            sla_violations: 1,
            ..Default::default()
        };
        let t1 = ServeReport {
            queries: 5,
            sla_ns: 40_000_000,
            sla_violations: 2,
            ..Default::default()
        };
        let mut fleet = ServeReport::default();
        fleet.merge(&t0);
        fleet.merge(&t1);
        assert_eq!(fleet.sla_ns, 20_000_000, "first tenant's SLA adopted");
        assert_eq!(fleet.queries, 15);
        assert_eq!(fleet.sla_violations, 3, "violations stay per-source exact");
    }

    #[test]
    fn freshness_ledger_records_and_merges() {
        let mut a = FreshnessLedger::default();
        a.record(1, 0, 1_000);
        a.record(2, 1, 2_000);
        let mut b = FreshnessLedger::default();
        b.record(2, 0, 500);
        b.record(3, 4, 8_000);
        a.merge(&b);
        assert_eq!(a.batches(), 4);
        assert_eq!(a.versions, vec![1, 2, 2, 3]);
        assert_eq!(a.max_staleness_versions(), 4);
        assert!((a.mean_staleness_versions() - 1.25).abs() < 1e-9);
        assert!(a.p99_model_age_ns() >= 8_000);
        assert_eq!(FreshnessLedger::default().max_staleness_versions(), 0);
        assert_eq!(FreshnessLedger::default().mean_staleness_versions(), 0.0);
    }

    #[test]
    fn report_rates() {
        let mut r = ServeReport {
            queries: 100,
            batches: 25,
            span_ns: 1_000_000_000,
            sla_violations: 3,
            shed: 8,
            ..Default::default()
        };
        r.sla_ns = 1_000_000;
        assert!((r.qps() - 100.0).abs() < 1e-9);
        assert!((r.mean_batch() - 4.0).abs() < 1e-9);
        assert!((r.sla_violation_rate() - 0.03).abs() < 1e-9);
        assert!((r.shed_rate() - 0.08).abs() < 1e-9);
        assert_eq!(ServeReport::default().qps(), 0.0);
        assert_eq!(ServeReport::default().shed_rate(), 0.0);
    }
}

//! Serving telemetry: latency distribution, throughput, queue shape and
//! SLA accounting.
//!
//! Tail latency is the serving-side figure of merit (DeepRecSys' whole
//! scheduling problem is "meet the p99 SLA"), so the histogram exists to
//! answer percentile queries cheaply: values land in logarithmic buckets
//! (4 sub-buckets per power of two, <= 19% relative width) with no
//! allocation on the record path, and percentiles read back the bucket
//! upper bound — an overestimate by at most one bucket width, which is
//! the conservative direction for SLA reporting.

/// Sub-buckets per power of two (resolution/space trade-off).
const SUBS: usize = 4;
/// Bucket count: 64 octaves x SUBS covers the whole u64 range.
const BUCKETS: usize = 64 * SUBS;

/// A log-bucketed histogram of nanosecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value_ns: u64) -> usize {
        let v = value_ns.max(1);
        let octave = 63 - v.leading_zeros() as usize;
        if octave < 2 {
            // Values 1..4 get exact buckets.
            return v as usize - 1;
        }
        // Top two bits below the leading bit select the sub-bucket.
        let sub = ((v >> (octave - 2)) & 0b11) as usize;
        octave * SUBS + sub
    }

    /// Inclusive upper bound of a bucket (the value a percentile reports).
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket < 2 * SUBS {
            // Octaves 0-1 use the exact buckets 0..3; 3..8 are unused.
            return (bucket as u64 + 1).min(3);
        }
        let octave = bucket / SUBS;
        let sub = (bucket % SUBS) as u64;
        // The bucket holds [2^o + sub*2^(o-2), 2^o + (sub+1)*2^(o-2)).
        (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2)) - 1
    }

    /// Records one value.
    pub fn record(&mut self, value_ns: u64) {
        self.buckets[Self::bucket_of(value_ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value_ns);
        self.min = self.min.min(value_ns);
        self.max = self.max.max(value_ns);
    }

    /// Recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound, exact for
    /// the extremes: `q = 1.0` reports the true max. Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the q-quantile among `count` sorted samples (1-based,
        // ceil): the smallest rank whose cumulative share is >= q.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Recorded values above `threshold_ns` — SLA-violation counting via
    /// buckets would round; this needs exactness, so the caller counts
    /// violations at record time. Provided here for bucket-level
    /// estimates in reports.
    pub fn estimated_above(&self, threshold_ns: u64) -> u64 {
        let cut = Self::bucket_of(threshold_ns);
        self.buckets[cut + 1..].iter().sum()
    }
}

/// Aggregate result of one serving run.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Queries completed — scored plus shed.
    pub queries: u64,
    /// Fused batches executed.
    pub batches: u64,
    /// Samples (candidate items) scored.
    pub samples: u64,
    /// End-to-end per-query latency (arrival to batch completion).
    pub latency: LatencyHistogram,
    /// Per-batch engine service time.
    pub service: LatencyHistogram,
    /// Simulated clock span of the run.
    pub span_ns: u64,
    /// The SLA the run was accounted against.
    pub sla_ns: u64,
    /// Queries whose end-to-end latency exceeded the SLA (exact count).
    pub sla_violations: u64,
    /// Deepest the admission queue got.
    pub max_queue_depth: usize,
    /// Casting-cache hit rate across the engine's per-table caches.
    pub cache_hit_rate: f64,
    /// Queries shed at admission because their deadline had already
    /// become provably unmeetable (0 unless shedding is enabled). Shed
    /// queries count in `queries` but record no latency sample and no
    /// SLA violation — shedding exists to spend the compute on queries
    /// that can still meet the SLA.
    pub shed: u64,
    /// Checkpoint hot-restores performed mid-run (online mode).
    pub restores: u64,
    /// Wall time spent inside hot-restores (also on the simulated
    /// clock).
    pub restore_ns: u64,
}

impl ServeReport {
    /// Served queries per second of simulated time.
    pub fn qps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.queries as f64 / (self.span_ns as f64 / 1e9)
    }

    /// Mean queries per fused batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.queries as f64 / self.batches as f64
    }

    /// Fraction of queries that violated the SLA.
    pub fn sla_violation_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.sla_violations as f64 / self.queries as f64
    }

    /// Fraction of queries shed instead of scored.
    pub fn shed_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.shed as f64 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 97);
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.p50_ns(), h.p95_ns(), h.p99_ns());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_ns());
        assert!(h.min_ns() == 97);
        // Bucket overestimate is bounded by one sub-bucket (< 25%).
        assert!((p50 as f64) >= 0.5 * 1000.0 * 97.0 / 2.0);
        assert!((p50 as f64) < 1.25 * 500.0 * 97.0 + 97.0);
    }

    #[test]
    fn exact_extremes() {
        let mut h = LatencyHistogram::new();
        for v in [5, 10, 20, 40, 80u64] {
            h.record(v);
        }
        assert_eq!(h.quantile_ns(1.0), 80);
        assert_eq!(h.max_ns(), 80);
        assert_eq!(h.min_ns(), 5);
        assert!((h.mean_ns() - 31.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn single_value_reports_itself_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile_ns(q);
            // Within one bucket of the value, never below the min.
            assert!(v >= 12_345 || q < 1.0, "q={q} -> {v}");
            assert!(v <= 12_345 + 12_345 / 4 + 1, "q={q} -> {v}");
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile_ns(0.34), 2);
        assert_eq!(h.p50_ns(), 2);
    }

    #[test]
    fn bucket_upper_bounds_are_monotonic() {
        let mut last = 0;
        for b in 0..BUCKETS - SUBS {
            let u = LatencyHistogram::bucket_upper(b);
            assert!(u >= last, "bucket {b}: {u} < {last}");
            last = u;
        }
    }

    #[test]
    fn every_value_lands_at_or_below_its_bucket_upper() {
        for shift in 0..40 {
            for off in [0u64, 1, 3, 7] {
                let v = (1u64 << shift) + off;
                let b = LatencyHistogram::bucket_of(v);
                assert!(
                    LatencyHistogram::bucket_upper(b) >= v,
                    "value {v} above its bucket bound"
                );
            }
        }
    }

    #[test]
    fn report_rates() {
        let mut r = ServeReport {
            queries: 100,
            batches: 25,
            span_ns: 1_000_000_000,
            sla_violations: 3,
            shed: 8,
            ..Default::default()
        };
        r.sla_ns = 1_000_000;
        assert!((r.qps() - 100.0).abs() < 1e-9);
        assert!((r.mean_batch() - 4.0).abs() < 1e-9);
        assert!((r.sla_violation_rate() - 0.03).abs() < 1e-9);
        assert!((r.shed_rate() - 0.08).abs() < 1e-9);
        assert_eq!(ServeReport::default().qps(), 0.0);
        assert_eq!(ServeReport::default().shed_rate(), 0.0);
    }
}

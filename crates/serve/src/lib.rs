//! **tcast-serve** — SLA-aware batched inference serving over the
//! Tensor-Casting training substrate, with an online-training mode.
//!
//! Training made this repository fast (casted backward, parallel
//! scatter, pipelined lookahead); this crate makes the trained model
//! *servable*. At-scale recommendation inference is dominated not by any
//! single forward pass but by the batching/scheduling decisions that
//! fuse concurrent user queries into model batches under a tail-latency
//! SLA (DeepRecSys), and the serving path has to coexist with the
//! embedding-heavy training substrate it shares tables with (MP-Rec).
//! The pieces:
//!
//! * [`request`] — the seeded query workload: a catalog of distinct
//!   queries (candidate-set sizes from a configurable distribution,
//!   sparse features from the `tcast-datasets` popularity models) drawn
//!   through a Zipf hot-query skew, arriving open-loop (Poisson) or
//!   closed-loop;
//! * [`queue`] — the admission queue with three batching policies:
//!   fixed-size, deadline/max-wait, and DeepRecSys-style adaptive batch
//!   sizing that hill-climbs toward the SLA;
//! * [`engine`] — the zero-alloc batched scoring engine over a frozen
//!   [`Dlrm`]: fused dense stack, per-query demux, and a hot-query fast
//!   path that memoizes casting transforms in per-table LRU
//!   [`CastingCache`]s and pools embeddings through the deduplicated
//!   casted forward;
//! * [`stats`] — latency histograms (p50/p95/p99), QPS, queue depth and
//!   SLA-violation accounting;
//! * [`online`] — the serving loop, including the online-training mode
//!   that interleaves casted [`Trainer`] update steps with serving,
//!   tracking model staleness;
//! * [`concurrent`] — *true* concurrent train-and-serve: the trainer
//!   publishes epoch-versioned snapshots (`tcast-snapshot`) every K
//!   steps while N engines score consistent snapshots on separate pool
//!   workers under a freshness SLA (p99 model age), with hot-swap and
//!   rollback drills that never pause serving;
//! * [`fleet`] — the multi-tenant serving fleet: N tenants, each with
//!   its own model/snapshot store, admission queue, SLA and shedding,
//!   share one execution pool under a deterministic virtual-time
//!   weighted-fair scheduler, driven by scenario arrival curves
//!   (diurnal, flash crowd) and mid-run popularity shifts — the
//!   cross-tenant isolation layer, with per-tenant and merged rollups.
//!
//! # The serving invariant
//!
//! A fused batch of queries scores **bit-identically** to scoring each
//! query alone: embedding pooling accumulates per output row in casted
//! (ascending-`src`) order — independent of batch composition — and
//! every dense kernel is row-independent. Batching is a pure scheduling
//! decision. Likewise, online-mode update steps are bit-identical to the
//! offline [`Trainer`] fed the same batches: serving reads the model
//! through `&` only. Both are property-tested in `tests/serving.rs`.
//!
//! # Example
//!
//! ```
//! use tcast_serve::{
//!     serve, ArrivalProcess, BatchPolicy, CandidateCount, QueryModel, ServeConfig, ServeEngine,
//! };
//! use tcast_dlrm::{Dlrm, DlrmConfig};
//!
//! # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
//! let config = DlrmConfig::tiny();
//! let model = Dlrm::new(config.clone(), 42)?;
//! let mut workload = QueryModel::new(
//!     &config.table_workloads(),
//!     config.dense_features,
//!     64,                          // catalog of distinct queries
//!     CandidateCount::Fixed(4),    // items scored per query
//!     1.1,                         // hot-query Zipf skew
//!     7,
//! );
//! let mut engine = ServeEngine::with_defaults(&model);
//! let report = serve(
//!     &mut engine,
//!     &model,
//!     &mut workload,
//!     &ServeConfig {
//!         queries: 64,
//!         arrivals: ArrivalProcess::Poisson { mean_qps: 100_000.0 },
//!         policy: BatchPolicy::Fixed { batch: 8 },
//!         sla_ns: 10_000_000,
//!         seed: 1,
//!         shed_unmeetable: false,
//!     },
//! )?;
//! assert_eq!(report.queries, 64);
//! println!("p99 {} us at {:.0} qps", report.latency.p99_ns() / 1000, report.qps());
//! # Ok(())
//! # }
//! ```
//!
//! [`Dlrm`]: tcast_dlrm::Dlrm
//! [`Trainer`]: tcast_dlrm::Trainer
//! [`CastingCache`]: tcast_core::CastingCache

pub mod concurrent;
pub mod engine;
pub mod fleet;
pub mod online;
pub mod queue;
pub mod request;
pub mod stats;

pub use concurrent::{
    serve_concurrent, ConcurrentConfig, ConcurrentError, ConcurrentReport, HotSwap, RollbackDrill,
    ServedBatchRecord, TrainReport,
};
pub use engine::{ScoredBatch, ServeEngine, DEFAULT_CACHE_CAPACITY};
pub use fleet::{
    run_fleet, FleetConfig, FleetReport, PoolCostModel, PopularityShift, Tenant, TenantReport,
    TenantSpec, WfqScheduler,
};
pub use online::{
    serve, serve_online, HotRestore, OnlineConfig, OnlineReport, ServeConfig, ServeError,
};
pub use queue::{AdaptiveBatcher, AdmissionQueue, BatchPolicy, Decision, QueuedQuery};
pub use request::{ArrivalProcess, CandidateCount, Query, QueryModel, RateCurve};
pub use stats::{FreshnessLedger, LatencyHistogram, ServeReport};
pub use tcast_snapshot::{ModelSnapshot, PublishCadence, SnapshotError, SnapshotStore};

//! The batched inference engine: fuse many queries into one model batch,
//! score it, and demux per-query results.
//!
//! The engine is built around three invariants:
//!
//! * **Zero steady-state allocation.** Every intermediate — the fused
//!   dense matrix, per-table pooled embeddings, MLP scratch, logits, the
//!   demux offsets — lives in engine-owned buffers recycled across
//!   batches (`zero_into`-style). After the first batch sizes them,
//!   scoring allocates nothing; the only exception is a casting-cache
//!   *miss*, which allocates its memoized array once.
//! * **Fusion is bit-transparent.** A query's scores are bit-identical
//!   whether it is scored alone or fused with any other queries: the
//!   embedding pooling accumulates per output row in the casted
//!   (ascending-`src`) order, which does not depend on batch
//!   composition, and every dense kernel is row-independent. Serving
//!   batches is therefore purely a scheduling decision, never a
//!   numerical one — property-tested in `tests/serving.rs`.
//! * **The model is shared, frozen, `&`.** Scoring reads the [`Dlrm`]
//!   through `&self` only, so the online loop can interleave trainer
//!   update steps with serving without the engine holding any model
//!   state hostage — and the update trajectory is bit-identical to
//!   offline training by construction.
//!
//! The hot-query fast path: per-table [`CastingCache`]s memoize the
//! casting transform of repeated index arrays (hot queries), so a
//! repeated query pays only the deduplicated
//! [`casted_embedding_forward_into`] accumulate — each *unique*
//! embedding row fetched once per query — instead of the
//! sort-transform plus the full per-lookup gather.

use std::sync::Arc;

use crate::queue::QueuedQuery;
use crate::request::Query;
use tcast_core::{casted_embedding_forward_into, CastingCache};
use tcast_dlrm::{Dlrm, Execution, InferenceScratch};
use tcast_embedding::EmbeddingError;
use tcast_pool::Exec;
use tcast_tensor::Matrix;

/// Default per-table casting-cache capacity (entries, i.e. distinct hot
/// queries memoized per table).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// The zero-alloc batched scoring engine.
pub struct ServeEngine {
    execution: Execution,
    /// One casting cache per embedding table.
    caches: Vec<CastingCache>,
    scratch: InferenceScratch,
    /// Fused dense features, `total_samples x dense_features`.
    dense: Matrix,
    /// Fused logits, `total_samples x 1`.
    logits: Matrix,
    /// Per-query sample offsets into the fused batch; one extra trailing
    /// entry holds the total, so query `i`'s scores are rows
    /// `offsets[i]..offsets[i+1]`.
    offsets: Vec<usize>,
    queries_scored: u64,
    batches_scored: u64,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("execution", &self.execution)
            .field("tables", &self.caches.len())
            .field("queries_scored", &self.queries_scored)
            .field("batches_scored", &self.batches_scored)
            .finish()
    }
}

/// A scored fused batch: borrow of the engine's logits plus the demux
/// offsets. Valid until the next `score` call.
#[derive(Debug)]
pub struct ScoredBatch<'a> {
    logits: &'a Matrix,
    offsets: &'a [usize],
}

impl ScoredBatch<'_> {
    /// Queries in the batch.
    pub fn num_queries(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total candidate samples scored.
    pub fn num_samples(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Query `i`'s per-candidate scores (logits), demuxed from the fused
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn scores(&self, i: usize) -> &[f32] {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        &self.logits.as_slice()[lo..hi]
    }

    /// All fused logits in admission order (row per sample).
    pub fn fused_logits(&self) -> &Matrix {
        self.logits
    }
}

impl ServeEngine {
    /// An engine for `model`'s shape, with per-table casting caches of
    /// `cache_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cache_capacity == 0`.
    pub fn new(model: &Dlrm, cache_capacity: usize, execution: Execution) -> Self {
        Self {
            execution,
            caches: (0..model.num_tables())
                .map(|_| CastingCache::new(cache_capacity))
                .collect(),
            scratch: InferenceScratch::default(),
            dense: Matrix::default(),
            logits: Matrix::default(),
            offsets: Vec::new(),
            queries_scored: 0,
            batches_scored: 0,
        }
    }

    /// An engine with the [`DEFAULT_CACHE_CAPACITY`].
    pub fn with_defaults(model: &Dlrm) -> Self {
        Self::new(model, DEFAULT_CACHE_CAPACITY, Execution::Serial)
    }

    /// Queries scored so far.
    pub fn queries_scored(&self) -> u64 {
        self.queries_scored
    }

    /// Fused batches scored so far.
    pub fn batches_scored(&self) -> u64 {
        self.batches_scored
    }

    /// Aggregate hit rate of the per-table casting caches.
    pub fn cache_hit_rate(&self) -> f64 {
        let (hits, total) = self.caches.iter().fold((0u64, 0u64), |(h, t), c| {
            (h + c.hits(), t + c.hits() + c.misses())
        });
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }

    /// Aggregate evictions across the per-table casting caches.
    pub fn cache_evictions(&self) -> u64 {
        self.caches.iter().map(CastingCache::evictions).sum()
    }

    /// Scores a fused batch of queries against `model`, in order.
    /// Returns the demuxable view; the underlying buffers are recycled
    /// on the next call. The query stream is iterated once per fusion
    /// pass (hence `Clone`), so the steady-state call allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns an error when a query disagrees with the model's shape
    /// (table count, dense width, index range) or the batch is empty.
    pub fn score<'q, I>(
        &mut self,
        model: &Dlrm,
        queries: I,
    ) -> Result<ScoredBatch<'_>, EmbeddingError>
    where
        I: IntoIterator<Item = &'q Arc<Query>> + Clone,
    {
        // Pass 1: validate and lay out the fused batch.
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0usize;
        for q in queries.clone() {
            if q.indices.len() != model.num_tables() {
                return Err(EmbeddingError::LengthMismatch {
                    expected: model.num_tables(),
                    found: q.indices.len(),
                });
            }
            if q.dense.cols() != model.config().dense_features {
                return Err(EmbeddingError::DimMismatch {
                    expected: model.config().dense_features,
                    found: q.dense.cols(),
                });
            }
            for idx in q.indices.iter() {
                if idx.num_outputs() != q.candidates() {
                    return Err(EmbeddingError::LengthMismatch {
                        expected: q.candidates(),
                        found: idx.num_outputs(),
                    });
                }
            }
            total += q.candidates();
            self.offsets.push(total);
        }
        let num_queries = self.offsets.len() - 1;
        if num_queries == 0 {
            return Err(EmbeddingError::InvalidIndex(
                "cannot score an empty batch".to_string(),
            ));
        }

        let exec = match &self.execution {
            Execution::Serial => Exec::Serial,
            Execution::Pooled(pool) => Exec::pooled(pool.as_ref()),
        };
        let dim = model.config().embedding_dim;

        // Pass 2: fuse dense features.
        self.dense.zero_into(total, model.config().dense_features);
        for (qi, q) in queries.clone().into_iter().enumerate() {
            let lo = self.offsets[qi];
            for r in 0..q.candidates() {
                self.dense.row_mut(lo + r).copy_from_slice(q.dense.row(r));
            }
        }

        // Pass 3: pooled embeddings, per query per table, through the
        // casting-cache fast path. Accumulation order per output row is
        // the casted order — independent of batch composition, which is
        // what makes fusion bit-transparent.
        let pooled = self.scratch.pooled_mut();
        pooled.resize_with(model.num_tables(), Matrix::default);
        for (t, (cache, out)) in self.caches.iter_mut().zip(pooled.iter_mut()).enumerate() {
            out.zero_into(total, dim);
            for (qi, q) in queries.clone().into_iter().enumerate() {
                let casted = cache.get_or_cast(&q.indices[t]);
                casted_embedding_forward_into(model.table(t), casted, out, self.offsets[qi])?;
            }
        }

        // Pass 4: the fused dense stack.
        model
            .dense_infer_into(&self.dense, &mut self.scratch, &mut self.logits, exec)
            .map_err(EmbeddingError::from)?;

        self.queries_scored += num_queries as u64;
        self.batches_scored += 1;
        Ok(ScoredBatch {
            logits: &self.logits,
            offsets: &self.offsets,
        })
    }

    /// [`ServeEngine::score`] over queue entries (the serve loop's form).
    ///
    /// # Errors
    ///
    /// Returns an error when a query disagrees with the model's shape.
    pub fn score_queued(
        &mut self,
        model: &Dlrm,
        queued: &[QueuedQuery],
    ) -> Result<ScoredBatch<'_>, EmbeddingError> {
        self.score(model, queued.iter().map(|q| &q.query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CandidateCount, QueryModel};
    use tcast_dlrm::DlrmConfig;

    fn model() -> Dlrm {
        Dlrm::new(DlrmConfig::tiny(), 11).unwrap()
    }

    fn workload(seed: u64) -> QueryModel {
        let cfg = DlrmConfig::tiny();
        QueryModel::new(
            &cfg.table_workloads(),
            cfg.dense_features,
            16,
            CandidateCount::Uniform { min: 1, max: 6 },
            1.0,
            seed,
        )
    }

    #[test]
    fn fused_scores_demux_to_per_query_scores() {
        let m = model();
        let mut wl = workload(5);
        let mut engine = ServeEngine::with_defaults(&m);
        let queries: Vec<_> = (0..6).map(|_| wl.draw()).collect();
        let mut solo_scores: Vec<Vec<f32>> = Vec::new();
        {
            let mut solo_engine = ServeEngine::with_defaults(&m);
            for q in &queries {
                let sb = solo_engine.score(&m, std::iter::once(q)).unwrap();
                solo_scores.push(sb.scores(0).to_vec());
            }
        }
        let fused = engine.score(&m, queries.iter()).unwrap();
        assert_eq!(fused.num_queries(), 6);
        for (i, solo) in solo_scores.iter().enumerate() {
            assert_eq!(
                fused.scores(i),
                solo.as_slice(),
                "query {i} scores must be bit-identical fused vs solo"
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_casting_cache() {
        let m = model();
        let mut wl = workload(7);
        let mut engine = ServeEngine::with_defaults(&m);
        let q = wl.draw();
        let first = engine.score(&m, std::iter::once(&q)).unwrap();
        let first_scores = first.scores(0).to_vec();
        assert_eq!(engine.cache_hit_rate(), 0.0);
        let again = engine.score(&m, std::iter::once(&q)).unwrap();
        assert_eq!(again.scores(0), first_scores.as_slice());
        // Second scoring: every per-table cast was a hit.
        assert!(engine.cache_hit_rate() >= 0.5 - 1e-12);
        assert_eq!(engine.queries_scored(), 2);
        assert_eq!(engine.batches_scored(), 2);
    }

    #[test]
    fn cache_state_never_changes_scores() {
        // The fast path must be a pure memo: a cold engine and a warm
        // engine produce bit-identical scores.
        let m = model();
        let mut wl = workload(9);
        let queries: Vec<_> = (0..12).map(|_| wl.draw()).collect();
        let mut warm = ServeEngine::new(&m, 2, Execution::Serial); // tiny cache: constant churn
        let mut cold_scores = Vec::new();
        for q in &queries {
            let mut cold = ServeEngine::with_defaults(&m);
            cold_scores.push(
                cold.score(&m, std::iter::once(q))
                    .unwrap()
                    .scores(0)
                    .to_vec(),
            );
        }
        for (q, expect) in queries.iter().zip(cold_scores.iter()) {
            let sb = warm.score(&m, std::iter::once(q)).unwrap();
            assert_eq!(sb.scores(0), expect.as_slice());
        }
        assert!(warm.cache_evictions() > 0, "tiny cache must have churned");
    }

    #[test]
    fn rejects_mismatched_queries() {
        let m = model();
        let mut wl = workload(1);
        let q = wl.draw();
        let mut engine = ServeEngine::with_defaults(&m);
        // Wrong table count.
        let bad = Arc::new(Query {
            id: 999,
            dense: q.dense.clone(),
            indices: q.indices[..1].to_vec().into(),
        });
        assert!(engine.score(&m, std::iter::once(&bad)).is_err());
        // Empty batch.
        assert!(engine.score(&m, std::iter::empty()).is_err());
    }

    #[test]
    fn pooled_execution_scores_bit_identically() {
        let m = model();
        let mut wl = workload(13);
        let queries: Vec<_> = (0..5).map(|_| wl.draw()).collect();
        let mut serial = ServeEngine::with_defaults(&m);
        let pool = Arc::new(tcast_pool::Pool::new(4));
        let mut pooled = ServeEngine::new(&m, DEFAULT_CACHE_CAPACITY, Execution::Pooled(pool));
        let a = serial.score(&m, queries.iter()).unwrap();
        let a_logits = a.fused_logits().as_slice().to_vec();
        let b = pooled.score(&m, queries.iter()).unwrap();
        assert_eq!(b.fused_logits().as_slice(), a_logits.as_slice());
    }
}

//! The serving loop — and the online-training mode that interleaves it
//! with casted update steps.
//!
//! # The clock
//!
//! The loop runs a *hybrid* discrete-event simulation: query arrivals
//! live on a simulated nanosecond clock (so a seeded workload produces
//! the same arrival schedule on any machine), while service and
//! training-step durations are measured wall-clock from actually running
//! the engine/trainer and advance the simulated clock by the measured
//! amount. Latencies, QPS and SLA accounting therefore reflect real
//! compute on this host, while the arrival pattern stays reproducible.
//!
//! # Online training
//!
//! [`OnlineConfig`] interleaves trainer update steps from a
//! [`BatchSource`] between fused serving batches: after every
//! `update_every` batches the loop runs one casted [`Trainer::step`].
//! Serving reads the model through `&` only (the engine owns all its
//! scratch), so **the update trajectory is bit-identical to the offline
//! trainer fed the same batch stream** — the serving subsystem changes
//! *when* the model advances, never *how* (property-tested in
//! `tests/serving.rs`). What serving adds is *staleness*: queries are
//! scored by a model some number of update steps old, tracked per batch
//! in [`OnlineReport`].
//!
//! The update slot pays two costs, both accounted on the simulated
//! clock: *generating* the training batch ([`OnlineReport::gen_ns`])
//! and the step itself ([`OnlineReport::train_ns`]). Passing a
//! `tcast_datasets::PrefetchSource` as the batch source moves
//! generation onto a background producer thread that overlaps serving
//! *and* update slots, collapsing `gen_ns` to the residual the
//! producer could not stay ahead of — with an update trajectory still
//! bit-identical (prefetching reorders nothing).

use std::collections::VecDeque;
use std::fs::File;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::engine::ServeEngine;
use crate::queue::{AdmissionQueue, BatchPolicy, Decision, QueuedQuery};
use crate::request::{ArrivalProcess, Query, QueryModel};
use crate::stats::{FreshnessLedger, LatencyHistogram, ServeReport};
use tcast_datasets::BatchSource;
use tcast_dlrm::checkpoint::{read_train_checkpoint, CheckpointError};
use tcast_dlrm::Trainer;
use tcast_embedding::EmbeddingError;
use tcast_tensor::SplitMix64;

/// A serving run's shape: how much traffic, how it arrives, how it is
/// batched, and the SLA it is accounted against.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total queries to serve.
    pub queries: usize,
    /// Arrival model.
    pub arrivals: ArrivalProcess,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Tail-latency target for violation accounting (and the adaptive
    /// policy's setpoint).
    pub sla_ns: u64,
    /// Arrival-schedule seed.
    pub seed: u64,
    /// Graceful degradation under overload: before every scheduling
    /// decision, shed the queries whose deadline is already provably
    /// unmeetable (waited `sla_ns` or longer — service time would only
    /// push them further past the SLA). Shed queries complete their
    /// closed-loop clients without being scored and are counted in
    /// [`ServeReport::shed`] instead of the latency histogram.
    pub shed_unmeetable: bool,
}

/// A mid-run checkpoint hot-restore (see [`OnlineConfig::restore`]).
#[derive(Debug, Clone)]
pub struct HotRestore {
    /// The checkpoint file to restore (a `.tckp` written by
    /// `tcast_dlrm::checkpoint`).
    pub path: PathBuf,
    /// Restore once the trainer has taken this many online update steps
    /// (0 restores before the first update).
    pub at_update: u64,
}

/// Online-training knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Run one trainer update step after every this many fused serving
    /// batches.
    pub update_every: usize,
    /// Optionally hot-restore a checkpoint into the trainer mid-traffic
    /// — the recovery drill: serving continues, the model snaps back to
    /// the checkpointed state, and the restore's wall-clock cost lands
    /// on the simulated clock and in [`ServeReport::restore_ns`].
    pub restore: Option<HotRestore>,
}

/// What can go wrong in a serving run.
#[derive(Debug)]
pub enum ServeError {
    /// Scoring or an online update step failed (shape/index mismatch,
    /// exhausted batch source).
    Score(EmbeddingError),
    /// A mid-run checkpoint hot-restore failed (I/O, corruption, or a
    /// checkpoint that does not match the serving trainer).
    Restore(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Score(e) => write!(f, "serving failed: {e}"),
            ServeError::Restore(e) => write!(f, "hot-restore failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Score(e) => Some(e),
            ServeError::Restore(e) => Some(e),
        }
    }
}

impl From<EmbeddingError> for ServeError {
    fn from(e: EmbeddingError) -> Self {
        ServeError::Score(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Restore(e)
    }
}

/// What online training did during a serving run.
#[derive(Debug, Clone, Default)]
pub struct OnlineReport {
    /// Update steps taken.
    pub updates: u64,
    /// Per-step training losses, in order.
    pub losses: Vec<f32>,
    /// Wall time spent inside update steps (also on the simulated clock).
    pub train_ns: u64,
    /// Wall time the update slot spent blocked in the batch source's
    /// `next_batch` — the *generation* cost paid inside the serving
    /// loop (also on the simulated clock). With an inline source this
    /// is the full cost of generating each training batch; wrapping the
    /// source in a `PrefetchSource` moves generation onto a background
    /// producer that overlaps both serving and update slots, collapsing
    /// this to ~0 (`serve_throughput` records both).
    pub gen_ns: u64,
    /// Per-batch model staleness, in *update steps behind*: how many
    /// serving batches were scored at each staleness level is what the
    /// histogram of this vector shows; entry `i` is the staleness of
    /// fused batch `i` (0 = scored by a just-updated model).
    pub staleness_batches: Vec<u64>,
    /// Per-batch freshness on the schema shared with the concurrent
    /// runtime: model version (1 + mutations so far — update steps and
    /// hot-restores both advance it), staleness in versions (always 0
    /// here: interleaved serving always scores the newest model), and
    /// wall-clock model age.
    pub freshness: FreshnessLedger,
}

impl OnlineReport {
    /// Largest number of batches served between two updates.
    pub fn max_staleness(&self) -> u64 {
        self.staleness_batches.iter().copied().max().unwrap_or(0)
    }

    /// Mean staleness over served batches.
    pub fn mean_staleness(&self) -> f64 {
        if self.staleness_batches.is_empty() {
            return 0.0;
        }
        self.staleness_batches.iter().sum::<u64>() as f64 / self.staleness_batches.len() as f64
    }
}

/// Drives a [`ServeEngine`] over a seeded workload: admission, batching,
/// scoring, accounting — the inference-only loop.
///
/// # Errors
///
/// Returns an error if a query disagrees with the model's shape.
pub fn serve(
    engine: &mut ServeEngine,
    model: &tcast_dlrm::Dlrm,
    workload: &mut QueryModel,
    config: &ServeConfig,
) -> Result<ServeReport, EmbeddingError> {
    let mut loop_ = ServeLoop::new(engine, workload, config);
    while !loop_.done() {
        loop_.tick(model)?;
    }
    Ok(loop_.into_report())
}

/// [`serve`] with online training: after every
/// `online.update_every` fused batches, one casted [`Trainer::step`] on
/// the next batch from `source`. The served model is always
/// `trainer.model()` — scoring between updates sees a frozen snapshot.
///
/// # Errors
///
/// Returns an error if a query disagrees with the model's shape, a
/// training batch is inconsistent, or the batch source ends.
pub fn serve_online(
    engine: &mut ServeEngine,
    trainer: &mut Trainer,
    source: &mut dyn BatchSource,
    workload: &mut QueryModel,
    config: &ServeConfig,
    online: OnlineConfig,
) -> Result<(ServeReport, OnlineReport), ServeError> {
    assert!(online.update_every > 0, "update_every must be positive");
    let mut loop_ = ServeLoop::new(engine, workload, config);
    let mut report = OnlineReport::default();
    let mut batches_since_update = 0u64;
    // Freshness bookkeeping on the snapshot schema: the initial model is
    // version 1, every mutation (update step or hot-restore) publishes
    // the next version, and interleaved serving always scores the head —
    // staleness in versions is identically 0.
    let mut model_version = 1u64;
    let mut model_published = Instant::now();
    let mut restore = online.restore;
    if let Some(hr) = restore.take_if(|hr| hr.at_update == 0) {
        hot_restore(&mut loop_, trainer, &hr)?;
        model_version += 1;
        model_published = Instant::now();
    }
    while !loop_.done() {
        let fired = loop_.tick(trainer.model())?;
        if fired {
            report.staleness_batches.push(batches_since_update);
            report.freshness.record(
                model_version,
                0,
                model_published.elapsed().as_nanos() as u64,
            );
            batches_since_update += 1;
            if batches_since_update >= online.update_every as u64 {
                let t0 = Instant::now();
                let batch = source.next_batch().ok_or_else(|| {
                    EmbeddingError::InvalidIndex("training batch source ended".to_string())
                })?;
                let gen = t0.elapsed().as_nanos() as u64;
                loop_.advance_clock(gen);
                report.gen_ns += gen;
                let t0 = Instant::now();
                let step = trainer.step(&batch)?;
                let spent = t0.elapsed().as_nanos() as u64;
                loop_.advance_clock(spent);
                report.train_ns += spent;
                report.losses.push(step.loss);
                report.updates += 1;
                batches_since_update = 0;
                model_version += 1;
                model_published = Instant::now();
                source.recycle(batch);
                if let Some(hr) = restore.take_if(|hr| report.updates >= hr.at_update) {
                    hot_restore(&mut loop_, trainer, &hr)?;
                    model_version += 1;
                    model_published = Instant::now();
                }
            }
        }
    }
    Ok((loop_.into_report(), report))
}

/// Loads `hr.path` into the live trainer while traffic is in flight,
/// charging the restore's wall-clock cost to the simulated clock.
fn hot_restore(
    loop_: &mut ServeLoop<'_>,
    trainer: &mut Trainer,
    hr: &HotRestore,
) -> Result<(), CheckpointError> {
    let t0 = Instant::now();
    let ckpt = read_train_checkpoint(&mut File::open(&hr.path)?)?;
    ckpt.restore_into(trainer)?;
    let spent = t0.elapsed().as_nanos() as u64;
    loop_.advance_clock(spent);
    loop_.restores += 1;
    loop_.restore_ns += spent;
    Ok(())
}

/// The loop's mutable state, one `tick` per scheduling decision.
struct ServeLoop<'a> {
    engine: &'a mut ServeEngine,
    workload: &'a mut QueryModel,
    queue: AdmissionQueue,
    rng: SplitMix64,
    arrivals: ArrivalProcess,
    /// Arrival times are non-decreasing in generation order, so a FIFO
    /// holds the schedule (closed-loop completions only ever append
    /// later times).
    pending: VecDeque<(u64, Arc<Query>)>,
    /// Reused buffer the fired batch drains into.
    fired: Vec<QueuedQuery>,
    clock_ns: u64,
    issued: usize,
    completed: usize,
    total: usize,
    sla_ns: u64,
    shed_unmeetable: bool,
    /// Reused buffer shed queries drain into.
    shed_buf: Vec<QueuedQuery>,
    latency: LatencyHistogram,
    service: LatencyHistogram,
    sla_violations: u64,
    samples: u64,
    batches: u64,
    started_ns: u64,
    restores: u64,
    restore_ns: u64,
}

impl<'a> ServeLoop<'a> {
    fn new(
        engine: &'a mut ServeEngine,
        workload: &'a mut QueryModel,
        config: &ServeConfig,
    ) -> Self {
        assert!(config.queries > 0, "must serve at least one query");
        let mut this = Self {
            engine,
            workload,
            queue: AdmissionQueue::new(config.policy.clone()),
            rng: SplitMix64::new(config.seed),
            arrivals: config.arrivals,
            pending: VecDeque::new(),
            fired: Vec::new(),
            clock_ns: 0,
            issued: 0,
            completed: 0,
            total: config.queries,
            sla_ns: config.sla_ns,
            shed_unmeetable: config.shed_unmeetable,
            shed_buf: Vec::new(),
            latency: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            sla_violations: 0,
            samples: 0,
            batches: 0,
            started_ns: 0,
            restores: 0,
            restore_ns: 0,
        };
        match this.arrivals {
            ArrivalProcess::Poisson { .. } => this.schedule_open_arrival(0),
            ArrivalProcess::ClosedLoop { clients, .. } => {
                for _ in 0..clients.max(1).min(this.total) {
                    let q = this.workload.draw();
                    this.pending.push_back((0, q));
                    this.issued += 1;
                }
            }
        }
        this
    }

    fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn advance_clock(&mut self, by_ns: u64) {
        self.clock_ns += by_ns;
    }

    fn schedule_open_arrival(&mut self, after_ns: u64) {
        if self.issued >= self.total {
            return;
        }
        let gap = self.arrivals.next_gap_ns(&mut self.rng);
        let q = self.workload.draw();
        self.pending.push_back((after_ns + gap, q));
        self.issued += 1;
    }

    /// One scheduling step: admit due arrivals, then either fire a batch
    /// (returns `true`) or advance the clock to the next event.
    fn tick(&mut self, model: &tcast_dlrm::Dlrm) -> Result<bool, EmbeddingError> {
        // Admit everything that has arrived by now.
        while let Some(&(t, _)) = self.pending.front() {
            if t > self.clock_ns {
                break;
            }
            let (t, q) = self.pending.pop_front().expect("front exists");
            self.queue.push(q, t);
            // Open-loop arrivals replenish themselves; closed-loop
            // arrivals replenish on completion.
            if matches!(self.arrivals, ArrivalProcess::Poisson { .. }) {
                self.schedule_open_arrival(t);
            }
        }
        // Graceful degradation: drop the queries that already cannot
        // meet the SLA before deciding, so a fired batch spends its
        // service time only on queries still inside their budget.
        if self.shed_unmeetable {
            self.shed_expired();
            if self.done() {
                // Shedding finished the run: nothing left to schedule
                // (and, closed-loop, nothing left to arrive).
                return Ok(false);
            }
        }
        // "More arrivals" means: can a query still arrive *before* the
        // next batch fires? Open-loop traffic keeps coming regardless;
        // closed-loop arrivals are completion-driven, so once `pending`
        // drains, nothing new can arrive until the queue fires — a
        // policy that kept waiting for a fuller batch would deadlock
        // (e.g. Fixed { batch: 8 } with only 2 clients in flight).
        let more = match self.arrivals {
            ArrivalProcess::Poisson { .. } => self.issued < self.total || !self.pending.is_empty(),
            ArrivalProcess::ClosedLoop { .. } => !self.pending.is_empty(),
        };
        match self.queue.decide(self.clock_ns, more) {
            Decision::Fire(n) => {
                self.fire(model, n)?;
                Ok(true)
            }
            Decision::WaitUntil(t) => {
                let next_event = self.pending.front().map(|&(at, _)| at.min(t)).unwrap_or(t);
                self.clock_ns = next_event.max(self.clock_ns + 1);
                Ok(false)
            }
            Decision::Wait => {
                let at = self
                    .pending
                    .front()
                    .map(|&(at, _)| at)
                    .expect("idle queue with no future arrivals cannot happen mid-run");
                self.clock_ns = at.max(self.clock_ns);
                Ok(false)
            }
        }
    }

    /// Sheds every queued query whose deadline is provably unmeetable at
    /// the current clock. A shed query *completes* — it counts toward
    /// the run total and (closed loop) frees its client to issue the
    /// next query — but is never scored: no latency sample, no SLA
    /// violation, no engine work.
    fn shed_expired(&mut self) {
        let mut shed = std::mem::take(&mut self.shed_buf);
        self.queue
            .shed_expired_into(self.clock_ns, self.sla_ns, &mut shed);
        let n = shed.len();
        if n > 0 {
            self.completed += n;
            if let ArrivalProcess::ClosedLoop { think_ns, .. } = self.arrivals {
                for _ in 0..n {
                    if self.issued >= self.total {
                        break;
                    }
                    let q = self.workload.draw();
                    self.pending.push_back((self.clock_ns + think_ns, q));
                    self.issued += 1;
                }
            }
        }
        shed.clear();
        self.shed_buf = shed;
    }

    fn fire(&mut self, model: &tcast_dlrm::Dlrm, n: usize) -> Result<(), EmbeddingError> {
        // Reused fired-batch buffer: no per-batch allocation once it
        // reaches the largest batch the policy fires.
        let mut batch = std::mem::take(&mut self.fired);
        self.queue.take_into(n, &mut batch);
        if self.completed == 0 {
            self.started_ns = self.clock_ns;
        }
        let t0 = Instant::now();
        let scored = self.engine.score_queued(model, &batch)?;
        self.samples += scored.num_samples() as u64;
        self.batches += 1;
        let service_ns = t0.elapsed().as_nanos() as u64;
        self.service.record(service_ns);
        self.clock_ns += service_ns;
        let oldest = batch.first().expect("non-empty batch").arrival_ns;
        self.queue.observe_batch(self.clock_ns - oldest);
        for item in &batch {
            let latency = self.clock_ns - item.arrival_ns;
            self.latency.record(latency);
            // Exclusive deadline: meet iff latency < sla_ns, matching
            // the shed and adaptive-batcher boundary.
            if latency >= self.sla_ns {
                self.sla_violations += 1;
            }
        }
        self.completed += n;
        // Closed loop: each completion triggers its client's next query.
        if let ArrivalProcess::ClosedLoop { think_ns, .. } = self.arrivals {
            for _ in 0..n {
                if self.issued >= self.total {
                    break;
                }
                let q = self.workload.draw();
                self.pending.push_back((self.clock_ns + think_ns, q));
                self.issued += 1;
            }
        }
        batch.clear(); // drop the query shares now, keep the capacity
        self.fired = batch;
        Ok(())
    }

    fn into_report(self) -> ServeReport {
        ServeReport {
            queries: self.completed as u64,
            batches: self.batches,
            samples: self.samples,
            latency: self.latency,
            service: self.service,
            span_ns: self.clock_ns.saturating_sub(self.started_ns).max(1),
            sla_ns: self.sla_ns,
            sla_violations: self.sla_violations,
            max_queue_depth: self.queue.max_depth(),
            cache_hit_rate: self.engine.cache_hit_rate(),
            shed: self.queue.shed_count(),
            restores: self.restores,
            restore_ns: self.restore_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeEngine;
    use crate::queue::AdaptiveBatcher;
    use crate::request::CandidateCount;
    use tcast_datasets::{SyntheticCtr, SyntheticSource};
    use tcast_dlrm::{BackwardMode, Dlrm, DlrmConfig};

    fn model() -> Dlrm {
        Dlrm::new(DlrmConfig::tiny(), 3).unwrap()
    }

    fn workload(seed: u64) -> QueryModel {
        let cfg = DlrmConfig::tiny();
        QueryModel::new(
            &cfg.table_workloads(),
            cfg.dense_features,
            12,
            CandidateCount::Fixed(3),
            1.0,
            seed,
        )
    }

    fn config(policy: BatchPolicy, queries: usize) -> ServeConfig {
        ServeConfig {
            queries,
            arrivals: ArrivalProcess::Poisson { mean_qps: 50_000.0 },
            policy,
            sla_ns: 50_000_000,
            seed: 21,
            shed_unmeetable: false,
        }
    }

    #[test]
    fn serves_every_query_exactly_once() {
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let report = serve(
            &mut engine,
            &m,
            &mut workload(5),
            &config(BatchPolicy::Fixed { batch: 4 }, 25),
        )
        .unwrap();
        assert_eq!(report.queries, 25);
        assert_eq!(report.samples, 75); // 3 candidates each
        assert_eq!(report.latency.count(), 25);
        // Fixed-4 over 25 queries: six 4-batches + a drain of 1.
        assert_eq!(report.batches, 7);
        assert!(report.qps() > 0.0);
        assert!(report.max_queue_depth >= 4);
    }

    #[test]
    fn closed_loop_serves_to_completion() {
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let cfg = ServeConfig {
            queries: 30,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 8,
                think_ns: 1_000,
            },
            policy: BatchPolicy::Deadline {
                max_batch: 8,
                max_wait_ns: 100_000,
            },
            sla_ns: 50_000_000,
            seed: 9,
            shed_unmeetable: false,
        };
        let report = serve(&mut engine, &m, &mut workload(7), &cfg).unwrap();
        assert_eq!(report.queries, 30);
        // Closed loop with 8 clients can never queue more than 8.
        assert!(report.max_queue_depth <= 8);
    }

    #[test]
    fn closed_loop_with_fewer_clients_than_the_batch_drains() {
        // Regression: Fixed { batch: 8 } with only 2 closed-loop clients
        // used to deadlock (then panic): both clients queued, no new
        // arrival possible until a fire, yet the policy kept waiting for
        // a batch that could never fill. The queue must drain what the
        // in-flight clients can supply.
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let cfg = ServeConfig {
            queries: 30,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2,
                think_ns: 1_000,
            },
            policy: BatchPolicy::Fixed { batch: 8 },
            sla_ns: 50_000_000,
            seed: 3,
            shed_unmeetable: false,
        };
        let report = serve(&mut engine, &m, &mut workload(19), &cfg).unwrap();
        assert_eq!(report.queries, 30);
        // Two clients can never fill an 8-batch.
        assert!(report.mean_batch() <= 2.0 + 1e-9);
    }

    #[test]
    fn adaptive_policy_serves_and_adapts() {
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let policy = BatchPolicy::Adaptive(AdaptiveBatcher::new(10_000_000, 16, 1_000_000));
        let report = serve(&mut engine, &m, &mut workload(3), &config(policy, 60)).unwrap();
        assert_eq!(report.queries, 60);
        assert!(report.mean_batch() >= 1.0);
    }

    #[test]
    fn hot_catalog_hits_the_cache() {
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let report = serve(
            &mut engine,
            &m,
            &mut workload(11), // catalog of 12 distinct queries
            &config(BatchPolicy::Fixed { batch: 4 }, 100),
        )
        .unwrap();
        // 100 draws from a 12-entry catalog: most casts are repeats.
        assert!(
            report.cache_hit_rate > 0.5,
            "hit rate {}",
            report.cache_hit_rate
        );
    }

    #[test]
    fn online_mode_trains_while_serving() {
        let cfg = DlrmConfig::tiny();
        let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut source = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 2),
            16,
        );
        let mut engine = ServeEngine::with_defaults(trainer.model());
        let (report, online) = serve_online(
            &mut engine,
            &mut trainer,
            &mut source,
            &mut workload(13),
            &config(BatchPolicy::Fixed { batch: 4 }, 40),
            OnlineConfig {
                update_every: 2,
                restore: None,
            },
        )
        .unwrap();
        assert_eq!(report.queries, 40);
        assert_eq!(online.updates, 5); // 10 batches / update_every 2
        assert_eq!(online.losses.len(), 5);
        assert_eq!(trainer.steps(), 5);
        assert_eq!(online.staleness_batches.len(), 10);
        assert!(online.max_staleness() <= 1, "update_every 2 -> 0/1 stale");
        assert!(online.train_ns > 0);
        assert!(online.gen_ns > 0, "inline generation must be measurable");
        // Freshness: one record per fused batch, interleaved serving is
        // never behind the head, versions climb with the updates.
        assert_eq!(online.freshness.batches(), 10);
        assert_eq!(online.freshness.max_staleness_versions(), 0);
        assert_eq!(online.freshness.versions.first(), Some(&1));
        assert_eq!(online.freshness.versions.last(), Some(&5));
        assert!(online.freshness.versions.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn prefetched_batch_source_preserves_the_update_trajectory() {
        // The whole point of wiring PrefetchSource into serve_online:
        // generation moves off the update slot, the trajectory does not
        // move at all.
        use tcast_datasets::PrefetchSource;
        let cfg = DlrmConfig::tiny();
        let run = |prefetch: bool| {
            let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
            let inner = SyntheticSource::new(
                SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 2),
                16,
            );
            let mut engine = ServeEngine::with_defaults(trainer.model());
            let serve_cfg = config(BatchPolicy::Fixed { batch: 4 }, 40);
            let online_cfg = OnlineConfig {
                update_every: 2,
                restore: None,
            };
            let mut inline;
            let mut prefetched;
            let source: &mut dyn BatchSource = if prefetch {
                prefetched = PrefetchSource::new(inner, 2);
                &mut prefetched
            } else {
                inline = inner;
                &mut inline
            };
            let (_, online) = serve_online(
                &mut engine,
                &mut trainer,
                source,
                &mut workload(13),
                &serve_cfg,
                online_cfg,
            )
            .unwrap();
            (online.losses, table_bits(&trainer))
        };
        let (inline_losses, inline_tables) = run(false);
        let (prefetched_losses, prefetched_tables) = run(true);
        assert_eq!(prefetched_losses, inline_losses);
        assert_eq!(prefetched_tables, inline_tables);
    }

    #[test]
    fn overload_sheds_unmeetable_queries() {
        let m = model();
        let mut engine = ServeEngine::with_defaults(&m);
        let cfg = ServeConfig {
            queries: 40,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 8,
                think_ns: 0,
            },
            policy: BatchPolicy::Fixed { batch: 4 },
            // A 1 ns SLA: any query that waits at all is provably
            // unmeetable, so every tick sheds what queued behind the
            // previous batch's service time.
            sla_ns: 1,
            seed: 11,
            shed_unmeetable: true,
        };
        let report = serve(&mut engine, &m, &mut workload(3), &cfg).unwrap();
        assert_eq!(report.queries, 40, "shed queries still complete the run");
        assert!(report.shed > 0, "an unmeetable SLA must shed");
        assert_eq!(
            report.latency.count() + report.shed,
            40,
            "every query is either scored or shed, never both"
        );
        assert!(report.shed_rate() > 0.0);
    }

    #[test]
    fn hot_restore_snaps_the_trainer_back_mid_traffic() {
        use tcast_dlrm::checkpoint::save_train_checkpoint;
        let cfg = DlrmConfig::tiny();
        // An offline run takes 3 steps and checkpoints.
        let mut offline = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut src = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 2),
            16,
        );
        for _ in 0..3 {
            let b = src.next_batch().unwrap();
            offline.step(&b).unwrap();
            src.recycle(b);
        }
        let path =
            std::env::temp_dir().join(format!("tckp-hot-restore-{}.tckp", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        save_train_checkpoint(&mut f, &offline, None, None).unwrap();
        drop(f);
        // Serve with a fresh same-shape trainer; snap to the checkpoint
        // after the second online update, mid-traffic.
        let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut source = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 5),
            16,
        );
        let mut engine = ServeEngine::with_defaults(trainer.model());
        let (report, online) = serve_online(
            &mut engine,
            &mut trainer,
            &mut source,
            &mut workload(13),
            &config(BatchPolicy::Fixed { batch: 4 }, 40),
            OnlineConfig {
                update_every: 2,
                restore: Some(HotRestore {
                    path: path.clone(),
                    at_update: 2,
                }),
            },
        )
        .unwrap();
        assert_eq!(report.restores, 1);
        assert!(report.restore_ns > 0, "restore cost lands on the clock");
        assert_eq!(online.updates, 5);
        // 2 online updates, then the restore snaps the step counter to
        // the checkpoint's 3, then 3 more online updates.
        assert_eq!(trainer.steps(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hot_restore_of_a_corrupt_checkpoint_is_a_typed_error() {
        let cfg = DlrmConfig::tiny();
        let path =
            std::env::temp_dir().join(format!("tckp-hot-corrupt-{}.tckp", std::process::id()));
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let mut source = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 5),
            16,
        );
        let mut engine = ServeEngine::with_defaults(trainer.model());
        let err = serve_online(
            &mut engine,
            &mut trainer,
            &mut source,
            &mut workload(13),
            &config(BatchPolicy::Fixed { batch: 4 }, 40),
            OnlineConfig {
                update_every: 2,
                restore: Some(HotRestore {
                    path: path.clone(),
                    at_update: 0,
                }),
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ServeError::Restore(_)),
            "expected a restore error, got {err}"
        );
        assert_eq!(
            trainer.steps(),
            0,
            "failed restore must not touch the trainer"
        );
        std::fs::remove_file(&path).unwrap();
    }

    fn table_bits(trainer: &Trainer) -> Vec<Vec<u32>> {
        (0..trainer.model().num_tables())
            .map(|i| {
                trainer
                    .model()
                    .table(i)
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    }
}

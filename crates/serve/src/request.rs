//! The query workload model: what a recommendation inference request
//! looks like and when it arrives.
//!
//! A query asks the model to score one user against a *candidate set* of
//! items (the output of an upstream retrieval stage): `C` candidates
//! means `C` samples — a `C x dense_features` matrix of continuous
//! features plus one index array per embedding table with `C` outputs.
//! Serving-side batching fuses many queries' candidate sets into one
//! model batch (see `engine`).
//!
//! Two properties of real serving traffic drive the subsystem's design,
//! and both are modelled here:
//!
//! * **Queries repeat.** A popular query (trending item page, home feed
//!   of a hot segment) arrives thousands of times; the model draws
//!   queries from a finite seeded *catalog* through a configurable
//!   popularity skew, so repeated index arrays are the common case the
//!   engine's [`CastingCache`] fast path exploits.
//! * **Arrivals are bursty or feedback-coupled.** [`ArrivalProcess`]
//!   models both open-loop Poisson traffic (DeepRecSys' arrival model)
//!   and closed-loop clients that issue their next query only after the
//!   previous one completes.
//!
//! Sparse features are drawn from the existing `tcast-datasets`
//! popularity models ([`TableWorkload`]), so the same Zipf skew that
//! shapes training gradients shapes inference lookups.
//!
//! [`CastingCache`]: tcast_core::CastingCache

use std::sync::Arc;

use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::IndexArray;
use tcast_tensor::{Matrix, SplitMix64};

/// One inference request: score `candidates()` items for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Catalog identity (hot queries share an id across arrivals).
    pub id: u64,
    /// Continuous features, `candidates x dense_features`.
    pub dense: Matrix,
    /// Per-table sparse lookups, each with `candidates` outputs. Shared
    /// behind an `Arc`: a repeated query re-sends the *same* arrays, so
    /// the engine's content-addressed cache hits without re-hashing a
    /// copy.
    pub indices: Arc<[IndexArray]>,
}

impl Query {
    /// Number of candidate items this query scores.
    pub fn candidates(&self) -> usize {
        self.dense.rows()
    }
}

/// How many candidates a query carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateCount {
    /// Every query scores exactly this many items.
    Fixed(usize),
    /// Uniform in `[min, max]` (inclusive), per catalog entry.
    Uniform {
        /// Smallest candidate set.
        min: usize,
        /// Largest candidate set.
        max: usize,
    },
}

impl CandidateCount {
    fn draw(&self, rng: &mut SplitMix64) -> usize {
        match *self {
            CandidateCount::Fixed(n) => {
                assert!(n > 0, "candidate count must be positive");
                n
            }
            CandidateCount::Uniform { min, max } => {
                assert!(
                    0 < min && min <= max,
                    "candidate range must satisfy 0 < min <= max"
                );
                min + rng.next_below((max - min + 1) as u64) as usize
            }
        }
    }
}

/// Seeded generator of serving traffic over a fixed query catalog.
///
/// Construction materializes `catalog_size` distinct queries (each an
/// `Arc`); [`QueryModel::draw`] then samples the catalog through a
/// truncated-Zipf popularity (exponent 0 = uniform), so a draw is a
/// refcount bump and hot queries dominate exactly as table rows do in
/// the datasets' lookup models.
#[derive(Debug)]
pub struct QueryModel {
    catalog: Vec<Arc<Query>>,
    popularity: tcast_datasets::CdfSampler,
    rng: SplitMix64,
    /// Rotation applied between popularity rank and catalog id — see
    /// [`QueryModel::shift_popularity`].
    rank_offset: usize,
}

impl QueryModel {
    /// Builds a catalog of `catalog_size` queries over `tables` with
    /// `dense_features` continuous features, fully determined by `seed`.
    /// `query_skew` is the Zipf exponent of the query popularity
    /// (`0.0` = every query equally likely).
    ///
    /// # Panics
    ///
    /// Panics if `catalog_size == 0` or the candidate spec is invalid.
    pub fn new(
        tables: &[TableWorkload],
        dense_features: usize,
        catalog_size: usize,
        candidates: CandidateCount,
        query_skew: f64,
        seed: u64,
    ) -> Self {
        assert!(catalog_size > 0, "catalog must hold at least one query");
        let mut rng = SplitMix64::new(seed);
        let catalog = (0..catalog_size as u64)
            .map(|id| {
                let c = candidates.draw(&mut rng);
                let mut dense = Matrix::zeros(c, dense_features);
                for v in dense.as_mut_slice() {
                    *v = rng.next_range(-1.0, 1.0);
                }
                let indices: Vec<IndexArray> = tables
                    .iter()
                    .map(|t| t.generator(rng.next_u64()).next_batch(c))
                    .collect();
                Arc::new(Query {
                    id,
                    dense,
                    indices: indices.into(),
                })
            })
            .collect();
        let popularity = Popularity::zipf_or_uniform(catalog_size, query_skew).sampler();
        Self {
            catalog,
            popularity,
            rng,
            rank_offset: 0,
        }
    }

    /// Number of distinct queries in the catalog.
    pub fn catalog_size(&self) -> usize {
        self.catalog.len()
    }

    /// A catalog entry by id (testing / replay).
    pub fn query(&self, id: usize) -> &Arc<Query> {
        &self.catalog[id]
    }

    /// Draws the next query (a refcount bump on a catalog entry).
    pub fn draw(&mut self) -> Arc<Query> {
        let rank = self.popularity.sample(&mut self.rng) as usize;
        let id = (rank + self.rank_offset) % self.catalog.len();
        Arc::clone(&self.catalog[id])
    }

    /// Rotates which catalog entries are popular: popularity rank `r`
    /// maps to catalog id `(r + offset) mod catalog_size`, and each call
    /// advances the offset by `rotation`. A Zipf head that concentrated
    /// on ids `0..k` moves to `rotation..rotation+k` — the "yesterday's
    /// trending items went cold" event. The catalog itself is untouched
    /// (ids, tensors and `Arc` identities are stable); only the draw
    /// distribution moves, so a serving engine's [`CastingCache`] — warm
    /// on the old head — must evict its way to the new one.
    ///
    /// [`CastingCache`]: tcast_core::CastingCache
    pub fn shift_popularity(&mut self, rotation: usize) {
        self.rank_offset = (self.rank_offset + rotation) % self.catalog.len();
    }
}

/// When queries arrive, on the serving loop's nanosecond clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at the given mean rate: inter-arrival
    /// gaps are exponentially distributed, independent of service — the
    /// regime where an overloaded server's queue grows without bound.
    Poisson {
        /// Mean queries per second.
        mean_qps: f64,
    },
    /// Closed-loop: `clients` concurrent callers, each issuing its next
    /// query `think_ns` after its previous one completes — load adapts
    /// to service capacity (arrivals stall while the server is busy).
    ClosedLoop {
        /// Concurrent callers.
        clients: usize,
        /// Per-client pause between completion and the next request.
        think_ns: u64,
    },
}

impl ArrivalProcess {
    /// Draws the next open-loop inter-arrival gap in nanoseconds
    /// (closed-loop arrivals are completion-driven; see the serve loop).
    pub(crate) fn next_gap_ns(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            ArrivalProcess::Poisson { mean_qps } => {
                assert!(mean_qps > 0.0, "mean_qps must be positive");
                // Exponential via inverse CDF; clamp u away from 1.0.
                let u = f64::from(rng.next_f32()).min(1.0 - 1e-9);
                ((-(1.0 - u).ln()) / mean_qps * 1e9) as u64
            }
            ArrivalProcess::ClosedLoop { .. } => {
                unreachable!("closed-loop arrivals are completion-driven")
            }
        }
    }
}

/// A time-varying arrival-rate curve — the scenario workloads a
/// stationary Poisson process cannot express. Arrivals are an
/// inhomogeneous Poisson process with rate `rate_at(t)`, sampled by
/// Lewis–Shedler thinning: draw candidate gaps at the curve's peak rate,
/// accept each candidate with probability `rate_at(t) / peak`. Fully
/// deterministic given the caller's RNG, so fleet runs replay exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateCurve {
    /// Stationary Poisson at `qps` (the PR-6 arrival model, lifted into
    /// the curve interface).
    Constant {
        /// Mean queries per second.
        qps: f64,
    },
    /// A sinusoidal day: `base_qps * (1 + amplitude * sin(2πt/period))`.
    /// `amplitude` must sit in `[0, 0.95]` so the rate stays bounded
    /// away from zero (thinning needs a positive floor to terminate).
    Diurnal {
        /// Mean rate over a full period.
        base_qps: f64,
        /// Peak-to-mean swing, in `[0, 0.95]`.
        amplitude: f64,
        /// One simulated "day" in nanoseconds.
        period_ns: u64,
    },
    /// Quiet traffic at `base_qps` with a rectangular spike to
    /// `spike_qps` during `[start_ns, start_ns + duration_ns)` — the
    /// flash crowd that stresses cross-tenant isolation.
    FlashCrowd {
        /// Rate outside the spike window.
        base_qps: f64,
        /// Rate inside the spike window.
        spike_qps: f64,
        /// Spike onset on the simulated clock.
        start_ns: u64,
        /// Spike length.
        duration_ns: u64,
    },
}

impl RateCurve {
    /// Instantaneous rate (queries per second) at clock `now_ns`.
    pub fn rate_at(&self, now_ns: u64) -> f64 {
        match *self {
            RateCurve::Constant { qps } => qps,
            RateCurve::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            } => {
                let phase = (now_ns % period_ns) as f64 / period_ns as f64;
                base_qps * (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin())
            }
            RateCurve::FlashCrowd {
                base_qps,
                spike_qps,
                start_ns,
                duration_ns,
            } => {
                if now_ns >= start_ns && now_ns - start_ns < duration_ns {
                    spike_qps
                } else {
                    base_qps
                }
            }
        }
    }

    /// The curve's supremum rate (the thinning envelope).
    pub fn peak_qps(&self) -> f64 {
        match *self {
            RateCurve::Constant { qps } => qps,
            RateCurve::Diurnal {
                base_qps,
                amplitude,
                ..
            } => base_qps * (1.0 + amplitude),
            RateCurve::FlashCrowd {
                base_qps,
                spike_qps,
                ..
            } => base_qps.max(spike_qps),
        }
    }

    fn validate(&self) {
        match *self {
            RateCurve::Constant { qps } => assert!(qps > 0.0, "qps must be positive"),
            RateCurve::Diurnal {
                base_qps,
                amplitude,
                period_ns,
            } => {
                assert!(base_qps > 0.0, "base_qps must be positive");
                assert!(
                    (0.0..=0.95).contains(&amplitude),
                    "amplitude must be in [0, 0.95]"
                );
                assert!(period_ns > 0, "period must be positive");
            }
            RateCurve::FlashCrowd {
                base_qps,
                spike_qps,
                ..
            } => {
                assert!(base_qps > 0.0, "base_qps must be positive");
                assert!(spike_qps > 0.0, "spike_qps must be positive");
            }
        }
    }

    /// The next arrival strictly after `now_ns`, via thinning.
    ///
    /// # Panics
    ///
    /// Panics if the curve's parameters are invalid (non-positive rates,
    /// diurnal amplitude outside `[0, 0.95]`).
    pub fn next_arrival_after(&self, now_ns: u64, rng: &mut SplitMix64) -> u64 {
        self.validate();
        let peak = self.peak_qps();
        let mut t = now_ns;
        loop {
            let u = f64::from(rng.next_f32()).min(1.0 - 1e-9);
            // Exponential gap at the envelope rate; at least 1 ns so the
            // clock always advances.
            let gap = (((-(1.0 - u).ln()) / peak * 1e9) as u64).max(1);
            t = t.saturating_add(gap);
            if f64::from(rng.next_f32()) < self.rate_at(t) / peak {
                return t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_datasets::Popularity;

    fn tables() -> Vec<TableWorkload> {
        vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 100,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 50 }, 2),
        ]
    }

    #[test]
    fn catalog_queries_have_consistent_shapes() {
        let model = QueryModel::new(&tables(), 6, 10, CandidateCount::Fixed(4), 0.9, 1);
        assert_eq!(model.catalog_size(), 10);
        for id in 0..10 {
            let q = model.query(id);
            assert_eq!(q.candidates(), 4);
            assert_eq!(q.dense.shape(), (4, 6));
            assert_eq!(q.indices.len(), 2);
            assert_eq!(q.indices[0].num_outputs(), 4);
            assert_eq!(q.indices[0].len(), 12); // pooling 3
            assert_eq!(q.indices[1].len(), 8); // pooling 2
        }
    }

    #[test]
    fn variable_candidate_counts_stay_in_range() {
        let model = QueryModel::new(
            &tables(),
            4,
            32,
            CandidateCount::Uniform { min: 2, max: 9 },
            0.0,
            7,
        );
        let counts: Vec<usize> = (0..32).map(|i| model.query(i).candidates()).collect();
        assert!(counts.iter().all(|&c| (2..=9).contains(&c)));
        assert!(counts.iter().any(|&c| c != counts[0]), "counts must vary");
    }

    #[test]
    fn draws_are_seeded_and_share_catalog_entries() {
        let mk = || QueryModel::new(&tables(), 4, 8, CandidateCount::Fixed(2), 1.1, 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            let qa = a.draw();
            let qb = b.draw();
            assert_eq!(qa.id, qb.id);
            assert_eq!(*qa, *qb);
        }
        // A re-drawn hot query is the same allocation, not a copy.
        let first = a.draw();
        let again = (0..50).map(|_| a.draw()).find(|q| q.id == first.id);
        if let Some(again) = again {
            assert!(Arc::ptr_eq(&first, &again));
        }
    }

    #[test]
    fn skewed_popularity_concentrates_draws() {
        let mut model = QueryModel::new(&tables(), 4, 100, CandidateCount::Fixed(2), 1.2, 3);
        let mut head = 0usize;
        for _ in 0..500 {
            if model.draw().id < 10 {
                head += 1;
            }
        }
        // Top-10% of a Zipf(1.2) catalog draws far more than 10% of
        // traffic (analytically ~60%; wide slack for RNG noise).
        assert!(head > 150, "head draws = {head}");
    }

    #[test]
    fn poisson_gaps_have_the_right_mean() {
        let p = ArrivalProcess::Poisson { mean_qps: 10_000.0 };
        let mut rng = SplitMix64::new(9);
        let n = 4000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // Expected 100_000 ns; 3-sigma of the sample mean is ~5%.
        assert!(
            (mean - 100_000.0).abs() < 10_000.0,
            "mean gap {mean} ns, expected ~100000"
        );
    }

    #[test]
    #[should_panic(expected = "catalog must hold")]
    fn empty_catalog_rejected() {
        QueryModel::new(&tables(), 4, 0, CandidateCount::Fixed(1), 0.0, 1);
    }

    #[test]
    fn popularity_shift_moves_the_hot_head_without_touching_the_catalog() {
        let mut model = QueryModel::new(&tables(), 4, 100, CandidateCount::Fixed(2), 1.2, 3);
        let before: Vec<Arc<Query>> = (0..100).map(|i| Arc::clone(model.query(i))).collect();
        let mut head_old = 0usize;
        for _ in 0..400 {
            if model.draw().id < 10 {
                head_old += 1;
            }
        }
        assert!(head_old > 120, "pre-shift head draws = {head_old}");
        model.shift_popularity(50);
        let (mut head_old2, mut head_new) = (0usize, 0usize);
        for _ in 0..400 {
            let id = model.draw().id;
            if id < 10 {
                head_old2 += 1;
            }
            if (50..60).contains(&id) {
                head_new += 1;
            }
        }
        assert!(
            head_new > 120,
            "post-shift head must move to 50..60, got {head_new}"
        );
        assert!(
            head_old2 < head_new / 2,
            "old head must go cold: old {head_old2} vs new {head_new}"
        );
        // The catalog itself is untouched — same Arcs, same tensors.
        for (i, q) in before.iter().enumerate() {
            assert!(Arc::ptr_eq(q, model.query(i)));
        }
        // Shifts compose modulo the catalog size.
        model.shift_popularity(50);
        let back = (0..400).filter(|_| model.draw().id < 10).count();
        assert!(back > 120, "two 50-shifts over 100 wrap home, got {back}");
    }

    #[test]
    fn constant_rate_curve_matches_poisson_mean() {
        let c = RateCurve::Constant { qps: 10_000.0 };
        let mut rng = SplitMix64::new(9);
        let (mut t, n) = (0u64, 4000);
        for _ in 0..n {
            t = c.next_arrival_after(t, &mut rng);
        }
        let mean = t as f64 / n as f64;
        assert!(
            (mean - 100_000.0).abs() < 10_000.0,
            "mean gap {mean} ns, expected ~100000"
        );
    }

    #[test]
    fn flash_crowd_concentrates_arrivals_in_the_window() {
        let c = RateCurve::FlashCrowd {
            base_qps: 1_000.0,
            spike_qps: 100_000.0,
            start_ns: 10_000_000,
            duration_ns: 10_000_000,
        };
        assert_eq!(c.rate_at(9_999_999), 1_000.0);
        assert_eq!(c.rate_at(10_000_000), 100_000.0);
        assert_eq!(c.rate_at(19_999_999), 100_000.0);
        assert_eq!(c.rate_at(20_000_000), 1_000.0);
        let mut rng = SplitMix64::new(5);
        let (mut t, mut inside, mut total) = (0u64, 0usize, 0usize);
        while t < 30_000_000 {
            t = c.next_arrival_after(t, &mut rng);
            total += 1;
            if (10_000_000..20_000_000).contains(&t) {
                inside += 1;
            }
        }
        // Expected ~1000 arrivals in the 10 ms spike vs ~20 outside.
        assert!(total > 500, "total arrivals {total}");
        assert!(
            inside as f64 > 0.9 * total as f64,
            "spike holds {inside}/{total} arrivals"
        );
    }

    #[test]
    fn diurnal_curve_oscillates_and_thinning_tracks_it() {
        let c = RateCurve::Diurnal {
            base_qps: 10_000.0,
            amplitude: 0.9,
            period_ns: 1_000_000_000,
        };
        // Peak at a quarter period, trough at three quarters.
        assert!((c.rate_at(250_000_000) - 19_000.0).abs() < 1.0);
        assert!((c.rate_at(750_000_000) - 1_000.0).abs() < 1.0);
        assert!((c.peak_qps() - 19_000.0).abs() < 1e-9);
        let mut rng = SplitMix64::new(7);
        let (mut t, mut first_half, mut second_half) = (0u64, 0usize, 0usize);
        while t < 1_000_000_000 {
            t = c.next_arrival_after(t, &mut rng);
            if t < 500_000_000 {
                first_half += 1;
            } else if t < 1_000_000_000 {
                second_half += 1;
            }
        }
        // sin is positive over the first half-period and negative over
        // the second, so the busy half must dominate.
        assert!(
            first_half > 2 * second_half,
            "busy half {first_half} vs quiet half {second_half}"
        );
    }

    #[test]
    fn rate_curves_are_deterministic_for_a_fixed_seed() {
        let c = RateCurve::FlashCrowd {
            base_qps: 2_000.0,
            spike_qps: 50_000.0,
            start_ns: 1_000_000,
            duration_ns: 2_000_000,
        };
        let run = || {
            let mut rng = SplitMix64::new(42);
            let mut t = 0u64;
            (0..200)
                .map(|_| {
                    t = c.next_arrival_after(t, &mut rng);
                    t
                })
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "amplitude must be in")]
    fn diurnal_amplitude_above_bound_rejected() {
        let c = RateCurve::Diurnal {
            base_qps: 100.0,
            amplitude: 1.5,
            period_ns: 1_000,
        };
        c.next_arrival_after(0, &mut SplitMix64::new(1));
    }
}

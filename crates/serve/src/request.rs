//! The query workload model: what a recommendation inference request
//! looks like and when it arrives.
//!
//! A query asks the model to score one user against a *candidate set* of
//! items (the output of an upstream retrieval stage): `C` candidates
//! means `C` samples — a `C x dense_features` matrix of continuous
//! features plus one index array per embedding table with `C` outputs.
//! Serving-side batching fuses many queries' candidate sets into one
//! model batch (see `engine`).
//!
//! Two properties of real serving traffic drive the subsystem's design,
//! and both are modelled here:
//!
//! * **Queries repeat.** A popular query (trending item page, home feed
//!   of a hot segment) arrives thousands of times; the model draws
//!   queries from a finite seeded *catalog* through a configurable
//!   popularity skew, so repeated index arrays are the common case the
//!   engine's [`CastingCache`] fast path exploits.
//! * **Arrivals are bursty or feedback-coupled.** [`ArrivalProcess`]
//!   models both open-loop Poisson traffic (DeepRecSys' arrival model)
//!   and closed-loop clients that issue their next query only after the
//!   previous one completes.
//!
//! Sparse features are drawn from the existing `tcast-datasets`
//! popularity models ([`TableWorkload`]), so the same Zipf skew that
//! shapes training gradients shapes inference lookups.
//!
//! [`CastingCache`]: tcast_core::CastingCache

use std::sync::Arc;

use tcast_datasets::{Popularity, TableWorkload};
use tcast_embedding::IndexArray;
use tcast_tensor::{Matrix, SplitMix64};

/// One inference request: score `candidates()` items for one user.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Catalog identity (hot queries share an id across arrivals).
    pub id: u64,
    /// Continuous features, `candidates x dense_features`.
    pub dense: Matrix,
    /// Per-table sparse lookups, each with `candidates` outputs. Shared
    /// behind an `Arc`: a repeated query re-sends the *same* arrays, so
    /// the engine's content-addressed cache hits without re-hashing a
    /// copy.
    pub indices: Arc<[IndexArray]>,
}

impl Query {
    /// Number of candidate items this query scores.
    pub fn candidates(&self) -> usize {
        self.dense.rows()
    }
}

/// How many candidates a query carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateCount {
    /// Every query scores exactly this many items.
    Fixed(usize),
    /// Uniform in `[min, max]` (inclusive), per catalog entry.
    Uniform {
        /// Smallest candidate set.
        min: usize,
        /// Largest candidate set.
        max: usize,
    },
}

impl CandidateCount {
    fn draw(&self, rng: &mut SplitMix64) -> usize {
        match *self {
            CandidateCount::Fixed(n) => {
                assert!(n > 0, "candidate count must be positive");
                n
            }
            CandidateCount::Uniform { min, max } => {
                assert!(
                    0 < min && min <= max,
                    "candidate range must satisfy 0 < min <= max"
                );
                min + rng.next_below((max - min + 1) as u64) as usize
            }
        }
    }
}

/// Seeded generator of serving traffic over a fixed query catalog.
///
/// Construction materializes `catalog_size` distinct queries (each an
/// `Arc`); [`QueryModel::draw`] then samples the catalog through a
/// truncated-Zipf popularity (exponent 0 = uniform), so a draw is a
/// refcount bump and hot queries dominate exactly as table rows do in
/// the datasets' lookup models.
#[derive(Debug)]
pub struct QueryModel {
    catalog: Vec<Arc<Query>>,
    popularity: tcast_datasets::CdfSampler,
    rng: SplitMix64,
}

impl QueryModel {
    /// Builds a catalog of `catalog_size` queries over `tables` with
    /// `dense_features` continuous features, fully determined by `seed`.
    /// `query_skew` is the Zipf exponent of the query popularity
    /// (`0.0` = every query equally likely).
    ///
    /// # Panics
    ///
    /// Panics if `catalog_size == 0` or the candidate spec is invalid.
    pub fn new(
        tables: &[TableWorkload],
        dense_features: usize,
        catalog_size: usize,
        candidates: CandidateCount,
        query_skew: f64,
        seed: u64,
    ) -> Self {
        assert!(catalog_size > 0, "catalog must hold at least one query");
        let mut rng = SplitMix64::new(seed);
        let catalog = (0..catalog_size as u64)
            .map(|id| {
                let c = candidates.draw(&mut rng);
                let mut dense = Matrix::zeros(c, dense_features);
                for v in dense.as_mut_slice() {
                    *v = rng.next_range(-1.0, 1.0);
                }
                let indices: Vec<IndexArray> = tables
                    .iter()
                    .map(|t| t.generator(rng.next_u64()).next_batch(c))
                    .collect();
                Arc::new(Query {
                    id,
                    dense,
                    indices: indices.into(),
                })
            })
            .collect();
        let popularity = Popularity::zipf_or_uniform(catalog_size, query_skew).sampler();
        Self {
            catalog,
            popularity,
            rng,
        }
    }

    /// Number of distinct queries in the catalog.
    pub fn catalog_size(&self) -> usize {
        self.catalog.len()
    }

    /// A catalog entry by id (testing / replay).
    pub fn query(&self, id: usize) -> &Arc<Query> {
        &self.catalog[id]
    }

    /// Draws the next query (a refcount bump on a catalog entry).
    pub fn draw(&mut self) -> Arc<Query> {
        let id = self.popularity.sample(&mut self.rng) as usize;
        Arc::clone(&self.catalog[id])
    }
}

/// When queries arrive, on the serving loop's nanosecond clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at the given mean rate: inter-arrival
    /// gaps are exponentially distributed, independent of service — the
    /// regime where an overloaded server's queue grows without bound.
    Poisson {
        /// Mean queries per second.
        mean_qps: f64,
    },
    /// Closed-loop: `clients` concurrent callers, each issuing its next
    /// query `think_ns` after its previous one completes — load adapts
    /// to service capacity (arrivals stall while the server is busy).
    ClosedLoop {
        /// Concurrent callers.
        clients: usize,
        /// Per-client pause between completion and the next request.
        think_ns: u64,
    },
}

impl ArrivalProcess {
    /// Draws the next open-loop inter-arrival gap in nanoseconds
    /// (closed-loop arrivals are completion-driven; see the serve loop).
    pub(crate) fn next_gap_ns(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            ArrivalProcess::Poisson { mean_qps } => {
                assert!(mean_qps > 0.0, "mean_qps must be positive");
                // Exponential via inverse CDF; clamp u away from 1.0.
                let u = f64::from(rng.next_f32()).min(1.0 - 1e-9);
                ((-(1.0 - u).ln()) / mean_qps * 1e9) as u64
            }
            ArrivalProcess::ClosedLoop { .. } => {
                unreachable!("closed-loop arrivals are completion-driven")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_datasets::Popularity;

    fn tables() -> Vec<TableWorkload> {
        vec![
            TableWorkload::new(
                Popularity::Zipf {
                    rows: 100,
                    exponent: 1.0,
                },
                3,
            ),
            TableWorkload::new(Popularity::Uniform { rows: 50 }, 2),
        ]
    }

    #[test]
    fn catalog_queries_have_consistent_shapes() {
        let model = QueryModel::new(&tables(), 6, 10, CandidateCount::Fixed(4), 0.9, 1);
        assert_eq!(model.catalog_size(), 10);
        for id in 0..10 {
            let q = model.query(id);
            assert_eq!(q.candidates(), 4);
            assert_eq!(q.dense.shape(), (4, 6));
            assert_eq!(q.indices.len(), 2);
            assert_eq!(q.indices[0].num_outputs(), 4);
            assert_eq!(q.indices[0].len(), 12); // pooling 3
            assert_eq!(q.indices[1].len(), 8); // pooling 2
        }
    }

    #[test]
    fn variable_candidate_counts_stay_in_range() {
        let model = QueryModel::new(
            &tables(),
            4,
            32,
            CandidateCount::Uniform { min: 2, max: 9 },
            0.0,
            7,
        );
        let counts: Vec<usize> = (0..32).map(|i| model.query(i).candidates()).collect();
        assert!(counts.iter().all(|&c| (2..=9).contains(&c)));
        assert!(counts.iter().any(|&c| c != counts[0]), "counts must vary");
    }

    #[test]
    fn draws_are_seeded_and_share_catalog_entries() {
        let mk = || QueryModel::new(&tables(), 4, 8, CandidateCount::Fixed(2), 1.1, 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..20 {
            let qa = a.draw();
            let qb = b.draw();
            assert_eq!(qa.id, qb.id);
            assert_eq!(*qa, *qb);
        }
        // A re-drawn hot query is the same allocation, not a copy.
        let first = a.draw();
        let again = (0..50).map(|_| a.draw()).find(|q| q.id == first.id);
        if let Some(again) = again {
            assert!(Arc::ptr_eq(&first, &again));
        }
    }

    #[test]
    fn skewed_popularity_concentrates_draws() {
        let mut model = QueryModel::new(&tables(), 4, 100, CandidateCount::Fixed(2), 1.2, 3);
        let mut head = 0usize;
        for _ in 0..500 {
            if model.draw().id < 10 {
                head += 1;
            }
        }
        // Top-10% of a Zipf(1.2) catalog draws far more than 10% of
        // traffic (analytically ~60%; wide slack for RNG noise).
        assert!(head > 150, "head draws = {head}");
    }

    #[test]
    fn poisson_gaps_have_the_right_mean() {
        let p = ArrivalProcess::Poisson { mean_qps: 10_000.0 };
        let mut rng = SplitMix64::new(9);
        let n = 4000;
        let total: u64 = (0..n).map(|_| p.next_gap_ns(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // Expected 100_000 ns; 3-sigma of the sample mean is ~5%.
        assert!(
            (mean - 100_000.0).abs() < 10_000.0,
            "mean gap {mean} ns, expected ~100000"
        );
    }

    #[test]
    #[should_panic(expected = "catalog must hold")]
    fn empty_catalog_rejected() {
        QueryModel::new(&tables(), 4, 0, CandidateCount::Fixed(1), 0.0, 1);
    }
}

//! True concurrent train-and-serve over epoch-versioned model snapshots.
//!
//! [`serve_online`] is the *interleaved oracle*: one thread time-slices
//! between update steps and fused batches, so serving always scores the
//! newest model and staleness-in-versions is identically zero. A
//! production recommender instead trains and serves *simultaneously*
//! (the DeepRecSys regime), which this module runs for real:
//!
//! * the **trainer task** drives a [`TrainLoop`] (casting lookahead,
//!   prefetch and checkpoint cadence all intact) and publishes an
//!   immutable [`ModelSnapshot`] into a [`SnapshotStore`] every
//!   `snapshot_every` steps — a slab copy into a recycled buffer, no
//!   stop-the-world;
//! * N **serve engines** run on the same [`Pool`] with *no shared
//!   mutable model state*: each resolves one consistent snapshot per
//!   fused batch, refreshing only when its held version falls more than
//!   `staleness_bound` versions behind the store head;
//! * the staleness ledger becomes a **freshness SLA**: every batch
//!   records the version it scored against, how far behind the head
//!   that was, and the snapshot's wall-clock age — p99 model age sits
//!   next to p99 latency in the report.
//!
//! Because `TrainLoop::run` drains its lookahead queue before
//! returning, publishing every K steps is trajectory-neutral — the
//! concurrent trainer walks the *same* weight sequence as the offline
//! trainer, and a batch served at version V scores **bit-identically**
//! to the offline model after V's step count (property-tested in
//! `tests/concurrent_serving.rs`). Concurrency changes *which* version
//! a batch sees, never *what* a version contains.
//!
//! Scenario support rides on the same publication point: a **hot swap**
//! publishes a checkpoint-restored model mid-traffic
//! ([`ConcurrentConfig::swap`]), and a **rollback** re-publishes a
//! retained version's exact bytes under a new version
//! ([`ConcurrentConfig::rollback`]) — engines never pause for either;
//! they pick the change up at their next refresh.

use std::fs::File;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::engine::{ServeEngine, DEFAULT_CACHE_CAPACITY};
use crate::request::{Query, QueryModel};
use crate::stats::{FreshnessLedger, ServeReport};
use tcast_datasets::BatchSource;
use tcast_dlrm::checkpoint::{read_train_checkpoint, CheckpointError};
use tcast_dlrm::{DriverError, Execution, TrainLoop};
use tcast_embedding::EmbeddingError;
use tcast_pool::Pool;
use tcast_snapshot::{ModelSnapshot, SnapshotError, SnapshotStore};

/// Publish a checkpoint-restored model mid-traffic (the model-push
/// drill: serving continues on the old snapshot until engines refresh).
#[derive(Debug, Clone)]
pub struct HotSwap {
    /// The checkpoint file to restore (a `.tckp` written by
    /// `tcast_dlrm::checkpoint`).
    pub path: PathBuf,
    /// Run the swap after the first publish whose version is >= this.
    pub at_version: u64,
}

/// Roll the store back to a retained version mid-traffic (the bad-push
/// drill: the re-publication is a *new* monotonic version carrying the
/// old version's exact bytes).
#[derive(Debug, Clone)]
pub struct RollbackDrill {
    /// Run the rollback after the first publish whose version is >= this.
    pub at_version: u64,
    /// The retained version whose bytes to re-publish.
    pub to_version: u64,
}

/// Shape of a concurrent train-and-serve run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Queries each engine serves (engine count = number of workloads
    /// passed to [`serve_concurrent`]).
    pub queries_per_engine: usize,
    /// Fused-batch size each engine scores per snapshot resolution.
    pub batch: usize,
    /// Total trainer steps.
    pub train_steps: usize,
    /// Publish a snapshot after every this many trainer steps (K).
    pub snapshot_every: usize,
    /// An engine keeps its held snapshot until it falls more than this
    /// many versions behind the store head (0 = refresh whenever any
    /// newer version exists).
    pub staleness_bound: u64,
    /// Tail-latency target for per-query SLA accounting.
    pub sla_ns: u64,
    /// Kernel execution for engines (the trainer keeps whatever its
    /// `TrainLoop` was built with).
    pub execution: Execution,
    /// Record every served batch (queries, scores, snapshot identity)
    /// for offline replay — the bit-identity proptest's evidence. Off in
    /// steady state: recording allocates per batch.
    pub record_batches: bool,
    /// Optional mid-traffic hot swap.
    pub swap: Option<HotSwap>,
    /// Optional mid-traffic rollback.
    pub rollback: Option<RollbackDrill>,
}

impl ConcurrentConfig {
    /// A small, drill-free configuration serving `queries_per_engine`
    /// queries in fused batches of `batch` while the trainer takes
    /// `train_steps` steps, publishing every `snapshot_every`.
    pub fn new(
        queries_per_engine: usize,
        batch: usize,
        train_steps: usize,
        snapshot_every: usize,
    ) -> Self {
        Self {
            queries_per_engine,
            batch,
            train_steps,
            snapshot_every,
            staleness_bound: 0,
            sla_ns: 50_000_000,
            execution: Execution::Serial,
            record_batches: false,
            swap: None,
            rollback: None,
        }
    }
}

/// One served batch's replayable evidence (only collected when
/// [`ConcurrentConfig::record_batches`] is set): which snapshot scored
/// which queries to which bits.
#[derive(Debug, Clone)]
pub struct ServedBatchRecord {
    /// Which engine served it.
    pub engine: usize,
    /// Snapshot version the batch was scored against.
    pub version: u64,
    /// Trainer steps baked into that snapshot.
    pub steps: u64,
    /// The batch's queries, in fused order.
    pub queries: Vec<Arc<Query>>,
    /// The fused logits, flattened in fused order.
    pub scores: Vec<f32>,
}

/// What the trainer side of a concurrent run did.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Trainer steps completed.
    pub steps: u64,
    /// Per-step losses, in order.
    pub losses: Vec<f32>,
    /// Wall time inside `TrainLoop::run`.
    pub train_ns: u64,
    /// Snapshot publications (including swap/rollback re-publications).
    pub publishes: u64,
    /// Wall time inside `SnapshotStore::publish`/`rollback_to`.
    pub publish_ns: u64,
    /// Every version this run published, in order.
    pub versions_published: Vec<u64>,
    /// Hot swaps performed.
    pub swaps: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
}

impl TrainReport {
    /// Trainer steps per second of training wall time.
    pub fn steps_per_sec(&self) -> f64 {
        if self.train_ns == 0 {
            return 0.0;
        }
        self.steps as f64 / (self.train_ns as f64 / 1e9)
    }
}

/// Aggregate result of a concurrent run: the serving fleet, the
/// freshness SLA, and the trainer side.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentReport {
    /// All engines merged ([`ServeReport::merge`]).
    pub fleet: ServeReport,
    /// Each engine's own report, in engine order.
    pub per_engine: Vec<ServeReport>,
    /// Fleet-wide freshness: per-batch snapshot version, staleness in
    /// versions, and wall-clock model age (p99 is the SLA headline).
    pub freshness: FreshnessLedger,
    /// The trainer side.
    pub train: TrainReport,
    /// Served-batch evidence (empty unless `record_batches`).
    pub recorded: Vec<ServedBatchRecord>,
    /// Wall-clock span of the whole run (trainer and engines together).
    pub wall_ns: u64,
}

/// What can go wrong in a concurrent run.
#[derive(Debug)]
pub enum ConcurrentError {
    /// The trainer task failed.
    Train(DriverError),
    /// An engine's scoring failed.
    Score(EmbeddingError),
    /// The hot-swap drill could not restore its checkpoint.
    Swap(CheckpointError),
    /// The rollback drill named a version the store no longer retains.
    Rollback(SnapshotError),
}

impl std::fmt::Display for ConcurrentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcurrentError::Train(e) => write!(f, "concurrent trainer failed: {e}"),
            ConcurrentError::Score(e) => write!(f, "concurrent serving failed: {e}"),
            ConcurrentError::Swap(e) => write!(f, "hot swap failed: {e}"),
            ConcurrentError::Rollback(e) => write!(f, "rollback failed: {e}"),
        }
    }
}

impl std::error::Error for ConcurrentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConcurrentError::Train(e) => Some(e),
            ConcurrentError::Score(e) => Some(e),
            ConcurrentError::Swap(e) => Some(e),
            ConcurrentError::Rollback(e) => Some(e),
        }
    }
}

impl From<DriverError> for ConcurrentError {
    fn from(e: DriverError) -> Self {
        ConcurrentError::Train(e)
    }
}

impl From<EmbeddingError> for ConcurrentError {
    fn from(e: EmbeddingError) -> Self {
        ConcurrentError::Score(e)
    }
}

/// Runs the trainer and one serve engine per workload concurrently on
/// `pool`, trading model state only through `store` (see module docs).
///
/// The engine count is `workloads.len()`; each engine draws its own
/// query stream from its own workload, so per-engine traffic is seeded
/// and reproducible even though cross-engine interleaving is not. All
/// tasks run under one `Pool::scope`, whose help-first waiting makes a
/// single-worker pool valid (tasks serialize; every invariant still
/// holds — only the overlap disappears).
///
/// # Errors
///
/// The first failure wins: a trainer error, a scoring error, or a
/// failed swap/rollback drill. Other tasks still run to completion
/// (the scope joins everything) before the error returns.
///
/// # Panics
///
/// Panics if `workloads` is empty or the config's `batch`,
/// `snapshot_every` or `queries_per_engine` is zero.
pub fn serve_concurrent(
    driver: &mut TrainLoop,
    source: &mut (dyn BatchSource + Send),
    store: &SnapshotStore,
    workloads: &mut [QueryModel],
    pool: &Pool,
    config: &ConcurrentConfig,
) -> Result<ConcurrentReport, ConcurrentError> {
    assert!(!workloads.is_empty(), "need at least one engine workload");
    assert!(config.batch > 0, "batch must be positive");
    assert!(config.snapshot_every > 0, "snapshot_every must be positive");
    assert!(
        config.queries_per_engine > 0,
        "queries_per_engine must be positive"
    );
    let engines = workloads.len();
    let train_slot: Mutex<Option<Result<TrainReport, ConcurrentError>>> = Mutex::new(None);
    let engine_slots: Vec<Mutex<Option<Result<EngineOutcome, ConcurrentError>>>> =
        (0..engines).map(|_| Mutex::new(None)).collect();

    let t0 = Instant::now();
    pool.scope(|scope| {
        let train_slot = &train_slot;
        scope.spawn(move || {
            let outcome = run_trainer(driver, source, store, config);
            *train_slot.lock().expect("train slot poisoned") = Some(outcome);
        });
        for (i, (workload, slot)) in workloads.iter_mut().zip(&engine_slots).enumerate() {
            scope.spawn(move || {
                let outcome = run_engine(i, workload, store, config);
                *slot.lock().expect("engine slot poisoned") = Some(outcome);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let train = train_slot
        .into_inner()
        .expect("train slot poisoned")
        .expect("trainer task always reports")?;
    let mut report = ConcurrentReport {
        train,
        wall_ns,
        ..Default::default()
    };
    for slot in engine_slots {
        let outcome = slot
            .into_inner()
            .expect("engine slot poisoned")
            .expect("engine task always reports")?;
        if report.per_engine.is_empty() {
            report.fleet = outcome.report.clone();
        } else {
            report.fleet.merge(&outcome.report);
        }
        report.freshness.merge(&outcome.freshness);
        report.per_engine.push(outcome.report);
        report.recorded.extend(outcome.recorded);
    }
    Ok(report)
}

/// The trainer side: run K steps, publish, repeat — firing the swap and
/// rollback drills at their configured versions.
fn run_trainer(
    driver: &mut TrainLoop,
    source: &mut (dyn BatchSource + Send),
    store: &SnapshotStore,
    config: &ConcurrentConfig,
) -> Result<TrainReport, ConcurrentError> {
    let mut report = TrainReport::default();
    let mut swap = config.swap.clone();
    let mut rollback = config.rollback.clone();
    let mut remaining = config.train_steps;
    while remaining > 0 {
        let chunk = remaining.min(config.snapshot_every);
        let t0 = Instant::now();
        let summary = driver.run(source, chunk)?;
        report.train_ns += t0.elapsed().as_nanos() as u64;
        report.steps += summary.steps as u64;
        report.losses.extend(summary.losses);
        remaining -= chunk;

        let t0 = Instant::now();
        let version = store.publish(driver.trainer().model(), driver.trainer().steps());
        report.publish_ns += t0.elapsed().as_nanos() as u64;
        report.publishes += 1;
        report.versions_published.push(version);

        // Drills fire between runs, where the lookahead queue is drained
        // (`trainer_mut` requires it) and a publish just happened.
        if let Some(hs) = swap.take_if(|hs| version >= hs.at_version) {
            let t0 = Instant::now();
            let ckpt = read_train_checkpoint(
                &mut File::open(&hs.path).map_err(|e| ConcurrentError::Swap(e.into()))?,
            )
            .map_err(ConcurrentError::Swap)?;
            ckpt.restore_into(driver.trainer_mut())
                .map_err(ConcurrentError::Swap)?;
            let swapped = store.publish(driver.trainer().model(), driver.trainer().steps());
            report.publish_ns += t0.elapsed().as_nanos() as u64;
            report.publishes += 1;
            report.versions_published.push(swapped);
            report.swaps += 1;
        }
        if let Some(rb) = rollback.take_if(|rb| store.version() >= rb.at_version) {
            let t0 = Instant::now();
            let rolled = store
                .rollback_to(rb.to_version)
                .map_err(ConcurrentError::Rollback)?;
            report.publish_ns += t0.elapsed().as_nanos() as u64;
            report.publishes += 1;
            report.versions_published.push(rolled);
            report.rollbacks += 1;
        }
    }
    Ok(report)
}

struct EngineOutcome {
    report: ServeReport,
    freshness: FreshnessLedger,
    recorded: Vec<ServedBatchRecord>,
}

/// One engine's serving loop: engine-paced (no arrival simulation —
/// wall-clock throughput is the point), one snapshot resolution per
/// fused batch.
fn run_engine(
    index: usize,
    workload: &mut QueryModel,
    store: &SnapshotStore,
    config: &ConcurrentConfig,
) -> Result<EngineOutcome, ConcurrentError> {
    let mut held: Arc<ModelSnapshot> = store.latest();
    let mut engine = ServeEngine::new(
        held.model(),
        DEFAULT_CACHE_CAPACITY,
        config.execution.clone(),
    );
    let mut report = ServeReport {
        sla_ns: config.sla_ns,
        ..Default::default()
    };
    let mut freshness = FreshnessLedger::default();
    let mut recorded = Vec::new();
    let mut queries: Vec<Arc<Query>> = Vec::with_capacity(config.batch);
    let started = Instant::now();
    let mut remaining = config.queries_per_engine;
    while remaining > 0 {
        let n = remaining.min(config.batch);
        queries.clear();
        for _ in 0..n {
            queries.push(workload.draw());
        }
        // Resolve: keep the held snapshot while it is within the
        // staleness bound; otherwise take the head. The whole batch
        // scores against one consistent version either way.
        if store.version().saturating_sub(held.version()) > config.staleness_bound {
            held = store.latest();
        }
        let t0 = Instant::now();
        let scored = engine.score(held.model(), queries.iter())?;
        let service_ns = t0.elapsed().as_nanos() as u64;
        report.samples += scored.num_samples() as u64;
        if config.record_batches {
            recorded.push(ServedBatchRecord {
                engine: index,
                version: held.version(),
                steps: held.steps(),
                queries: queries.clone(),
                scores: scored.fused_logits().as_slice().to_vec(),
            });
        }
        report.batches += 1;
        report.queries += n as u64;
        report.service.record(service_ns);
        // Engine-paced: a query's latency is its batch's service time.
        for _ in 0..n {
            report.latency.record(service_ns);
            // Exclusive deadline: meet iff latency < sla_ns.
            if service_ns >= config.sla_ns {
                report.sla_violations += 1;
            }
        }
        report.max_queue_depth = report.max_queue_depth.max(n);
        freshness.record(
            held.version(),
            store.version().saturating_sub(held.version()),
            held.age_ns(),
        );
        remaining -= n;
    }
    report.span_ns = (started.elapsed().as_nanos() as u64).max(1);
    report.cache_hit_rate = engine.cache_hit_rate();
    Ok(EngineOutcome {
        report,
        freshness,
        recorded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::CandidateCount;
    use tcast_datasets::{SyntheticCtr, SyntheticSource};
    use tcast_dlrm::{BackwardMode, DlrmConfig, Trainer};

    fn workload(seed: u64) -> QueryModel {
        let cfg = DlrmConfig::tiny();
        QueryModel::new(
            &cfg.table_workloads(),
            cfg.dense_features,
            12,
            CandidateCount::Fixed(3),
            1.0,
            seed,
        )
    }

    fn driver_and_source() -> (TrainLoop, SyntheticSource) {
        let cfg = DlrmConfig::tiny();
        let trainer = Trainer::new(cfg.clone(), BackwardMode::Casted, 17).unwrap();
        let source = SyntheticSource::new(
            SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 2),
            16,
        );
        (TrainLoop::new(trainer, 2), source)
    }

    #[test]
    fn trains_and_serves_concurrently_with_freshness_accounting() {
        let (mut driver, mut source) = driver_and_source();
        let store = SnapshotStore::new(driver.trainer().model(), 0, 2);
        let mut workloads = [workload(5), workload(9)];
        let pool = Pool::new(2);
        let config = ConcurrentConfig::new(24, 4, 8, 2);
        let report = serve_concurrent(
            &mut driver,
            &mut source,
            &store,
            &mut workloads,
            &pool,
            &config,
        )
        .unwrap();
        assert_eq!(report.train.steps, 8);
        assert_eq!(report.train.publishes, 4);
        assert_eq!(report.train.versions_published, vec![2, 3, 4, 5]);
        assert_eq!(report.train.losses.len(), 8);
        assert_eq!(driver.trainer().steps(), 8);
        assert_eq!(report.per_engine.len(), 2);
        assert_eq!(report.fleet.queries, 48);
        assert_eq!(report.fleet.batches, 12);
        assert_eq!(report.freshness.batches(), 12);
        // Every served version must be one the store actually published.
        for &v in &report.freshness.versions {
            assert!((1..=5).contains(&v), "unpublished version {v} served");
        }
        assert!(report.freshness.p99_model_age_ns() > 0);
        assert!(report.wall_ns > 0);
        assert!(report.train.steps_per_sec() > 0.0);
    }

    #[test]
    fn recorded_batches_carry_snapshot_identity() {
        let (mut driver, mut source) = driver_and_source();
        let store = SnapshotStore::new(driver.trainer().model(), 0, 2);
        let mut workloads = [workload(5)];
        let pool = Pool::new(1);
        let mut config = ConcurrentConfig::new(12, 4, 4, 2);
        config.record_batches = true;
        let report = serve_concurrent(
            &mut driver,
            &mut source,
            &store,
            &mut workloads,
            &pool,
            &config,
        )
        .unwrap();
        assert_eq!(report.recorded.len(), 3);
        for rec in &report.recorded {
            assert_eq!(rec.engine, 0);
            assert_eq!(rec.queries.len(), 4);
            let samples: usize = rec.queries.iter().map(|q| q.candidates()).sum();
            assert_eq!(rec.scores.len(), samples);
            // steps must be consistent with the version's publish cadence
            // (version 1 = 0 steps, then K per version).
            assert_eq!(rec.steps, (rec.version - 1) * 2);
        }
    }

    #[test]
    fn rollback_drill_republishes_and_counts() {
        let (mut driver, mut source) = driver_and_source();
        let store = SnapshotStore::new(driver.trainer().model(), 0, 3);
        let mut workloads = [workload(5)];
        let pool = Pool::new(1);
        let mut config = ConcurrentConfig::new(8, 4, 6, 2);
        config.rollback = Some(RollbackDrill {
            at_version: 3,
            to_version: 2,
        });
        let report = serve_concurrent(
            &mut driver,
            &mut source,
            &store,
            &mut workloads,
            &pool,
            &config,
        )
        .unwrap();
        assert_eq!(report.train.rollbacks, 1);
        assert_eq!(report.train.publishes, 4); // 3 publishes + 1 rollback
        let head = store.latest();
        assert_eq!(head.version(), 5, "rollback + final publish");
    }
}

//! Dense tensor and MLP training substrate for the Tensor Casting
//! reproduction.
//!
//! DLRM-style recommendation models combine *sparse* embedding layers with
//! *dense* multi-layer perceptrons (bottom MLP over continuous features, top
//! MLP over the feature-interaction output; see Fig. 1 of the paper). The
//! paper runs the dense side on a GPU through cuDNN/cuBLAS; this crate is the
//! from-scratch Rust substitute: a row-major [`Matrix`] with a blocked GEMM,
//! differentiable [`Linear`]/[`Mlp`] layers, binary-cross-entropy loss and
//! the DLRM feature-interaction operator.
//!
//! Everything is `f32`, matching the paper's training precision.
//!
//! # Example
//!
//! ```
//! use tcast_tensor::{Matrix, Mlp, Activation};
//!
//! # fn main() -> Result<(), tcast_tensor::ShapeError> {
//! // A 2-layer MLP: 8 -> 16 -> 1, ReLU hidden, linear output.
//! let mut mlp = Mlp::new(8, &[16, 1], Activation::Relu, 42)?;
//! let x = Matrix::zeros(4, 8); // batch of 4
//! let y = mlp.forward(&x)?;
//! assert_eq!((y.rows(), y.cols()), (4, 1));
//! # Ok(())
//! # }
//! ```

mod error;
mod init;
mod interaction;
mod linear;
mod loss;
mod matrix;
mod mlp;
mod ops;
mod parallel;
pub mod simd;

pub use error::ShapeError;
pub use init::{he_normal, xavier_uniform, SplitMix64};
pub use interaction::{interaction_output_dim, FeatureInteraction, InteractionKind};
pub use linear::Linear;
pub use loss::{
    bce_with_logits, bce_with_logits_backward, bce_with_logits_backward_into, mse, mse_backward,
    mse_with_grad,
};
pub use matrix::Matrix;
pub use mlp::{Activation, Mlp, MlpInferenceScratch};
pub use ops::{relu, relu_backward, relu_backward_in_place, relu_into, sigmoid, sigmoid_backward};
pub use parallel::{matmul_parallel, matmul_parallel_in};
pub use simd::KernelDispatch;
pub use tcast_pool::{Exec, Pool};

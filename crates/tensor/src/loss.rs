//! Training losses: binary cross-entropy over logits (the CTR objective of
//! DLRM) and mean squared error (used in substrate tests).

use crate::error::ShapeError;
use crate::matrix::Matrix;
use crate::ops::sigmoid_scalar;

/// Mean binary-cross-entropy between logits and `{0,1}` targets, computed
/// in the numerically-stable fused form
/// `max(z,0) - z*t + ln(1 + e^{-|z|})`.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
///
/// ```
/// use tcast_tensor::{Matrix, bce_with_logits};
///
/// let logits = Matrix::from_rows(&[&[10.0], &[-10.0]]).unwrap();
/// let targets = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
/// // Confident and correct: loss near zero.
/// assert!(bce_with_logits(&logits, &targets).unwrap() < 1e-3);
/// ```
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> Result<f32, ShapeError> {
    if logits.shape() != targets.shape() {
        return Err(ShapeError::new(
            "bce_with_logits",
            logits.shape(),
            targets.shape(),
        ));
    }
    let n = logits.len() as f32;
    let mut total = 0.0f32;
    for (&z, &t) in logits.as_slice().iter().zip(targets.as_slice().iter()) {
        total += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
    }
    Ok(total / n)
}

/// Gradient of [`bce_with_logits`] w.r.t. the logits:
/// `(sigmoid(z) - t) / N`.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
pub fn bce_with_logits_backward(logits: &Matrix, targets: &Matrix) -> Result<Matrix, ShapeError> {
    let mut out = Matrix::default();
    bce_with_logits_backward_into(logits, targets, &mut out)?;
    Ok(out)
}

/// [`bce_with_logits_backward`] writing into `out` (reshaped in place,
/// reusing its allocation).
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
pub fn bce_with_logits_backward_into(
    logits: &Matrix,
    targets: &Matrix,
    out: &mut Matrix,
) -> Result<(), ShapeError> {
    if logits.shape() != targets.shape() {
        return Err(ShapeError::new(
            "bce_with_logits_backward",
            logits.shape(),
            targets.shape(),
        ));
    }
    let n = logits.len() as f32;
    out.zero_into(logits.rows(), logits.cols());
    for (o, (&z, &t)) in out
        .as_mut_slice()
        .iter_mut()
        .zip(logits.as_slice().iter().zip(targets.as_slice().iter()))
    {
        *o = (sigmoid_scalar(z) - t) / n;
    }
    Ok(())
}

/// Mean squared error `mean((y - t)^2)`.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> Result<f32, ShapeError> {
    if pred.shape() != target.shape() {
        return Err(ShapeError::new("mse", pred.shape(), target.shape()));
    }
    let n = pred.len() as f32;
    Ok(pred
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .map(|(&y, &t)| (y - t) * (y - t))
        .sum::<f32>()
        / n)
}

/// Gradient of [`mse`] w.r.t. predictions: `2 (y - t) / N`.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
pub fn mse_backward(pred: &Matrix, target: &Matrix) -> Result<Matrix, ShapeError> {
    if pred.shape() != target.shape() {
        return Err(ShapeError::new(
            "mse_backward",
            pred.shape(),
            target.shape(),
        ));
    }
    let n = pred.len() as f32;
    let data: Vec<f32> = pred
        .as_slice()
        .iter()
        .zip(target.as_slice().iter())
        .map(|(&y, &t)| 2.0 * (y - t) / n)
        .collect();
    Matrix::from_vec(pred.rows(), pred.cols(), data)
}

/// Convenience: MSE loss and its gradient in one call.
///
/// # Errors
///
/// Returns a [`ShapeError`] if the shapes differ.
pub fn mse_with_grad(pred: &Matrix, target: &Matrix) -> Result<(f32, Matrix), ShapeError> {
    Ok((mse(pred, target)?, mse_backward(pred, target)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_is_ln2_at_zero_logit() {
        let z = Matrix::zeros(4, 1);
        let t = Matrix::from_vec(4, 1, vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        let loss = bce_with_logits(&z, &t).unwrap();
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn bce_penalizes_confident_wrong() {
        let right = Matrix::from_rows(&[&[5.0]]).unwrap();
        let wrong = Matrix::from_rows(&[&[-5.0]]).unwrap();
        let t = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(bce_with_logits(&wrong, &t).unwrap() > bce_with_logits(&right, &t).unwrap() + 4.0);
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let z = Matrix::from_rows(&[&[1000.0, -1000.0]]).unwrap();
        let t = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        let loss = bce_with_logits(&z, &t).unwrap();
        assert!(loss.is_finite());
        assert!(loss < 1e-3);
        let grad = bce_with_logits_backward(&z, &t).unwrap();
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let z = Matrix::from_rows(&[&[0.3, -1.2], &[2.0, 0.0]]).unwrap();
        let t = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let g = bce_with_logits_backward(&z, &t).unwrap();
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let mut zp = z.clone();
                zp[(r, c)] += eps;
                let mut zm = z.clone();
                zm[(r, c)] -= eps;
                let num = (bce_with_logits(&zp, &t).unwrap() - bce_with_logits(&zm, &t).unwrap())
                    / (2.0 * eps);
                assert!(
                    (g[(r, c)] - num).abs() < 1e-3,
                    "grad[{r}][{c}] {} vs {num}",
                    g[(r, c)]
                );
            }
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::filled(2, 2, 3.0);
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let y = Matrix::from_rows(&[&[0.5, -1.0]]).unwrap();
        let t = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let g = mse_backward(&y, &t).unwrap();
        let eps = 1e-3f32;
        for c in 0..2 {
            let mut yp = y.clone();
            yp[(0, c)] += eps;
            let mut ym = y.clone();
            ym[(0, c)] -= eps;
            let num = (mse(&yp, &t).unwrap() - mse(&ym, &t).unwrap()) / (2.0 * eps);
            assert!((g[(0, c)] - num).abs() < 1e-3);
        }
    }

    #[test]
    fn shape_mismatch_is_rejected_everywhere() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(bce_with_logits(&a, &b).is_err());
        assert!(bce_with_logits_backward(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        assert!(mse_backward(&a, &b).is_err());
    }
}

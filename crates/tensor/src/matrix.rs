//! Row-major `f32` matrix with the handful of operations DLRM training
//! needs: blocked GEMM (plain, A-transposed, B-transposed), elementwise
//! arithmetic, row access and reductions.

use crate::error::ShapeError;
use crate::simd::{self, KernelDispatch};

/// A dense, row-major matrix of `f32`.
///
/// This is the minimal dense-tensor type backing the MLP substrate. It is a
/// plain data structure: storage is a single contiguous `Vec<f32>` of length
/// `rows * cols`, with element `(r, c)` at index `r * cols + c`.
///
/// ```
/// use tcast_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// The empty `0 x 0` matrix (no allocation).
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Reshapes this matrix to `rows x cols` with every element zero,
    /// **reusing the existing allocation** whenever its capacity suffices.
    ///
    /// This is the buffer-recycling primitive behind the zero-allocation
    /// steady-state training step: scratch matrices are `zero_into`-ed at
    /// the start of each kernel instead of freshly allocated.
    pub fn zero_into(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Makes this matrix an exact copy of `src`, reusing the existing
    /// allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from a slice of equal-length row slices.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(ShapeError::new("from_rows", (nrows, ncols), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * rhs` using a cache-blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] writing into `out` (reshaped in place, reusing
    /// its allocation). Bit-identical to the allocating form.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        self.matmul_into_with(rhs, out, simd::dispatch())
    }

    /// [`Matrix::matmul_into`] on an explicit kernel tier, bypassing the
    /// process-wide [`simd::dispatch`] — the bench/test entry point for
    /// comparing tiers in one process.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.rows()`.
    pub fn matmul_into_with(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        kernel: KernelDispatch,
    ) -> Result<(), ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        out.zero_into(m, n);
        simd::gemm(kernel, &self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// Used in backprop for the weight gradient `dW = X^T * dY`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.rows() == rhs.rows()`.
    pub fn matmul_at(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_at_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_at`] writing into `out` (reshaped in place,
    /// reusing its allocation). Bit-identical to the allocating form.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.rows() == rhs.rows()`.
    pub fn matmul_at_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        self.matmul_at_into_with(rhs, out, simd::dispatch())
    }

    /// [`Matrix::matmul_at_into`] on an explicit kernel tier.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.rows() == rhs.rows()`.
    pub fn matmul_at_into_with(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        kernel: KernelDispatch,
    ) -> Result<(), ShapeError> {
        if self.rows != rhs.rows {
            return Err(ShapeError::new("matmul_at", self.shape(), rhs.shape()));
        }
        let (m, k, n) = (self.cols, self.rows, rhs.cols);
        out.zero_into(m, n);
        // out[i][j] = sum_r self[r][i] * rhs[r][j]; `r` outermost so both
        // operands stream sequentially.
        simd::gemm_at(kernel, &self.data, &rhs.data, &mut out.data, k, m, n);
        Ok(())
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// Used in backprop for the input gradient `dX = dY * W^T`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.cols()`.
    pub fn matmul_bt(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::default();
        self.matmul_bt_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_bt`] writing into `out` (reshaped in place,
    /// reusing its allocation). Bit-identical to the allocating form.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.cols()`.
    pub fn matmul_bt_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        self.matmul_bt_into_with(rhs, out, simd::dispatch())
    }

    /// [`Matrix::matmul_bt_into`] on an explicit kernel tier.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] unless `self.cols() == rhs.cols()`.
    pub fn matmul_bt_into_with(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        kernel: KernelDispatch,
    ) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError::new("matmul_bt", self.shape(), rhs.shape()));
        }
        let (k, n) = (self.cols, rhs.rows);
        out.zero_into(self.rows, n);
        simd::dot_band(kernel, &self.data, &rhs.data, &mut out.data, k, n);
        Ok(())
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise product (Hadamard) `self ⊙ rhs`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// In-place `self += alpha * rhs` (axpy), the update used by SGD.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) -> Result<(), ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("add_scaled", self.shape(), rhs.shape()));
        }
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scaled(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|v| v * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds a row vector `bias` (length `cols`) to every row in place.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `bias.len() != self.cols()`.
    pub fn add_row_vector(&mut self, bias: &[f32]) -> Result<(), ShapeError> {
        if bias.len() != self.cols {
            return Err(ShapeError::new(
                "add_row_vector",
                self.shape(),
                (1, bias.len()),
            ));
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Sums over rows, producing a vector of length `cols`.
    ///
    /// This is the bias-gradient reduction in backprop.
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] writing into `out` (resized in place, reusing
    /// its allocation).
    pub fn sum_rows_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute elementwise difference against `rhs`.
    ///
    /// Useful in tests to compare two training trajectories.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f32, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new("max_abs_diff", self.shape(), rhs.shape()));
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Horizontally concatenates `parts` (all with equal row counts).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if row counts differ or `parts` is empty.
    pub fn hconcat(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let Some(first) = parts.first() else {
            return Err(ShapeError::new("hconcat", (0, 0), (0, 0)));
        };
        let rows = first.rows;
        let total_cols: usize = parts.iter().map(|p| p.cols).sum();
        for p in parts {
            if p.rows != rows {
                return Err(ShapeError::new("hconcat", (rows, total_cols), p.shape()));
            }
        }
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut offset = 0;
            for p in parts {
                dst[offset..offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        Ok(out)
    }

    /// Splits the matrix column-wise into chunks of the given widths.
    ///
    /// The inverse of [`Matrix::hconcat`]; used to route the interaction
    /// gradient back to its inputs.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the widths do not sum to `self.cols()`.
    pub fn hsplit(&self, widths: &[usize]) -> Result<Vec<Matrix>, ShapeError> {
        let total: usize = widths.iter().sum();
        if total != self.cols {
            return Err(ShapeError::new("hsplit", self.shape(), (1, total)));
        }
        let mut out: Vec<Matrix> = widths
            .iter()
            .map(|&w| Matrix::zeros(self.rows, w))
            .collect();
        for r in 0..self.rows {
            let src = self.row(r);
            let mut offset = 0;
            for (part, &w) in out.iter_mut().zip(widths.iter()) {
                part.row_mut(r).copy_from_slice(&src[offset..offset + w]);
                offset += w;
            }
        }
        Ok(out)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl Matrix {
    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(op, self.shape(), rhs.shape()));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_validates_lengths() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id).unwrap(), a);
    }

    #[test]
    fn matmul_matches_naive_on_odd_sizes() {
        let mut a = Matrix::zeros(7, 13);
        let mut b = Matrix::zeros(13, 5);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin();
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.61).cos();
        }
        let fast = a.matmul(&b).unwrap();
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut a = Matrix::zeros(6, 4);
        let mut b = Matrix::zeros(6, 3);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = i as f32 * 0.1 - 1.0;
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v = 0.5 - i as f32 * 0.05;
        }
        let implicit = a.matmul_at(&b).unwrap();
        let explicit = a.transposed().matmul(&b).unwrap();
        assert!(implicit.max_abs_diff(&explicit).unwrap() < 1e-5);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut a = Matrix::zeros(5, 4);
        let mut b = Matrix::zeros(7, 4);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 5) as f32 - 2.0;
        }
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 3) as f32 * 0.25;
        }
        let implicit = a.matmul_bt(&b).unwrap();
        let explicit = a.matmul(&b.transposed()).unwrap();
        assert!(implicit.max_abs_diff(&explicit).unwrap() < 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.sub(&b).unwrap(), a);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 2.0);
        a.add_scaled(&g, -0.5).unwrap();
        assert_eq!(a, Matrix::filled(2, 2, 0.0));
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vector(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
        assert!(a.add_row_vector(&[1.0]).is_err());
    }

    #[test]
    fn sum_rows_is_bias_grad_reduction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.sum_rows(), vec![9.0, 12.0]);
    }

    #[test]
    fn hconcat_then_hsplit_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0], &[7.0]]).unwrap();
        let cat = Matrix::hconcat(&[&a, &b]).unwrap();
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.row(0), &[1.0, 2.0, 3.0]);
        let parts = cat.hsplit(&[2, 1]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn hconcat_rejects_mismatched_rows() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        assert!(Matrix::hconcat(&[&a, &b]).is_err());
    }

    #[test]
    fn hsplit_rejects_bad_widths() {
        let a = Matrix::zeros(2, 5);
        assert!(a.hsplit(&[2, 2]).is_err());
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 7.0;
        assert_eq!(a[(0, 1)], 7.0);
        assert_eq!(a.as_slice()[1], 7.0);
    }

    #[test]
    fn scaled_and_map_agree() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        assert_eq!(a.scaled(2.0), a.map(|v| v * 2.0));
    }
}

//! Runtime-dispatched SIMD kernels: x86-64 AVX2 (`std::arch`) with a
//! portable scalar fallback.
//!
//! ROADMAP's "as fast as the hardware allows" requires explicit SIMD, but
//! the repository's entire correctness story rests on bit-identity
//! invariants (pooled == serial, sharded == unsharded, fused-batch ==
//! per-query, resume == uninterrupted). The kernels here are therefore
//! designed so that vectorization *cannot* change results:
//!
//! * Every kernel vectorizes **across the `j`/`dim` lane axis** and keeps
//!   the reduction axis (`k`, lookup order) in exactly the scalar order,
//!   so each output element sees the same operations in the same order.
//! * The non-FMA tier ([`KernelDispatch::Avx2`]) uses only individually
//!   correctly-rounded operations (`vmulps`/`vaddps`/`vsubps`/`vdivps`/
//!   `vsqrtps` match their scalar counterparts per IEEE-754), so it is
//!   **bit-identical** to [`KernelDispatch::Scalar`] — including on NaN,
//!   `-0.0` and denormal inputs (Rust performs no FP contraction and x86
//!   runs with FTZ/DAZ off by default).
//! * The [`KernelDispatch::Fma`] tier contracts `a*b + c` with
//!   `vfmaddps` (one rounding instead of two). It is *tolerance-gated*,
//!   never auto-selected, and opt-in via `TCAST_KERNEL=fma`.
//!
//! The active tier is resolved once per process from the `TCAST_KERNEL`
//! environment variable (`scalar` | `avx2` | `fma` | `auto`, default
//! `auto` = AVX2 where `is_x86_feature_detected!` reports it, scalar
//! otherwise) and cached; tests and benches can override it in-process
//! with [`force`] or per call through the explicit-dispatch entry points.
//! On non-x86-64 targets every tier falls back to the scalar kernels, so
//! forcing `avx2` on such a host is safe (and a no-op).
//!
//! The dot-product kernels reduce eight partial accumulators with the
//! AVX2 horizontal-add tree (`(s0+s2) + (s1+s3)` over `s_l = acc_l +
//! acc_{l+4}`); the scalar kernel performs the identical fold, which is
//! what makes `matmul_bt` bit-identical across tiers despite being a
//! reduction.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Block edge (in elements) for the cache-blocked GEMM kernels.
///
/// 64x64 f32 tiles are 16 KiB per operand tile, comfortably inside L1/L2
/// on any machine this runs on. All tiers share the same blocking so the
/// per-element accumulation order is tier-independent.
pub const GEMM_BLOCK: usize = 64;

/// Environment variable selecting the kernel tier (`scalar` | `avx2` |
/// `fma` | `auto`).
pub const KERNEL_ENV: &str = "TCAST_KERNEL";

/// Which kernel implementation the hot loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelDispatch {
    /// Portable scalar loops — the bit-exact oracle for `Avx2` and the
    /// tolerance oracle for `Fma`.
    Scalar,
    /// AVX2 without FMA contraction: bit-identical to `Scalar`.
    Avx2,
    /// AVX2 + FMA contraction in GEMM/dot/axpy: faster, tolerance-gated,
    /// never auto-selected.
    Fma,
}

impl KernelDispatch {
    /// The best *bit-identical* tier this host supports (`Avx2` where
    /// available, else `Scalar`). `Fma` is never auto-selected.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelDispatch::Avx2;
        }
        KernelDispatch::Scalar
    }

    /// Parses a `TCAST_KERNEL` value. `auto` (and the empty string)
    /// resolve through [`KernelDispatch::detect`].
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelDispatch::Scalar),
            "avx2" => Some(KernelDispatch::Avx2),
            "fma" => Some(KernelDispatch::Fma),
            "auto" | "" => Some(KernelDispatch::detect()),
            _ => None,
        }
    }

    /// Whether this host can actually run the tier. Scalar always can;
    /// the SIMD tiers require the matching CPU features (queried at
    /// runtime, cached by `std`).
    pub fn supported(self) -> bool {
        match self {
            KernelDispatch::Scalar => true,
            KernelDispatch::Avx2 => avx2_ok(),
            KernelDispatch::Fma => fma_ok(),
        }
    }

    /// Every tier this host supports, scalar first — the bench sweep
    /// axis.
    pub fn available() -> Vec<Self> {
        let mut tiers = vec![KernelDispatch::Scalar];
        if KernelDispatch::Avx2.supported() {
            tiers.push(KernelDispatch::Avx2);
        }
        if KernelDispatch::Fma.supported() {
            tiers.push(KernelDispatch::Fma);
        }
        tiers
    }

    /// Stable lowercase name (the `dispatch` field of bench JSON rows).
    pub fn name(self) -> &'static str {
        match self {
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Avx2 => "avx2",
            KernelDispatch::Fma => "fma",
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn avx2_ok() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn fma_ok() -> bool {
    avx2_ok() && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn avx2_ok() -> bool {
    false
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn fma_ok() -> bool {
    false
}

/// In-process override installed by [`force`]: 0 = none, else tier + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// The once-per-process `TCAST_KERNEL` resolution.
static RESOLVED: OnceLock<KernelDispatch> = OnceLock::new();

/// The process-wide kernel tier every implicit-dispatch entry point
/// (`Matrix::matmul_into`, `gather_reduce_into`, the optimizer steps)
/// runs: the [`force`] override if one is installed, otherwise the cached
/// `TCAST_KERNEL` resolution.
#[inline]
pub fn dispatch() -> KernelDispatch {
    match FORCED.load(Ordering::Relaxed) {
        1 => KernelDispatch::Scalar,
        2 => KernelDispatch::Avx2,
        3 => KernelDispatch::Fma,
        _ => *RESOLVED.get_or_init(resolve_from_env),
    }
}

/// Installs (or with `None` removes) a process-wide dispatch override,
/// taking precedence over `TCAST_KERNEL`. For tests and benches that
/// compare tiers in one process; unsupported tiers still fall back to
/// scalar inside each kernel, so forcing `Avx2` on a non-AVX2 host is
/// safe.
pub fn force(d: Option<KernelDispatch>) {
    let code = match d {
        None => 0,
        Some(KernelDispatch::Scalar) => 1,
        Some(KernelDispatch::Avx2) => 2,
        Some(KernelDispatch::Fma) => 3,
    };
    FORCED.store(code, Ordering::Relaxed);
}

fn resolve_from_env() -> KernelDispatch {
    match std::env::var(KERNEL_ENV) {
        Ok(v) => match KernelDispatch::parse(&v) {
            Some(d) if d.supported() => d,
            Some(d) => {
                eprintln!(
                    "{KERNEL_ENV}={} not supported on this host; falling back to {}",
                    d.name(),
                    KernelDispatch::detect().name()
                );
                KernelDispatch::detect()
            }
            None => {
                eprintln!(
                    "{KERNEL_ENV}={v:?} not recognized (expected scalar|avx2|fma|auto); \
                     falling back to {}",
                    KernelDispatch::detect().name()
                );
                KernelDispatch::detect()
            }
        },
        Err(_) => KernelDispatch::detect(),
    }
}

/// Hints the prefetcher to pull `row` (up to 512 bytes of it) into L1.
///
/// Used ahead of the next gather row so the accumulate of the current row
/// overlaps the memory latency of the next — the software-prefetch half
/// of the paper's "gathers are bandwidth-bound" observation. No-op on
/// non-x86-64 targets; `prefetcht0` requires no feature detection on
/// x86-64 and never faults.
#[inline(always)]
pub fn prefetch(row: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let base = row.as_ptr() as *const i8;
        let bytes = (row.len() * 4).min(512);
        let mut off = 0;
        while off < bytes {
            // SAFETY: prefetch is a hint; it never faults, even on
            // addresses past the slice end.
            unsafe { _mm_prefetch(base.wrapping_add(off), _MM_HINT_T0) };
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = row;
}

// ---------------------------------------------------------------------------
// Scalar kernels: the oracle tier.
// ---------------------------------------------------------------------------

#[inline(always)]
fn add_assign_scalar(acc: &mut [f32], src: &[f32]) {
    for (a, &v) in acc.iter_mut().zip(src.iter()) {
        *a += v;
    }
}

#[inline(always)]
fn axpy_scalar(acc: &mut [f32], src: &[f32], alpha: f32) {
    for (a, &v) in acc.iter_mut().zip(src.iter()) {
        *a += alpha * v;
    }
}

/// Scalar dot with eight partial accumulators folded in the exact AVX2
/// horizontal-reduce order, so [`dot`] is bit-identical across tiers.
#[inline(always)]
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let ai = &a[i * 8..i * 8 + 8];
        let bi = &b[i * 8..i * 8 + 8];
        for l in 0..8 {
            acc[l] += ai[l] * bi[l];
        }
    }
    // The vextractf128/vmovhlps/vshufps fold: lanes l and l+4 first, then
    // (s0+s2) + (s1+s3).
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    let mut sum = (s0 + s2) + (s1 + s3);
    for i in chunks * 8..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// The blocked-GEMM driver, shared verbatim by all tiers (only the inner
/// row-axpy differs): identical blocking means identical per-element
/// accumulation order, which is the bit-identity argument.
///
/// Note there is deliberately *no* `aik == 0.0` skip: skipping defeats
/// vectorization, and because every accumulator starts at `+0.0` and
/// round-to-nearest never produces `-0.0` from a sum of non-`-0.0`
/// addends, adding the `aik * b` products of a zero `aik` is bit-identical
/// to skipping them for all finite inputs (and for NaN/Inf inputs the
/// no-skip form is the IEEE-propagating one every tier now shares).
macro_rules! gemm_driver {
    ($a:ident, $b:ident, $c:ident, $m:ident, $k:ident, $n:ident, $axpy:ident) => {
        for i0 in (0..$m).step_by(GEMM_BLOCK) {
            let i1 = (i0 + GEMM_BLOCK).min($m);
            for k0 in (0..$k).step_by(GEMM_BLOCK) {
                let k1 = (k0 + GEMM_BLOCK).min($k);
                for j0 in (0..$n).step_by(GEMM_BLOCK) {
                    let j1 = (j0 + GEMM_BLOCK).min($n);
                    for i in i0..i1 {
                        let c_row = &mut $c[i * $n..(i + 1) * $n];
                        for kk in k0..k1 {
                            let aik = $a[i * $k + kk];
                            let b_row = &$b[kk * $n..(kk + 1) * $n];
                            $axpy(&mut c_row[j0..j1], &b_row[j0..j1], aik);
                        }
                    }
                }
            }
        }
    };
}

/// The `A^T * B` driver: `r` outermost so both operands stream
/// sequentially; one row-axpy per `(r, i)`.
macro_rules! gemm_at_driver {
    ($a:ident, $b:ident, $c:ident, $k:ident, $m:ident, $n:ident, $axpy:ident) => {
        for r in 0..$k {
            let a_row = &$a[r * $m..(r + 1) * $m];
            let b_row = &$b[r * $n..(r + 1) * $n];
            for (i, &av) in a_row.iter().enumerate() {
                $axpy(&mut $c[i * $n..(i + 1) * $n], b_row, av);
            }
        }
    };
}

/// The unblocked band driver used by the pooled row-partitioned matmul:
/// per output element the `k` order is ascending, exactly like
/// [`gemm_driver`], so serial-blocked and pooled-banded stay
/// bit-identical.
macro_rules! gemm_band_driver {
    ($lhs:ident, $rhs:ident, $band:ident, $k:ident, $n:ident, $axpy:ident) => {
        let rows = $lhs.len() / $k.max(1);
        for i in 0..rows {
            let a_row = &$lhs[i * $k..(i + 1) * $k];
            let c_row = &mut $band[i * $n..(i + 1) * $n];
            for (kk, &av) in a_row.iter().enumerate() {
                $axpy(c_row, &$rhs[kk * $n..(kk + 1) * $n], av);
            }
        }
    };
}

/// The `A * B^T` band driver: one dot per output element.
macro_rules! dot_band_driver {
    ($a_band:ident, $b_data:ident, $band:ident, $k:ident, $n:ident, $dot:ident) => {
        let rows = $a_band.len() / $k.max(1);
        for i in 0..rows {
            let a_row = &$a_band[i * $k..(i + 1) * $k];
            let o = &mut $band[i * $n..(i + 1) * $n];
            for (j, oj) in o.iter_mut().enumerate() {
                *oj = $dot(a_row, &$b_data[j * $k..(j + 1) * $k]);
            }
        }
    };
}

fn gemm_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_driver!(a, b, c, m, k, n, axpy_scalar);
}

fn gemm_at_scalar(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    gemm_at_driver!(a, b, c, k, m, n, axpy_scalar);
}

fn gemm_band_scalar(lhs: &[f32], rhs: &[f32], band: &mut [f32], k: usize, n: usize) {
    gemm_band_driver!(lhs, rhs, band, k, n, axpy_scalar);
}

fn dot_band_scalar(a_band: &[f32], b_data: &[f32], band: &mut [f32], k: usize, n: usize) {
    dot_band_driver!(a_band, b_data, band, k, n, dot_scalar);
}

// ---------------------------------------------------------------------------
// AVX2 / FMA kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::GEMM_BLOCK;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    #[inline]
    pub fn add_assign(acc: &mut [f32], src: &[f32]) {
        let n = acc.len().min(src.len());
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane loads and the store.
            unsafe {
                let a = _mm256_loadu_ps(acc.as_ptr().add(j));
                let s = _mm256_loadu_ps(src.as_ptr().add(j));
                _mm256_storeu_ps(acc.as_mut_ptr().add(j), _mm256_add_ps(a, s));
            }
            j += 8;
        }
        while j < n {
            acc[j] += src[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    pub fn axpy(acc: &mut [f32], src: &[f32], alpha: f32) {
        let n = acc.len().min(src.len());
        let va = _mm256_set1_ps(alpha);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane loads and the store.
            unsafe {
                let a = _mm256_loadu_ps(acc.as_ptr().add(j));
                let s = _mm256_loadu_ps(src.as_ptr().add(j));
                // mul then add (no contraction): matches the scalar
                // `acc += alpha * src` bit for bit per lane.
                _mm256_storeu_ps(
                    acc.as_mut_ptr().add(j),
                    _mm256_add_ps(a, _mm256_mul_ps(va, s)),
                );
            }
            j += 8;
        }
        while j < n {
            acc[j] += alpha * src[j];
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub fn axpy_fma(acc: &mut [f32], src: &[f32], alpha: f32) {
        let n = acc.len().min(src.len());
        let va = _mm256_set1_ps(alpha);
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane loads and the store.
            unsafe {
                let a = _mm256_loadu_ps(acc.as_ptr().add(j));
                let s = _mm256_loadu_ps(src.as_ptr().add(j));
                _mm256_storeu_ps(acc.as_mut_ptr().add(j), _mm256_fmadd_ps(va, s, a));
            }
            j += 8;
        }
        while j < n {
            acc[j] = alpha.mul_add(src[j], acc[j]);
            j += 1;
        }
    }

    /// The horizontal fold matched bit-for-bit by the scalar oracle.
    #[target_feature(enable = "avx2")]
    #[inline]
    fn hreduce(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi); // [s0, s1, s2, s3]
        let h = _mm_add_ps(q, _mm_movehl_ps(q, q)); // [s0+s2, s1+s3, ..]
        let r = _mm_add_ss(h, _mm_shuffle_ps(h, h, 1)); // (s0+s2)+(s1+s3)
        _mm_cvtss_f32(r)
    }

    #[target_feature(enable = "avx2")]
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut vacc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane loads.
            unsafe {
                let av = _mm256_loadu_ps(a.as_ptr().add(j));
                let bv = _mm256_loadu_ps(b.as_ptr().add(j));
                vacc = _mm256_add_ps(vacc, _mm256_mul_ps(av, bv));
            }
            j += 8;
        }
        let mut sum = hreduce(vacc);
        while j < n {
            sum += a[j] * b[j];
            j += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub fn dot_fma(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut vacc = _mm256_setzero_ps();
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: j + 8 <= n bounds both 8-lane loads.
            unsafe {
                let av = _mm256_loadu_ps(a.as_ptr().add(j));
                let bv = _mm256_loadu_ps(b.as_ptr().add(j));
                vacc = _mm256_fmadd_ps(av, bv, vacc);
            }
            j += 8;
        }
        let mut sum = hreduce(vacc);
        while j < n {
            sum = a[j].mul_add(b[j], sum);
            j += 1;
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        gemm_driver!(a, b, c, m, k, n, axpy);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn gemm_fma(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        gemm_driver!(a, b, c, m, k, n, axpy_fma);
    }

    #[target_feature(enable = "avx2")]
    pub fn gemm_at(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
        gemm_at_driver!(a, b, c, k, m, n, axpy);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn gemm_at_fma(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
        gemm_at_driver!(a, b, c, k, m, n, axpy_fma);
    }

    #[target_feature(enable = "avx2")]
    pub fn gemm_band(lhs: &[f32], rhs: &[f32], band: &mut [f32], k: usize, n: usize) {
        gemm_band_driver!(lhs, rhs, band, k, n, axpy);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn gemm_band_fma(lhs: &[f32], rhs: &[f32], band: &mut [f32], k: usize, n: usize) {
        gemm_band_driver!(lhs, rhs, band, k, n, axpy_fma);
    }

    #[target_feature(enable = "avx2")]
    pub fn dot_band(a_band: &[f32], b_data: &[f32], band: &mut [f32], k: usize, n: usize) {
        dot_band_driver!(a_band, b_data, band, k, n, dot);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub fn dot_band_fma(a_band: &[f32], b_data: &[f32], band: &mut [f32], k: usize, n: usize) {
        dot_band_driver!(a_band, b_data, band, k, n, dot_fma);
    }
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
//
// Each checks the requested tier against the host at runtime (the
// feature queries are cached atomics) and falls back to scalar when the
// tier is unavailable, so arbitrary `KernelDispatch` values are safe on
// any host.
// ---------------------------------------------------------------------------

/// `acc[j] += src[j]` — the gather-reduce accumulate. Bit-identical
/// across all tiers (pure lane-wise adds; FMA cannot apply).
#[inline]
pub fn add_assign(d: KernelDispatch, acc: &mut [f32], src: &[f32]) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if d != KernelDispatch::Scalar && avx2_ok() {
        // SAFETY: AVX2 support verified on the line above.
        unsafe { x86::add_assign(acc, src) };
        return;
    }
    let _ = d;
    add_assign_scalar(acc, src);
}

/// `acc[j] += alpha * src[j]`. `Avx2` is bit-identical to `Scalar`;
/// `Fma` contracts the multiply-add (tolerance tier).
#[inline]
pub fn axpy(d: KernelDispatch, acc: &mut [f32], src: &[f32], alpha: f32) {
    debug_assert_eq!(acc.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            unsafe { x86::axpy_fma(acc, src, alpha) };
            return;
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            unsafe { x86::axpy(acc, src, alpha) };
            return;
        }
    }
    let _ = d;
    axpy_scalar(acc, src, alpha);
}

/// Dot product with the 8-accumulator AVX2 fold on every tier (see the
/// module docs); `Avx2` is bit-identical to `Scalar`.
#[inline]
pub fn dot(d: KernelDispatch, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            return unsafe { x86::dot_fma(a, b) };
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            return unsafe { x86::dot(a, b) };
        }
    }
    let _ = d;
    dot_scalar(a, b)
}

/// Cache-blocked `C += A * B` for row-major operands (`C` pre-zeroed).
pub fn gemm(d: KernelDispatch, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            unsafe { x86::gemm_fma(a, b, c, m, k, n) };
            return;
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            unsafe { x86::gemm(a, b, c, m, k, n) };
            return;
        }
    }
    let _ = d;
    gemm_scalar(a, b, c, m, k, n);
}

/// `C += A^T * B` where `a` is `k x m` row-major (`C` pre-zeroed): the
/// backprop weight gradient without materializing the transpose.
pub fn gemm_at(
    d: KernelDispatch,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            unsafe { x86::gemm_at_fma(a, b, c, k, m, n) };
            return;
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            unsafe { x86::gemm_at(a, b, c, k, m, n) };
            return;
        }
    }
    let _ = d;
    gemm_at_scalar(a, b, c, k, m, n);
}

/// The row-band `C += A_band * B` kernel behind the pooled matmul:
/// bit-identical to [`gemm`] per output element (same ascending-`k`
/// accumulation), on every tier.
pub fn gemm_band(
    d: KernelDispatch,
    lhs: &[f32],
    rhs: &[f32],
    band: &mut [f32],
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            unsafe { x86::gemm_band_fma(lhs, rhs, band, k, n) };
            return;
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            unsafe { x86::gemm_band(lhs, rhs, band, k, n) };
            return;
        }
    }
    let _ = d;
    gemm_band_scalar(lhs, rhs, band, k, n);
}

/// The `A_band * B^T` band kernel behind `matmul_bt`: one [`dot`] per
/// output element.
pub fn dot_band(
    d: KernelDispatch,
    a_band: &[f32],
    b_data: &[f32],
    band: &mut [f32],
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if d == KernelDispatch::Fma && fma_ok() {
            // SAFETY: AVX2+FMA support verified on the line above.
            unsafe { x86::dot_band_fma(a_band, b_data, band, k, n) };
            return;
        }
        if d != KernelDispatch::Scalar && avx2_ok() {
            // SAFETY: AVX2 support verified on the line above.
            unsafe { x86::dot_band(a_band, b_data, band, k, n) };
            return;
        }
    }
    let _ = d;
    dot_band_scalar(a_band, b_data, band, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * scale).sin()).collect()
    }

    #[test]
    fn parse_accepts_all_tiers() {
        assert_eq!(
            KernelDispatch::parse("scalar"),
            Some(KernelDispatch::Scalar)
        );
        assert_eq!(KernelDispatch::parse("AVX2"), Some(KernelDispatch::Avx2));
        assert_eq!(KernelDispatch::parse(" fma "), Some(KernelDispatch::Fma));
        assert_eq!(
            KernelDispatch::parse("auto"),
            Some(KernelDispatch::detect())
        );
        assert_eq!(KernelDispatch::parse("neon"), None);
    }

    #[test]
    fn scalar_always_supported_and_first() {
        assert!(KernelDispatch::Scalar.supported());
        assert_eq!(KernelDispatch::available()[0], KernelDispatch::Scalar);
    }

    #[test]
    fn detect_never_returns_fma() {
        assert_ne!(KernelDispatch::detect(), KernelDispatch::Fma);
    }

    #[test]
    fn add_assign_bit_identical_across_tiers() {
        for n in [0, 1, 5, 8, 17, 64, 67] {
            let src = seq(n, 0.37);
            let base = seq(n, 0.61);
            let mut scalar = base.clone();
            add_assign(KernelDispatch::Scalar, &mut scalar, &src);
            for d in KernelDispatch::available() {
                let mut out = base.clone();
                add_assign(d, &mut out, &src);
                assert_eq!(
                    scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "n={n} tier={}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn avx2_axpy_and_dot_bit_identical() {
        if !KernelDispatch::Avx2.supported() {
            return;
        }
        for n in [1, 7, 8, 9, 31, 64, 66] {
            let src = seq(n, 0.73);
            let base = seq(n, 0.11);
            let mut scalar = base.clone();
            let mut simd = base.clone();
            axpy(KernelDispatch::Scalar, &mut scalar, &src, -0.625);
            axpy(KernelDispatch::Avx2, &mut simd, &src, -0.625);
            assert_eq!(
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy n={n}"
            );
            let ds = dot(KernelDispatch::Scalar, &base, &src);
            let dv = dot(KernelDispatch::Avx2, &base, &src);
            assert_eq!(ds.to_bits(), dv.to_bits(), "dot n={n}");
        }
    }

    #[test]
    fn fma_dot_within_tolerance() {
        if !KernelDispatch::Fma.supported() {
            return;
        }
        let a = seq(123, 0.41);
        let b = seq(123, 0.29);
        let ds = dot(KernelDispatch::Scalar, &a, &b) as f64;
        let df = dot(KernelDispatch::Fma, &a, &b) as f64;
        assert!((ds - df).abs() < 1e-4, "scalar {ds} vs fma {df}");
    }

    #[test]
    fn forcing_overrides_env_resolution() {
        let before = dispatch();
        force(Some(KernelDispatch::Scalar));
        assert_eq!(dispatch(), KernelDispatch::Scalar);
        force(None);
        assert_eq!(dispatch(), before);
    }

    #[test]
    fn prefetch_accepts_any_slice() {
        prefetch(&[]);
        prefetch(&[1.0; 3]);
        prefetch(&vec![0.5; 1024]);
    }
}

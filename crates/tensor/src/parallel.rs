//! Multi-threaded GEMM: row-partitioned matrix multiply over scoped OS
//! threads. The DLRM trainer's MLP phases use this to keep the dense
//! side from distorting the embedding-phase measurements on multi-core
//! hosts (the paper's CPU baseline is similarly multi-threaded MKL).

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// `self * rhs` with the output rows partitioned across `threads` OS
/// threads. Exact same result as [`Matrix::matmul`] (identical inner
/// kernel, disjoint output bands).
///
/// # Errors
///
/// Returns a [`ShapeError`] unless `lhs.cols() == rhs.rows()`.
pub fn matmul_parallel(lhs: &Matrix, rhs: &Matrix, threads: usize) -> Result<Matrix, ShapeError> {
    if lhs.cols() != rhs.rows() {
        return Err(ShapeError::new("matmul_parallel", lhs.shape(), rhs.shape()));
    }
    let (m, k, n) = (lhs.rows(), lhs.cols(), rhs.cols());
    let threads = threads.max(1).min(m.max(1));
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    let rows_per = m.div_ceil(threads);
    let lhs_data = lhs.as_slice();
    let rhs_data = rhs.as_slice();
    let buf = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut rest = buf;
        for t in 0..threads {
            let lo = t * rows_per;
            let hi = ((t + 1) * rows_per).min(m);
            if lo >= hi {
                break;
            }
            let (band, tail) = rest.split_at_mut((hi - lo) * n);
            rest = tail;
            let lhs_band = &lhs_data[lo * k..hi * k];
            scope.spawn(move || {
                // Same blocked kernel shape as the serial matmul: stream
                // rhs rows, accumulate into the band.
                for i in 0..(hi - lo) {
                    let a_row = &lhs_band[i * k..(i + 1) * k];
                    let c_row = &mut band[i * n..(i + 1) * n];
                    for (kk, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &rhs_data[kk * n..(kk + 1) * n];
                        for (c, &b) in c_row.iter_mut().zip(b_row.iter()) {
                            *c += a * b;
                        }
                    }
                }
            });
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SplitMix64;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        m
    }

    #[test]
    fn matches_serial_matmul() {
        let a = random_matrix(37, 23, 1);
        let b = random_matrix(23, 41, 2);
        let serial = a.matmul(&b).unwrap();
        for threads in [1, 2, 4, 9] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            assert!(
                serial.max_abs_diff(&par).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let a = random_matrix(3, 8, 3);
        let b = random_matrix(8, 5, 4);
        let par = matmul_parallel(&a, &b, 64).unwrap();
        assert!(a.matmul(&b).unwrap().max_abs_diff(&par).unwrap() < 1e-6);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul_parallel(&a, &b, 2).is_err());
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 4);
        let out = matmul_parallel(&a, &b, 4).unwrap();
        assert_eq!(out.shape(), (0, 4));
    }

    #[test]
    fn identity_passthrough() {
        let a = random_matrix(16, 16, 7);
        let id = Matrix::identity(16);
        let par = matmul_parallel(&a, &id, 3).unwrap();
        assert!(a.max_abs_diff(&par).unwrap() < 1e-6);
    }
}

//! Multi-threaded GEMM: row-partitioned matrix multiply over the shared
//! persistent pool. The DLRM trainer's MLP phases use this to keep the
//! dense side from distorting the embedding-phase measurements on
//! multi-core hosts (the paper's CPU baseline is similarly multi-threaded
//! MKL).
//!
//! Prior to `tcast-pool`, every call paid OS-thread spawn/join through
//! `std::thread::scope`; all entry points now dispatch onto long-lived
//! workers and perform zero thread spawns per invocation.

use crate::error::ShapeError;
use crate::matrix::Matrix;
use tcast_pool::Pool;

/// `lhs * rhs` with the output rows partitioned across `threads` tasks on
/// the process-wide [`tcast_pool::global`] pool. Exact same result as
/// [`Matrix::matmul`] (identical per-row inner kernel, disjoint output
/// bands).
///
/// # Errors
///
/// Returns a [`ShapeError`] unless `lhs.cols() == rhs.rows()`.
pub fn matmul_parallel(lhs: &Matrix, rhs: &Matrix, threads: usize) -> Result<Matrix, ShapeError> {
    matmul_parallel_in(tcast_pool::global(), lhs, rhs, threads)
}

/// [`matmul_parallel`] on an explicit pool.
///
/// # Errors
///
/// Returns a [`ShapeError`] unless `lhs.cols() == rhs.rows()`.
pub fn matmul_parallel_in(
    pool: &Pool,
    lhs: &Matrix,
    rhs: &Matrix,
    threads: usize,
) -> Result<Matrix, ShapeError> {
    if lhs.cols() != rhs.rows() {
        return Err(ShapeError::new("matmul_parallel", lhs.shape(), rhs.shape()));
    }
    let mut out = Matrix::zeros(lhs.rows(), rhs.cols());
    matmul_pooled_unchecked(pool, lhs, rhs, &mut out, threads);
    Ok(out)
}

/// Pooled matmul writing into a pre-shaped output (shapes already
/// validated by the caller). `out` must be `lhs.rows() x rhs.cols()` and
/// zeroed.
pub(crate) fn matmul_pooled_unchecked(
    pool: &Pool,
    lhs: &Matrix,
    rhs: &Matrix,
    out: &mut Matrix,
    threads: usize,
) {
    let (m, k, n) = (lhs.rows(), lhs.cols(), rhs.cols());
    let threads = threads.max(1).min(m.max(1));
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let lhs_data = lhs.as_slice();
    let rhs_data = rhs.as_slice();
    let buf = out.as_mut_slice();
    let kernel = crate::simd::dispatch();
    if threads <= 1 {
        band_kernel(kernel, lhs_data, rhs_data, buf, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    pool.scope(|scope| {
        let mut rest = buf;
        for t in 0..threads {
            let lo = t * rows_per;
            let hi = ((t + 1) * rows_per).min(m);
            if lo >= hi {
                break;
            }
            let (band, tail) = rest.split_at_mut((hi - lo) * n);
            rest = tail;
            let lhs_band = &lhs_data[lo * k..hi * k];
            scope.spawn(move || band_kernel(kernel, lhs_band, rhs_data, band, k, n));
        }
    });
}

/// The shared `a * b^T` per-band kernel: one [`crate::simd::dot`] per
/// output element. Both [`Matrix::matmul_bt_into`] (full band) and the
/// pooled row-partitioned path run exactly this loop, so serial and
/// pooled results are bit-identical by construction — on every kernel
/// tier, since the tier is resolved once and shared by all bands.
pub(crate) fn bt_band_kernel(a_band: &[f32], b_data: &[f32], band: &mut [f32], k: usize, n: usize) {
    crate::simd::dot_band(crate::simd::dispatch(), a_band, b_data, band, k, n);
}

/// The shared per-band kernel: stream rhs rows, accumulate into the band.
/// Accumulation over `k` is in ascending order for every output element,
/// matching the serial blocked GEMM bit-for-bit on every kernel tier.
fn band_kernel(
    kernel: crate::simd::KernelDispatch,
    lhs_band: &[f32],
    rhs_data: &[f32],
    band: &mut [f32],
    k: usize,
    n: usize,
) {
    crate::simd::gemm_band(kernel, lhs_band, rhs_data, band, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SplitMix64;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        m
    }

    #[test]
    fn matches_serial_matmul() {
        let a = random_matrix(37, 23, 1);
        let b = random_matrix(23, 41, 2);
        let serial = a.matmul(&b).unwrap();
        for threads in [1, 2, 4, 9] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            assert!(
                serial.max_abs_diff(&par).unwrap() < 1e-5,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn bit_identical_to_serial() {
        // Same accumulation order per output element => exact equality,
        // not tolerance equality.
        let a = random_matrix(29, 17, 5);
        let b = random_matrix(17, 31, 6);
        let serial = a.matmul(&b).unwrap();
        for threads in [2, 3, 8] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            assert_eq!(serial.as_slice(), par.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn explicit_pool_matches_global() {
        let pool = Pool::new(3);
        let a = random_matrix(12, 9, 7);
        let b = random_matrix(9, 14, 8);
        let via_pool = matmul_parallel_in(&pool, &a, &b, 3).unwrap();
        let via_global = matmul_parallel(&a, &b, 3).unwrap();
        assert_eq!(via_pool.as_slice(), via_global.as_slice());
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let a = random_matrix(3, 8, 3);
        let b = random_matrix(8, 5, 4);
        let par = matmul_parallel(&a, &b, 64).unwrap();
        assert!(a.matmul(&b).unwrap().max_abs_diff(&par).unwrap() < 1e-6);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul_parallel(&a, &b, 2).is_err());
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 4);
        let out = matmul_parallel(&a, &b, 4).unwrap();
        assert_eq!(out.shape(), (0, 4));
    }

    #[test]
    fn identity_passthrough() {
        let a = random_matrix(16, 16, 7);
        let id = Matrix::identity(16);
        let par = matmul_parallel(&a, &id, 3).unwrap();
        assert!(a.max_abs_diff(&par).unwrap() < 1e-6);
    }
}

//! Weight initialization and the deterministic RNG used across the
//! reproduction.
//!
//! Every stochastic component in this repository is seeded so that paired
//! experiments (e.g. baseline expand-coalesce vs. casted gather-reduce
//! training) start from bit-identical parameters, which is what lets the
//! equivalence tests compare full training trajectories.

use crate::matrix::Matrix;

/// A tiny, fast, deterministic 64-bit PRNG (SplitMix64).
///
/// Used for weight initialization where we want reproducibility without
/// pulling `rand`'s trait machinery into hot paths. The sequence is fully
/// determined by the seed.
///
/// ```
/// use tcast_tensor::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current internal state. `SplitMix64::new(state)` reconstructs
    /// a generator that continues the sequence from exactly this point —
    /// the hook checkpoint/resume uses to capture stream positions.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits of uniformity is plenty for initialization.
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `u64` in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-high trick: unbiased enough for workload gen.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Standard-normal sample via Box-Muller.
    pub fn next_normal(&mut self) -> f32 {
        let mut u1 = self.next_f32();
        if u1 < 1e-10 {
            u1 = 1e-10;
        }
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight
/// matrix: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// ```
/// use tcast_tensor::xavier_uniform;
///
/// let w = xavier_uniform(64, 32, 1);
/// assert_eq!(w.shape(), (64, 32));
/// let bound = (6.0f32 / (64.0 + 32.0)).sqrt();
/// assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_mut_slice() {
        *v = rng.next_range(-bound, bound);
    }
    m
}

/// He/Kaiming normal initialization, suited to ReLU stacks:
/// `N(0, sqrt(2/fan_in))`.
pub fn he_normal(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut rng = SplitMix64::new(seed);
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_mut_slice() {
        *v = rng.next_normal() * std;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn xavier_respects_bound_and_seed() {
        let w1 = xavier_uniform(10, 20, 7);
        let w2 = xavier_uniform(10, 20, 7);
        assert_eq!(w1, w2);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w1.as_slice().iter().all(|v| v.abs() <= bound));
        // Should not be degenerate.
        assert!(w1.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_normal_has_reasonable_spread() {
        let w = he_normal(128, 64, 3);
        let mean: f32 = w.sum() / w.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        let var: f32 = w
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / w.len() as f32;
        let expected = 2.0 / 128.0;
        assert!(
            (var - expected).abs() < expected * 0.5,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    fn normal_samples_are_finite() {
        let mut r = SplitMix64::new(11);
        for _ in 0..10_000 {
            assert!(r.next_normal().is_finite());
        }
    }
}

//! Elementwise activations and their backward passes.

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// ReLU: `max(0, x)` elementwise.
///
/// ```
/// use tcast_tensor::{Matrix, relu};
///
/// let x = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
/// assert_eq!(relu(&x).row(0), &[0.0, 2.0]);
/// ```
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// [`relu`] writing into `out` (reshaped in place, reusing its
/// allocation). Bit-identical to [`relu`], including on NaN and `-0.0`
/// inputs (both map to `+0.0`).
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    out.copy_from(x);
    for v in out.as_mut_slice() {
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

/// Backward pass of ReLU: `dx = dy ⊙ 1[x > 0]`, where `x` is the
/// *pre-activation* input saved during the forward pass.
///
/// # Errors
///
/// Returns a [`ShapeError`] if `dy` and `x` have different shapes.
pub fn relu_backward(dy: &Matrix, x: &Matrix) -> Result<Matrix, ShapeError> {
    if dy.shape() != x.shape() {
        return Err(ShapeError::new("relu_backward", dy.shape(), x.shape()));
    }
    let data: Vec<f32> = dy
        .as_slice()
        .iter()
        .zip(x.as_slice().iter())
        .map(|(&g, &v)| if v > 0.0 { g } else { 0.0 })
        .collect();
    Matrix::from_vec(dy.rows(), dy.cols(), data)
}

/// [`relu_backward`] masking the gradient **in place** (`dy` is both input
/// and output): `dy[i] = 0` wherever the pre-activation is not `> 0`
/// (negative, zero, or NaN — the same mask as [`relu_backward`]).
///
/// # Errors
///
/// Returns a [`ShapeError`] if `dy` and `x` have different shapes.
pub fn relu_backward_in_place(dy: &mut Matrix, x: &Matrix) -> Result<(), ShapeError> {
    if dy.shape() != x.shape() {
        return Err(ShapeError::new("relu_backward", dy.shape(), x.shape()));
    }
    for (g, &v) in dy.as_mut_slice().iter_mut().zip(x.as_slice().iter()) {
        *g = if v > 0.0 { *g } else { 0.0 };
    }
    Ok(())
}

/// Numerically-stable logistic sigmoid, elementwise.
pub fn sigmoid(x: &Matrix) -> Matrix {
    x.map(sigmoid_scalar)
}

/// Backward pass of sigmoid: `dx = dy ⊙ s(x)(1 - s(x))` where `s` is the
/// *forward output* (not the pre-activation).
///
/// # Errors
///
/// Returns a [`ShapeError`] if `dy` and `s` have different shapes.
pub fn sigmoid_backward(dy: &Matrix, s: &Matrix) -> Result<Matrix, ShapeError> {
    if dy.shape() != s.shape() {
        return Err(ShapeError::new("sigmoid_backward", dy.shape(), s.shape()));
    }
    let data: Vec<f32> = dy
        .as_slice()
        .iter()
        .zip(s.as_slice().iter())
        .map(|(&g, &v)| g * v * (1.0 - v))
        .collect();
    Matrix::from_vec(dy.rows(), dy.cols(), data)
}

#[inline]
pub(crate) fn sigmoid_scalar(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-3.0, 0.0, 5.0]]).unwrap();
        assert_eq!(relu(&x).row(0), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
        let dy = Matrix::from_rows(&[&[10.0, 10.0]]).unwrap();
        let dx = relu_backward(&dy, &x).unwrap();
        assert_eq!(dx.row(0), &[0.0, 10.0]);
    }

    #[test]
    fn in_place_forms_match_allocating_forms_on_nan_and_negative_zero() {
        let x = Matrix::from_rows(&[&[f32::NAN, -0.0, 0.0, -1.0, 2.0]]).unwrap();
        let mut out = Matrix::default();
        relu_into(&x, &mut out);
        assert_eq!(relu(&x).as_slice(), out.as_slice());
        assert!(out.as_slice().iter().all(|v| v.is_finite()));

        let dy = Matrix::filled(1, 5, 3.0);
        let expect = relu_backward(&dy, &x).unwrap();
        let mut grad = dy.clone();
        relu_backward_in_place(&mut grad, &x).unwrap();
        assert_eq!(expect.as_slice(), grad.as_slice());
    }

    #[test]
    fn relu_backward_shape_check() {
        let x = Matrix::zeros(1, 2);
        let dy = Matrix::zeros(2, 1);
        assert!(relu_backward(&dy, &x).is_err());
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        let x = Matrix::from_rows(&[&[-100.0, -1.0, 0.0, 1.0, 100.0]]).unwrap();
        let s = sigmoid(&x);
        for &v in s.as_slice() {
            assert!((0.0..=1.0).contains(&v));
            assert!(v.is_finite());
        }
        assert!((s[(0, 2)] - 0.5).abs() < 1e-6);
        // s(-x) = 1 - s(x)
        assert!((s[(0, 1)] + s[(0, 3)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_backward_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.2]]).unwrap();
        let s = sigmoid(&x);
        let dy = Matrix::filled(1, 3, 1.0);
        let dx = sigmoid_backward(&dy, &s).unwrap();
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut xp = x.clone();
            xp[(0, c)] += eps;
            let mut xm = x.clone();
            xm[(0, c)] -= eps;
            let num = (sigmoid(&xp)[(0, c)] - sigmoid(&xm)[(0, c)]) / (2.0 * eps);
            assert!(
                (dx[(0, c)] - num).abs() < 1e-3,
                "col {c}: analytic {} vs numeric {num}",
                dx[(0, c)]
            );
        }
    }
}

//! DLRM feature interaction: combines the bottom-MLP output with the pooled
//! embedding vectors before the top MLP (Fig. 1 of the paper).
//!
//! Two interaction operators are provided, matching the open-source DLRM:
//!
//! * [`InteractionKind::Concat`] — plain horizontal concatenation.
//! * [`InteractionKind::Dot`] — pairwise dot products between all feature
//!   vectors, concatenated after the dense feature vector (DLRM's default
//!   `--arch-interaction-op=dot`).

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Which interaction operator to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InteractionKind {
    /// Concatenate `[dense, emb_0, ..., emb_{T-1}]`.
    Concat,
    /// `[dense, dot(v_i, v_j) for i < j]` over all feature vectors
    /// (dense output + each pooled embedding), DLRM's default.
    #[default]
    Dot,
}

/// Output width of the interaction for `num_tables` embedding tables whose
/// pooled vectors (and the dense vector) all have width `dim`.
///
/// ```
/// use tcast_tensor::{interaction_output_dim, InteractionKind};
///
/// // 10 tables + 1 dense vector = 11 vectors; C(11,2) = 55 pairs.
/// assert_eq!(interaction_output_dim(InteractionKind::Dot, 10, 64), 64 + 55);
/// assert_eq!(interaction_output_dim(InteractionKind::Concat, 10, 64), 64 * 11);
/// ```
pub fn interaction_output_dim(kind: InteractionKind, num_tables: usize, dim: usize) -> usize {
    match kind {
        InteractionKind::Concat => dim * (num_tables + 1),
        InteractionKind::Dot => {
            let m = num_tables + 1;
            dim + m * (m - 1) / 2
        }
    }
}

/// Differentiable feature-interaction operator.
///
/// Caches its inputs during [`FeatureInteraction::forward`] so that
/// [`FeatureInteraction::backward`] can route gradients back to the dense
/// vector and to each pooled embedding (which is where the embedding-layer
/// backpropagation — the subject of the paper — begins).
#[derive(Debug, Clone, Default)]
pub struct FeatureInteraction {
    kind: InteractionKind,
    cached: Option<Vec<Matrix>>,
    // Reusable input copies for the zero-allocation step path
    // ([`FeatureInteraction::forward_into`] / `backward_into`).
    step_cache: Vec<Matrix>,
    step_cache_live: bool,
}

impl FeatureInteraction {
    /// Creates the operator.
    pub fn new(kind: InteractionKind) -> Self {
        Self {
            kind,
            cached: None,
            step_cache: Vec::new(),
            step_cache_live: false,
        }
    }

    /// The configured interaction kind.
    pub fn kind(&self) -> InteractionKind {
        self.kind
    }

    /// Forward pass. `dense` is the bottom-MLP output (`batch x dim`);
    /// `embeddings` are the pooled per-table outputs (each `batch x dim`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if any operand disagrees on `batch`/`dim`
    /// (for [`InteractionKind::Dot`], all vectors must share `dim`).
    pub fn forward(&mut self, dense: &Matrix, embeddings: &[Matrix]) -> Result<Matrix, ShapeError> {
        for e in embeddings {
            if e.rows() != dense.rows() {
                return Err(ShapeError::new(
                    "interaction_batch",
                    dense.shape(),
                    e.shape(),
                ));
            }
            if self.kind == InteractionKind::Dot && e.cols() != dense.cols() {
                return Err(ShapeError::new("interaction_dim", dense.shape(), e.shape()));
            }
        }
        let mut inputs = Vec::with_capacity(embeddings.len() + 1);
        inputs.push(dense.clone());
        inputs.extend(embeddings.iter().cloned());

        let out = match self.kind {
            InteractionKind::Concat => {
                let refs: Vec<&Matrix> = inputs.iter().collect();
                Matrix::hconcat(&refs)?
            }
            InteractionKind::Dot => {
                let batch = dense.rows();
                let dim = dense.cols();
                let m = inputs.len();
                let pairs = m * (m - 1) / 2;
                let mut out = Matrix::zeros(batch, dim + pairs);
                for b in 0..batch {
                    let row = out.row_mut(b);
                    row[..dim].copy_from_slice(dense.row(b));
                    let mut p = dim;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let vi = inputs[i].row(b);
                            let vj = inputs[j].row(b);
                            row[p] = vi.iter().zip(vj.iter()).map(|(a, c)| a * c).sum();
                            p += 1;
                        }
                    }
                }
                out
            }
        };
        self.cached = Some(inputs);
        Ok(out)
    }

    /// [`FeatureInteraction::forward`] writing into `out` and caching the
    /// inputs into reused buffers — the zero-allocation steady-state form.
    /// Bit-identical to the allocating pass.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if any operand disagrees on `batch`/`dim`.
    pub fn forward_into(
        &mut self,
        dense: &Matrix,
        embeddings: &[Matrix],
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        for e in embeddings {
            if e.rows() != dense.rows() {
                return Err(ShapeError::new(
                    "interaction_batch",
                    dense.shape(),
                    e.shape(),
                ));
            }
            if self.kind == InteractionKind::Dot && e.cols() != dense.cols() {
                return Err(ShapeError::new("interaction_dim", dense.shape(), e.shape()));
            }
        }
        let m = embeddings.len() + 1;
        self.step_cache.resize_with(m, Matrix::default);
        self.step_cache[0].copy_from(dense);
        for (buf, e) in self.step_cache[1..].iter_mut().zip(embeddings.iter()) {
            buf.copy_from(e);
        }

        match self.kind {
            InteractionKind::Concat => {
                let batch = dense.rows();
                let total: usize = self.step_cache.iter().map(Matrix::cols).sum();
                out.zero_into(batch, total);
                for b in 0..batch {
                    let row = out.row_mut(b);
                    let mut offset = 0;
                    for part in &self.step_cache {
                        row[offset..offset + part.cols()].copy_from_slice(part.row(b));
                        offset += part.cols();
                    }
                }
            }
            InteractionKind::Dot => {
                let batch = dense.rows();
                let dim = dense.cols();
                let pairs = m * (m - 1) / 2;
                out.zero_into(batch, dim + pairs);
                let inputs = &self.step_cache;
                for b in 0..batch {
                    let row = out.row_mut(b);
                    row[..dim].copy_from_slice(inputs[0].row(b));
                    let mut p = dim;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let vi = inputs[i].row(b);
                            let vj = inputs[j].row(b);
                            row[p] = vi.iter().zip(vj.iter()).map(|(a, c)| a * c).sum();
                            p += 1;
                        }
                    }
                }
            }
        }
        self.step_cache_live = true;
        Ok(())
    }

    /// Inference-only forward pass writing into `out`: no input caching
    /// (`&self`), no buffer copies — the zero-allocation serving form.
    /// Bit-identical to [`FeatureInteraction::forward`] and
    /// [`FeatureInteraction::forward_into`] (same per-row op order).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if any operand disagrees on `batch`/`dim`.
    pub fn forward_inference_into(
        &self,
        dense: &Matrix,
        embeddings: &[Matrix],
        out: &mut Matrix,
    ) -> Result<(), ShapeError> {
        for e in embeddings {
            if e.rows() != dense.rows() {
                return Err(ShapeError::new(
                    "interaction_batch",
                    dense.shape(),
                    e.shape(),
                ));
            }
            if self.kind == InteractionKind::Dot && e.cols() != dense.cols() {
                return Err(ShapeError::new("interaction_dim", dense.shape(), e.shape()));
            }
        }
        // Virtual input list [dense, emb_0, ..], without materializing it.
        let m = embeddings.len() + 1;
        let input = |i: usize| if i == 0 { dense } else { &embeddings[i - 1] };
        let batch = dense.rows();
        match self.kind {
            InteractionKind::Concat => {
                let total: usize = (0..m).map(|i| input(i).cols()).sum();
                out.zero_into(batch, total);
                for b in 0..batch {
                    let row = out.row_mut(b);
                    let mut offset = 0;
                    for i in 0..m {
                        let part = input(i);
                        row[offset..offset + part.cols()].copy_from_slice(part.row(b));
                        offset += part.cols();
                    }
                }
            }
            InteractionKind::Dot => {
                let dim = dense.cols();
                let pairs = m * (m - 1) / 2;
                out.zero_into(batch, dim + pairs);
                for b in 0..batch {
                    let row = out.row_mut(b);
                    row[..dim].copy_from_slice(dense.row(b));
                    let mut p = dim;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let vi = input(i).row(b);
                            let vj = input(j).row(b);
                            row[p] = vi.iter().zip(vj.iter()).map(|(a, c)| a * c).sum();
                            p += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// [`FeatureInteraction::backward`] writing the dense gradient into
    /// `ddense` and the per-table gradients into `dpooled` (resized and
    /// reused). Consumes the cache of the last
    /// [`FeatureInteraction::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no step forward preceded this call or
    /// the gradient width is inconsistent.
    pub fn backward_into(
        &mut self,
        dout: &Matrix,
        ddense: &mut Matrix,
        dpooled: &mut Vec<Matrix>,
    ) -> Result<(), ShapeError> {
        if !self.step_cache_live {
            return Err(ShapeError::new(
                "interaction_backward_without_forward",
                (0, 0),
                dout.shape(),
            ));
        }
        self.step_cache_live = false;
        let inputs = &self.step_cache;
        let m = inputs.len();
        let batch = inputs[0].rows();
        let dim = inputs[0].cols();
        dpooled.resize_with(m - 1, Matrix::default);

        match self.kind {
            InteractionKind::Concat => {
                let total: usize = inputs.iter().map(Matrix::cols).sum();
                if dout.cols() != total || dout.rows() != batch {
                    return Err(ShapeError::new(
                        "interaction_backward",
                        (batch, total),
                        dout.shape(),
                    ));
                }
                ddense.zero_into(batch, dim);
                for (buf, src) in dpooled.iter_mut().zip(inputs[1..].iter()) {
                    buf.zero_into(batch, src.cols());
                }
                for b in 0..batch {
                    let drow = dout.row(b);
                    ddense.row_mut(b).copy_from_slice(&drow[..dim]);
                    let mut offset = dim;
                    for buf in dpooled.iter_mut() {
                        let w = buf.cols();
                        buf.row_mut(b).copy_from_slice(&drow[offset..offset + w]);
                        offset += w;
                    }
                }
            }
            InteractionKind::Dot => {
                let pairs = m * (m - 1) / 2;
                if dout.cols() != dim + pairs || dout.rows() != batch {
                    return Err(ShapeError::new(
                        "interaction_backward",
                        (batch, dim + pairs),
                        dout.shape(),
                    ));
                }
                ddense.zero_into(batch, dim);
                for buf in dpooled.iter_mut() {
                    buf.zero_into(batch, dim);
                }
                for b in 0..batch {
                    let drow = dout.row(b);
                    // Dense passthrough part.
                    ddense.row_mut(b).copy_from_slice(&drow[..dim]);
                    // Pair part: dz_ij flows to both v_i and v_j. The
                    // cached inputs and the gradient buffers are separate
                    // storage, so no row copies are needed.
                    let mut p = dim;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let g = drow[p];
                            p += 1;
                            if g == 0.0 {
                                continue;
                            }
                            {
                                let gi = if i == 0 {
                                    &mut *ddense
                                } else {
                                    &mut dpooled[i - 1]
                                };
                                for (o, &vjv) in
                                    gi.row_mut(b).iter_mut().zip(inputs[j].row(b).iter())
                                {
                                    *o += g * vjv;
                                }
                            }
                            {
                                let gj = &mut dpooled[j - 1]; // j >= 1 always
                                for (o, &viv) in
                                    gj.row_mut(b).iter_mut().zip(inputs[i].row(b).iter())
                                {
                                    *o += g * viv;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Backward pass: splits `dout` into the gradient w.r.t. the dense
    /// vector (first element of the returned pair) and the gradients
    /// w.r.t. each pooled embedding (second element, one per table).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call or the
    /// gradient width is inconsistent.
    pub fn backward(&mut self, dout: &Matrix) -> Result<(Matrix, Vec<Matrix>), ShapeError> {
        let inputs = self.cached.take().ok_or_else(|| {
            ShapeError::new("interaction_backward_without_forward", (0, 0), dout.shape())
        })?;
        let m = inputs.len();
        let batch = inputs[0].rows();
        let dim = inputs[0].cols();

        match self.kind {
            InteractionKind::Concat => {
                let widths: Vec<usize> = inputs.iter().map(Matrix::cols).collect();
                let mut parts = dout.hsplit(&widths)?;
                let dense_grad = parts.remove(0);
                Ok((dense_grad, parts))
            }
            InteractionKind::Dot => {
                let pairs = m * (m - 1) / 2;
                if dout.cols() != dim + pairs || dout.rows() != batch {
                    return Err(ShapeError::new(
                        "interaction_backward",
                        (batch, dim + pairs),
                        dout.shape(),
                    ));
                }
                let mut grads: Vec<Matrix> = (0..m).map(|_| Matrix::zeros(batch, dim)).collect();
                for b in 0..batch {
                    let drow = dout.row(b);
                    // Dense passthrough part.
                    grads[0].row_mut(b).copy_from_slice(&drow[..dim]);
                    // Pair part: dz_ij flows to both v_i and v_j.
                    let mut p = dim;
                    for i in 0..m {
                        for j in (i + 1)..m {
                            let g = drow[p];
                            p += 1;
                            if g == 0.0 {
                                continue;
                            }
                            // Copy rows out to appease the borrow checker;
                            // dim is small (<= a few hundred floats).
                            let vi: Vec<f32> = inputs[i].row(b).to_vec();
                            let vj: Vec<f32> = inputs[j].row(b).to_vec();
                            for (gi, &vjv) in grads[i].row_mut(b).iter_mut().zip(vj.iter()) {
                                *gi += g * vjv;
                            }
                            for (gj, &viv) in grads[j].row_mut(b).iter_mut().zip(vi.iter()) {
                                *gj += g * viv;
                            }
                        }
                    }
                }
                let dense_grad = grads.remove(0);
                Ok((dense_grad, grads))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rows: usize, cols: usize, seed: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f32 + seed) * 0.37).sin();
        }
        m
    }

    #[test]
    fn output_dims() {
        assert_eq!(interaction_output_dim(InteractionKind::Concat, 3, 8), 32);
        assert_eq!(interaction_output_dim(InteractionKind::Dot, 3, 8), 8 + 6);
    }

    #[test]
    fn inference_into_is_bit_identical_to_forward() {
        for kind in [InteractionKind::Dot, InteractionKind::Concat] {
            let dense = mk(4, 6, 0.0);
            let e0 = mk(4, 6, 3.0);
            let e1 = mk(4, 6, 9.0);
            let mut op = FeatureInteraction::new(kind);
            let expect = op.forward(&dense, &[e0.clone(), e1.clone()]).unwrap();
            let frozen = FeatureInteraction::new(kind);
            let mut out = Matrix::default();
            // Twice: the second pass reuses the sized buffer.
            for _ in 0..2 {
                frozen
                    .forward_inference_into(&dense, &[e0.clone(), e1.clone()], &mut out)
                    .unwrap();
                assert_eq!(out.as_slice(), expect.as_slice(), "{kind:?}");
            }
        }
    }

    #[test]
    fn concat_forward_layout() {
        let dense = mk(2, 3, 0.0);
        let e = mk(2, 3, 5.0);
        let mut op = FeatureInteraction::new(InteractionKind::Concat);
        let out = op.forward(&dense, std::slice::from_ref(&e)).unwrap();
        assert_eq!(out.shape(), (2, 6));
        assert_eq!(&out.row(0)[..3], dense.row(0));
        assert_eq!(&out.row(0)[3..], e.row(0));
    }

    #[test]
    fn dot_forward_values() {
        let dense = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let e = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let mut op = FeatureInteraction::new(InteractionKind::Dot);
        let out = op.forward(&dense, &[e]).unwrap();
        // [dense..., dot(dense, e)] = [1, 2, 11]
        assert_eq!(out.row(0), &[1.0, 2.0, 11.0]);
    }

    #[test]
    fn batch_mismatch_rejected() {
        let dense = Matrix::zeros(2, 4);
        let e = Matrix::zeros(3, 4);
        let mut op = FeatureInteraction::new(InteractionKind::Dot);
        assert!(op.forward(&dense, &[e]).is_err());
    }

    #[test]
    fn dim_mismatch_rejected_for_dot_only() {
        let dense = Matrix::zeros(2, 4);
        let e = Matrix::zeros(2, 3);
        let mut dot = FeatureInteraction::new(InteractionKind::Dot);
        assert!(dot.forward(&dense, std::slice::from_ref(&e)).is_err());
        let mut cat = FeatureInteraction::new(InteractionKind::Concat);
        assert!(cat.forward(&dense, &[e]).is_ok());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut op = FeatureInteraction::new(InteractionKind::Dot);
        assert!(op.backward(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn concat_backward_splits_gradient() {
        let dense = mk(2, 3, 0.0);
        let e0 = mk(2, 2, 1.0);
        let e1 = mk(2, 4, 2.0);
        let mut op = FeatureInteraction::new(InteractionKind::Concat);
        let out = op.forward(&dense, &[e0, e1]).unwrap();
        let dout = mk(2, out.cols(), 9.0);
        let (dd, de) = op.backward(&dout).unwrap();
        assert_eq!(dd.shape(), (2, 3));
        assert_eq!(de.len(), 2);
        assert_eq!(de[0].shape(), (2, 2));
        assert_eq!(de[1].shape(), (2, 4));
        // Gradient is a pure split of dout.
        assert_eq!(&dout.row(0)[..3], dd.row(0));
        assert_eq!(&dout.row(0)[3..5], de[0].row(0));
    }

    #[test]
    fn dot_backward_matches_finite_difference() {
        let dense = mk(2, 4, 0.3);
        let e0 = mk(2, 4, 1.7);
        let e1 = mk(2, 4, 2.9);
        let mut op = FeatureInteraction::new(InteractionKind::Dot);
        let out = op.forward(&dense, &[e0.clone(), e1.clone()]).unwrap();
        let dout = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (dd, de) = op.backward(&dout).unwrap();

        let loss = |dense: &Matrix, e0: &Matrix, e1: &Matrix| -> f32 {
            let mut op = FeatureInteraction::new(InteractionKind::Dot);
            op.forward(dense, &[e0.clone(), e1.clone()]).unwrap().sum()
        };
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..4 {
                // dense grad
                let mut p = dense.clone();
                p[(r, c)] += eps;
                let mut mo = dense.clone();
                mo[(r, c)] -= eps;
                let num = (loss(&p, &e0, &e1) - loss(&mo, &e0, &e1)) / (2.0 * eps);
                assert!((dd[(r, c)] - num).abs() < 1e-2, "dense[{r}][{c}]");
                // e0 grad
                let mut p = e0.clone();
                p[(r, c)] += eps;
                let mut mo = e0.clone();
                mo[(r, c)] -= eps;
                let num = (loss(&dense, &p, &e1) - loss(&dense, &mo, &e1)) / (2.0 * eps);
                assert!((de[0][(r, c)] - num).abs() < 1e-2, "e0[{r}][{c}]");
            }
        }
    }
}

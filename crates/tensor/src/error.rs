//! Error types for dense tensor operations.

use std::error::Error;
use std::fmt;

/// Error returned when the shapes of two operands are incompatible.
///
/// Carries the operation name and both shapes so that failures deep inside a
/// model (e.g. a mis-configured MLP layer) are diagnosable from the message
/// alone.
///
/// ```
/// use tcast_tensor::{Matrix, ShapeError};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(2, 3); // 3x? required for matmul
/// let err: ShapeError = a.matmul(&b).unwrap_err();
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with the two offending
    /// shapes.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that failed (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Shape of the left-hand operand as `(rows, cols)`.
    pub fn lhs(&self) -> (usize, usize) {
        self.lhs
    }

    /// Shape of the right-hand operand as `(rows, cols)`.
    pub fn rhs(&self) -> (usize, usize) {
        self.rhs
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes for {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_op_and_shapes() {
        let err = ShapeError::new("matmul", (2, 3), (4, 5));
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn accessors_roundtrip() {
        let err = ShapeError::new("add", (1, 2), (3, 4));
        assert_eq!(err.op(), "add");
        assert_eq!(err.lhs(), (1, 2));
        assert_eq!(err.rhs(), (3, 4));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}

//! A fully-connected layer with cached activations and gradients.

use crate::error::ShapeError;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use tcast_pool::Exec;

/// Minimum output elements per task before a pooled GEMM pays off; below
/// this the serial kernel runs even under [`Exec::Pooled`].
const POOLED_GEMM_MIN_ROWS: usize = 8;

/// A fully-connected (dense) layer `y = x W + b`.
///
/// `W` is `in_dim x out_dim`; inputs are batched row-wise (`batch x in_dim`).
/// The layer caches its input during [`Linear::forward`] so that
/// [`Linear::backward`] can produce weight/bias gradients, and stores those
/// gradients until [`Linear::apply_update`] folds them into the parameters.
///
/// This mirrors how the paper's GPU-side "DNN fwd/bwd" phases are structured:
/// forward produces activations, backward produces `dW` (GEMM of transposed
/// activations) and `dX` (GEMM against transposed weights).
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    cached_input: Option<Matrix>,
    grad_weight: Option<Matrix>,
    grad_bias: Option<Vec<f32>>,
    // Retired gradient buffers recycled by the next backward pass, so the
    // steady-state training step allocates nothing here.
    spare_grad_weight: Option<Matrix>,
    spare_grad_bias: Option<Vec<f32>>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            weight: xavier_uniform(in_dim, out_dim, seed),
            bias: vec![0.0; out_dim],
            cached_input: None,
            grad_weight: None,
            grad_bias: None,
            spare_grad_weight: None,
            spare_grad_bias: None,
        }
    }

    /// Creates a layer from explicit parameters (for tests).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `bias.len() != weight.cols()`.
    pub fn from_parameters(weight: Matrix, bias: Vec<f32>) -> Result<Self, ShapeError> {
        if bias.len() != weight.cols() {
            return Err(ShapeError::new(
                "from_parameters",
                weight.shape(),
                (1, bias.len()),
            ));
        }
        Ok(Self {
            weight,
            bias,
            cached_input: None,
            grad_weight: None,
            grad_bias: None,
            spare_grad_weight: None,
            spare_grad_bias: None,
        })
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Immutable access to the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Immutable access to the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Copies `src`'s parameters into this layer **in place** — no
    /// allocation, shapes must already match. This is the snapshot-capture
    /// primitive: publishing an epoch-versioned model copy every K steps
    /// must not allocate in steady state, so the copy writes through the
    /// existing weight/bias slabs instead of [`Linear::set_parameters`]'
    /// buffer replacement. Cached activations and gradients are *not*
    /// copied — a parameter copy captures what the layer computes, not
    /// what it was computing.
    ///
    /// # Panics
    ///
    /// Panics if the layers disagree on shape.
    pub fn copy_parameters_from(&mut self, src: &Linear) {
        assert_eq!(
            self.weight.shape(),
            src.weight.shape(),
            "layer shape mismatch"
        );
        self.weight.copy_from(&src.weight);
        self.bias.copy_from_slice(&src.bias);
    }

    /// Forward pass: `y = x W + b`. Caches `x` for the backward pass.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `x.cols() != in_dim`.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix, ShapeError> {
        let mut y = Matrix::default();
        self.forward_into(x, &mut y, Exec::Serial)?;
        Ok(y)
    }

    /// [`Linear::forward`] writing into `out` (reusing its allocation) and
    /// caching `x` into a reused buffer — the zero-allocation steady-state
    /// form. With [`Exec::Pooled`], the GEMM is row-partitioned across the
    /// pool; results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `x.cols() != in_dim`.
    pub fn forward_into(
        &mut self,
        x: &Matrix,
        out: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        matmul_exec(x, &self.weight, out, exec)?;
        out.add_row_vector(&self.bias)?;
        match &mut self.cached_input {
            Some(buf) => buf.copy_from(x),
            none => *none = Some(x.clone()),
        }
        Ok(())
    }

    /// Stateless forward pass (no caching); used for inference/evaluation.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `x.cols() != in_dim`.
    pub fn forward_inference(&self, x: &Matrix) -> Result<Matrix, ShapeError> {
        let mut y = x.matmul(&self.weight)?;
        y.add_row_vector(&self.bias)?;
        Ok(y)
    }

    /// [`Linear::forward_inference`] writing into `out` (reusing its
    /// allocation), with the GEMM pooled when `exec` provides a pool —
    /// the zero-allocation serving form. Unlike [`Linear::forward_into`]
    /// it takes `&self` and caches nothing, so a frozen model can be
    /// scored from scratch buffers the *caller* owns (the serve engine
    /// shares one model between scoring and checkpointing this way).
    /// Bit-identical to both forward forms.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `x.cols() != in_dim`.
    pub fn forward_inference_into(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        matmul_exec(x, &self.weight, out, exec)?;
        out.add_row_vector(&self.bias)
    }

    /// Backward pass. Given `dy = dL/dy`, computes and caches
    /// `dW = x^T dy`, `db = sum_rows(dy)`, and returns `dx = dy W^T`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call or the
    /// gradient shape is inconsistent with the cached input.
    pub fn backward(&mut self, dy: &Matrix) -> Result<Matrix, ShapeError> {
        let mut dx = Matrix::default();
        self.backward_into(dy, &mut dx, Exec::Serial)?;
        Ok(dx)
    }

    /// [`Linear::backward`] writing `dx` into a reused buffer, recycling
    /// the gradient buffers retired by the last [`Linear::apply_update`].
    /// With [`Exec::Pooled`], `dx = dy W^T` is row-partitioned across the
    /// pool; results are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call or the
    /// gradient shape is inconsistent with the cached input.
    pub fn backward_into(
        &mut self,
        dy: &Matrix,
        dx: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| ShapeError::new("backward_without_forward", (0, 0), dy.shape()))?;
        let mut grad_w = self.spare_grad_weight.take().unwrap_or_default();
        x.matmul_at_into(dy, &mut grad_w)?;
        let mut grad_b = self.spare_grad_bias.take().unwrap_or_default();
        dy.sum_rows_into(&mut grad_b);
        matmul_bt_exec(dy, &self.weight, dx, exec)?;
        self.grad_weight = Some(grad_w);
        self.grad_bias = Some(grad_b);
        Ok(())
    }

    /// Applies the cached gradients with plain SGD:
    /// `W -= lr * dW`, `b -= lr * db`, then clears them.
    ///
    /// Calling this without cached gradients is a no-op, so optimizer steps
    /// may be issued uniformly across layers.
    pub fn apply_update(&mut self, lr: f32) {
        if let Some(gw) = self.grad_weight.take() {
            // Infallible: gw has the same shape as weight by construction.
            self.weight
                .add_scaled(&gw, -lr)
                .expect("weight gradient shape matches weight");
            self.spare_grad_weight = Some(gw); // recycle for the next step
        }
        if let Some(gb) = self.grad_bias.take() {
            for (b, g) in self.bias.iter_mut().zip(gb.iter()) {
                *b -= lr * g;
            }
            self.spare_grad_bias = Some(gb);
        }
    }

    /// Replaces the layer parameters (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shapes differ from the current
    /// parameters.
    pub fn set_parameters(&mut self, weight: Matrix, bias: Vec<f32>) -> Result<(), ShapeError> {
        if weight.shape() != self.weight.shape() {
            return Err(ShapeError::new(
                "set_parameters",
                self.weight.shape(),
                weight.shape(),
            ));
        }
        if bias.len() != self.bias.len() {
            return Err(ShapeError::new(
                "set_parameters",
                (1, self.bias.len()),
                (1, bias.len()),
            ));
        }
        self.weight = weight;
        self.bias = bias;
        Ok(())
    }

    /// The cached weight gradient from the last backward pass, if any.
    pub fn grad_weight(&self) -> Option<&Matrix> {
        self.grad_weight.as_ref()
    }

    /// The cached bias gradient from the last backward pass, if any.
    pub fn grad_bias(&self) -> Option<&[f32]> {
        self.grad_bias.as_deref()
    }
}

/// `a * b` into `out`, pooled when `exec` provides a pool and the batch is
/// worth splitting. Bit-identical to [`Matrix::matmul_into`].
fn matmul_exec(a: &Matrix, b: &Matrix, out: &mut Matrix, exec: Exec<'_>) -> Result<(), ShapeError> {
    match exec.pool() {
        Some(pool) if exec.threads() > 1 && a.rows() >= POOLED_GEMM_MIN_ROWS => {
            if a.cols() != b.rows() {
                return Err(ShapeError::new("matmul", a.shape(), b.shape()));
            }
            out.zero_into(a.rows(), b.cols());
            crate::parallel::matmul_pooled_unchecked(pool, a, b, out, exec.threads());
            Ok(())
        }
        _ => a.matmul_into(b, out),
    }
}

/// `a * b^T` into `out`, row-partitioned on the pool when worthwhile.
/// Bit-identical to [`Matrix::matmul_bt_into`] (same per-row dot kernel).
fn matmul_bt_exec(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    exec: Exec<'_>,
) -> Result<(), ShapeError> {
    match exec.pool() {
        Some(pool) if exec.threads() > 1 && a.rows() >= POOLED_GEMM_MIN_ROWS => {
            if a.cols() != b.cols() {
                return Err(ShapeError::new("matmul_bt", a.shape(), b.shape()));
            }
            let (m, k, n) = (a.rows(), a.cols(), b.rows());
            out.zero_into(m, n);
            let threads = exec.threads().min(m.max(1));
            let per = m.div_ceil(threads);
            let a_data = a.as_slice();
            let b_data = b.as_slice();
            let buf = out.as_mut_slice();
            pool.scope(|scope| {
                let mut rest = buf;
                for t in 0..threads {
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(m);
                    if lo >= hi {
                        break;
                    }
                    let (band, tail) = rest.split_at_mut((hi - lo) * n);
                    rest = tail;
                    let a_band = &a_data[lo * k..hi * k];
                    scope
                        .spawn(move || crate::parallel::bt_band_kernel(a_band, b_data, band, k, n));
                }
            });
            Ok(())
        }
        _ => a.matmul_bt_into(b, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_weight_and_bias() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let mut layer = Linear::from_parameters(w, vec![10.0, 20.0]).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.row(0), &[11.0, 22.0]);
    }

    #[test]
    fn from_parameters_validates_bias() {
        let w = Matrix::zeros(2, 3);
        assert!(Linear::from_parameters(w, vec![0.0; 2]).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut layer = Linear::new(2, 2, 1);
        assert!(layer.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 42);
        let x = Matrix::from_rows(&[&[0.5, -0.25, 1.0], &[-1.0, 0.75, 0.1]]).unwrap();

        // Scalar loss L = sum(y); dL/dy = ones.
        let y = layer.forward(&x).unwrap();
        let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = layer.backward(&dy).unwrap();
        let gw = layer.grad_weight().unwrap().clone();
        let gb = layer.grad_bias().unwrap().to_vec();

        let eps = 1e-2f32;
        let loss = |l: &Linear, x: &Matrix| -> f32 { l.forward_inference(x).unwrap().sum() };

        // Weight gradient check.
        for r in 0..3 {
            for c in 0..2 {
                let mut lp = layer.clone();
                let mut wp = lp.weight().clone();
                wp[(r, c)] += eps;
                lp = Linear::from_parameters(wp, lp.bias().to_vec()).unwrap();
                let mut lm = layer.clone();
                let mut wm = lm.weight().clone();
                wm[(r, c)] -= eps;
                lm = Linear::from_parameters(wm, lm.bias().to_vec()).unwrap();
                let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!(
                    (gw[(r, c)] - num).abs() < 1e-2,
                    "dW[{r}][{c}] analytic {} vs numeric {num}",
                    gw[(r, c)]
                );
            }
        }
        // Bias gradient = batch size for sum loss.
        assert!(gb.iter().all(|&g| (g - 2.0).abs() < 1e-5));

        // Input gradient check.
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!(
                    (dx[(r, c)] - num).abs() < 1e-2,
                    "dX[{r}][{c}] analytic {} vs numeric {num}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn apply_update_moves_against_gradient() {
        let mut layer = Linear::new(2, 1, 3);
        let before = layer.weight().clone();
        let x = Matrix::filled(4, 2, 1.0);
        let y = layer.forward(&x).unwrap();
        let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
        layer.backward(&dy).unwrap();
        layer.apply_update(0.1);
        let after = layer.weight();
        // dW = x^T dy = 4.0 for each entry; W should decrease by 0.4.
        for r in 0..2 {
            assert!((before[(r, 0)] - after[(r, 0)] - 0.4).abs() < 1e-5);
        }
        // Gradients consumed.
        assert!(layer.grad_weight().is_none());
        assert!(layer.grad_bias().is_none());
    }

    #[test]
    fn apply_update_without_gradients_is_noop() {
        let mut layer = Linear::new(2, 2, 5);
        let before = layer.weight().clone();
        layer.apply_update(1.0);
        assert_eq!(layer.weight(), &before);
    }

    #[test]
    fn parameter_count() {
        let layer = Linear::new(3, 4, 0);
        assert_eq!(layer.parameter_count(), 3 * 4 + 4);
    }
}

//! Multi-layer perceptron: the "bottom" and "top" DNN of a DLRM model.

use crate::error::ShapeError;
use crate::linear::Linear;
use crate::matrix::Matrix;
use crate::ops::{relu, relu_backward, relu_backward_in_place, relu_into};
use tcast_pool::Exec;

/// Hidden-layer activation for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Rectified linear unit (DLRM's default).
    #[default]
    Relu,
    /// No activation (purely linear stack).
    Identity,
}

/// Caller-owned reusable buffers for [`Mlp::forward_inference_into`]:
/// one pre-activation buffer shared by every layer plus one
/// post-activation buffer per hidden layer (sized lazily on first use).
/// Keeping these outside the [`Mlp`] lets a `&self` model serve many
/// engines, each with its own scratch.
#[derive(Debug, Default)]
pub struct MlpInferenceScratch {
    pre: Matrix,
    act: Vec<Matrix>,
}

/// A stack of [`Linear`] layers with a shared hidden activation.
///
/// The final layer is always linear (no activation): DLRM applies the
/// sigmoid inside the loss ([`crate::bce_with_logits`]) for numerical
/// stability, matching standard practice.
///
/// Layer sizes follow the paper's notation: the Table II entry
/// "256-128-64" for a bottom MLP is expressed as
/// `Mlp::new(input_dim, &[256, 128, 64], ...)`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    // Pre-activation outputs of each hidden layer, saved for backprop.
    cached_pre_activations: Vec<Matrix>,
    // Reusable buffers for the zero-allocation step path: post-activation
    // outputs per hidden layer, and two ping-pong gradient buffers.
    step_hidden: Vec<Matrix>,
    step_grad: [Matrix; 2],
}

impl Mlp {
    /// Creates an MLP mapping `input_dim` to `widths.last()` through the
    /// given hidden widths.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `widths` is empty.
    pub fn new(
        input_dim: usize,
        widths: &[usize],
        activation: Activation,
        seed: u64,
    ) -> Result<Self, ShapeError> {
        if widths.is_empty() {
            return Err(ShapeError::new("mlp_new", (input_dim, 0), (0, 0)));
        }
        let mut layers = Vec::with_capacity(widths.len());
        let mut in_dim = input_dim;
        for (i, &w) in widths.iter().enumerate() {
            layers.push(Linear::new(in_dim, w, seed.wrapping_add(i as u64 * 7919)));
            in_dim = w;
        }
        Ok(Self {
            layers,
            activation,
            cached_pre_activations: Vec::new(),
            step_hidden: Vec::new(),
            step_grad: [Matrix::default(), Matrix::default()],
        })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("mlp has >= 1 layer").out_dim()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameters across all layers.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Mutable access to the layers (checkpoint restore).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Copies `src`'s parameters layer by layer **in place** (see
    /// [`Linear::copy_parameters_from`]) — the allocation-free capture
    /// path for epoch-versioned model snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the MLPs disagree on depth or any layer's shape.
    pub fn copy_parameters_from(&mut self, src: &Mlp) {
        assert_eq!(self.layers.len(), src.layers.len(), "MLP depth mismatch");
        for (dst, src) in self.layers.iter_mut().zip(src.layers.iter()) {
            dst.copy_parameters_from(src);
        }
    }

    /// Forward pass over a `batch x input_dim` matrix, caching
    /// pre-activations for [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on input-dimension mismatch.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix, ShapeError> {
        self.cached_pre_activations.clear();
        let mut h = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let z = layer.forward(&h)?;
            if i + 1 < n {
                h = match self.activation {
                    Activation::Relu => relu(&z),
                    Activation::Identity => z.clone(),
                };
                self.cached_pre_activations.push(z);
            } else {
                h = z;
            }
        }
        Ok(h)
    }

    /// [`Mlp::forward`] writing into `out` and reusing every intermediate
    /// buffer (pre-activations, hidden activations, cached layer inputs):
    /// the zero-allocation steady-state form. With [`Exec::Pooled`] the
    /// layer GEMMs run on the pool. Bit-identical to [`Mlp::forward`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on input-dimension mismatch.
    pub fn forward_into(
        &mut self,
        x: &Matrix,
        out: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let n = self.layers.len();
        let hidden = n - 1;
        // Lazily size the per-hidden-layer buffers (first call only).
        self.cached_pre_activations
            .resize_with(hidden, Matrix::default);
        self.step_hidden.resize_with(hidden, Matrix::default);

        let Self {
            layers,
            activation,
            cached_pre_activations,
            step_hidden,
            ..
        } = self;
        for i in 0..hidden {
            // Split the buffer list so the previous layer's (immutable)
            // output and this layer's (mutable) output never alias.
            let (before, at) = step_hidden.split_at_mut(i);
            let input = if i == 0 { x } else { &before[i - 1] };
            let z = &mut cached_pre_activations[i];
            layers[i].forward_into(input, z, exec)?;
            match activation {
                Activation::Relu => relu_into(z, &mut at[0]),
                Activation::Identity => at[0].copy_from(z),
            }
        }
        let input = if hidden == 0 {
            x
        } else {
            &step_hidden[hidden - 1]
        };
        layers[hidden].forward_into(input, out, exec)
    }

    /// Inference-only forward pass writing into `out` through
    /// caller-owned scratch — the zero-allocation serving form. Takes
    /// `&self` and mutates no model state (unlike [`Mlp::forward_into`],
    /// which caches pre-activations for backprop), so one frozen model
    /// can be scored concurrently with checkpointing, and the serve
    /// engine's scratch lives with the engine, not the model.
    /// Bit-identical to [`Mlp::forward`], [`Mlp::forward_into`] and
    /// [`Mlp::forward_inference`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on input-dimension mismatch.
    pub fn forward_inference_into(
        &self,
        x: &Matrix,
        scratch: &mut MlpInferenceScratch,
        out: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let n = self.layers.len();
        let hidden = n - 1;
        scratch.act.resize_with(hidden, Matrix::default);
        for i in 0..hidden {
            // Split so the previous layer's (immutable) activation and
            // this layer's (mutable) buffer never alias.
            let (before, at) = scratch.act.split_at_mut(i);
            let input = if i == 0 { x } else { &before[i - 1] };
            self.layers[i].forward_inference_into(input, &mut scratch.pre, exec)?;
            match self.activation {
                Activation::Relu => relu_into(&scratch.pre, &mut at[0]),
                Activation::Identity => at[0].copy_from(&scratch.pre),
            }
        }
        let input = if hidden == 0 {
            x
        } else {
            &scratch.act[hidden - 1]
        };
        self.layers[hidden].forward_inference_into(input, out, exec)
    }

    /// Inference-only forward pass (no caching, `&self`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on input-dimension mismatch.
    pub fn forward_inference(&self, x: &Matrix) -> Result<Matrix, ShapeError> {
        let mut h = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward_inference(&h)?;
            h = if i + 1 < n {
                match self.activation {
                    Activation::Relu => relu(&z),
                    Activation::Identity => z,
                }
            } else {
                z
            };
        }
        Ok(h)
    }

    /// Backward pass. Takes `dL/d(output)` and returns `dL/d(input)`,
    /// leaving per-layer gradients cached inside each [`Linear`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call.
    pub fn backward(&mut self, dy: &Matrix) -> Result<Matrix, ShapeError> {
        let n = self.layers.len();
        let mut grad = dy.clone();
        for i in (0..n).rev() {
            grad = self.layers[i].backward(&grad)?;
            if i > 0 {
                let z = &self.cached_pre_activations[i - 1];
                grad = match self.activation {
                    Activation::Relu => relu_backward(&grad, z)?,
                    Activation::Identity => grad,
                };
            }
        }
        Ok(grad)
    }

    /// [`Mlp::backward`] writing `dL/d(input)` into `dx` and reusing the
    /// two internal ping-pong gradient buffers. Bit-identical to
    /// [`Mlp::backward`]; with [`Exec::Pooled`] the GEMMs run on the pool.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call.
    pub fn backward_into(
        &mut self,
        dy: &Matrix,
        dx: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let n = self.layers.len();
        let Self {
            layers,
            activation,
            cached_pre_activations,
            step_grad,
            ..
        } = self;
        let [buf_a, buf_b] = step_grad;
        // The running gradient ping-pongs dy -> a -> b -> a -> ... -> dx.
        let mut src_in_a = false;
        let mut src_is_dy = true;
        for i in (0..n).rev() {
            let into_dx = i == 0;
            match (src_is_dy, src_in_a, into_dx) {
                (true, _, true) => layers[i].backward_into(dy, dx, exec)?,
                (true, _, false) => {
                    layers[i].backward_into(dy, buf_a, exec)?;
                    src_in_a = true;
                }
                (false, true, true) => layers[i].backward_into(&*buf_a, dx, exec)?,
                (false, true, false) => {
                    layers[i].backward_into(&*buf_a, buf_b, exec)?;
                    src_in_a = false;
                }
                (false, false, true) => layers[i].backward_into(&*buf_b, dx, exec)?,
                (false, false, false) => {
                    layers[i].backward_into(&*buf_b, buf_a, exec)?;
                    src_in_a = true;
                }
            }
            src_is_dy = false;
            if i > 0 {
                let z = &cached_pre_activations[i - 1];
                let grad: &mut Matrix = if src_in_a { buf_a } else { buf_b };
                match activation {
                    Activation::Relu => relu_backward_in_place(grad, z)?,
                    Activation::Identity => {}
                }
            }
        }
        Ok(())
    }

    /// Applies cached gradients on every layer with SGD at rate `lr`.
    pub fn apply_update(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.apply_update(lr);
        }
    }

    /// Approximate FLOP count for one forward pass at the given batch size
    /// (2 FLOPs per MAC). Used by the system-level cost model.
    pub fn forward_flops(&self, batch: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| 2 * batch as u64 * l.in_dim() as u64 * l.out_dim() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_widths() {
        assert!(Mlp::new(4, &[], Activation::Relu, 0).is_err());
    }

    #[test]
    fn shapes_flow_through() {
        let mut mlp = Mlp::new(8, &[16, 4, 2], Activation::Relu, 1).unwrap();
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 2);
        let y = mlp.forward(&Matrix::zeros(5, 8)).unwrap();
        assert_eq!(y.shape(), (5, 2));
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut mlp = Mlp::new(6, &[12, 3], Activation::Relu, 9).unwrap();
        let mut x = Matrix::zeros(4, 6);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.13).sin();
        }
        let y1 = mlp.forward(&x).unwrap();
        let y2 = mlp.forward_inference(&x).unwrap();
        assert!(y1.max_abs_diff(&y2).unwrap() < 1e-6);
    }

    #[test]
    fn inference_into_is_bit_identical_to_every_forward_form() {
        let mut mlp = Mlp::new(6, &[12, 7, 1], Activation::Relu, 31).unwrap();
        let mut x = Matrix::zeros(5, 6);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.29).cos();
        }
        let trained = mlp.forward(&x).unwrap();
        let alloc = mlp.forward_inference(&x).unwrap();
        let mut scratch = MlpInferenceScratch::default();
        let mut out = Matrix::default();
        // Twice: the second pass runs entirely through recycled buffers.
        for _ in 0..2 {
            mlp.forward_inference_into(&x, &mut scratch, &mut out, Exec::Serial)
                .unwrap();
            assert_eq!(out.as_slice(), trained.as_slice());
            assert_eq!(out.as_slice(), alloc.as_slice());
        }
    }

    #[test]
    fn inference_into_handles_single_layer_stacks() {
        let mlp = Mlp::new(4, &[2], Activation::Relu, 3).unwrap();
        let x = Matrix::from_rows(&[&[0.1, -0.4, 0.7, 0.2]]).unwrap();
        let mut scratch = MlpInferenceScratch::default();
        let mut out = Matrix::default();
        mlp.forward_inference_into(&x, &mut scratch, &mut out, Exec::Serial)
            .unwrap();
        let expect = mlp.forward_inference(&x).unwrap();
        assert_eq!(out.as_slice(), expect.as_slice());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut mlp = Mlp::new(3, &[5, 1], Activation::Relu, 12).unwrap();
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-0.5, 0.3, 0.1]]).unwrap();
        let y = mlp.forward(&x).unwrap();
        let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = mlp.backward(&dy).unwrap();

        let eps = 1e-2f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp[(r, c)] += eps;
                let mut xm = x.clone();
                xm[(r, c)] -= eps;
                let num = (mlp.forward_inference(&xp).unwrap().sum()
                    - mlp.forward_inference(&xm).unwrap().sum())
                    / (2.0 * eps);
                assert!(
                    (dx[(r, c)] - num).abs() < 2e-2,
                    "dX[{r}][{c}] analytic {} vs numeric {num}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_regression_task() {
        // Fit y = sum(x) with a small MLP; MSE should drop sharply.
        let mut mlp = Mlp::new(4, &[16, 1], Activation::Relu, 77).unwrap();
        let mut rng = crate::init::SplitMix64::new(5);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..300 {
            let mut x = Matrix::zeros(16, 4);
            for v in x.as_mut_slice() {
                *v = rng.next_range(-1.0, 1.0);
            }
            let target: Vec<f32> = x.rows_iter().map(|r| r.iter().sum()).collect();
            let t = Matrix::from_vec(16, 1, target).unwrap();
            let y = mlp.forward(&x).unwrap();
            let (loss, dy) = crate::loss::mse_with_grad(&y, &t).unwrap();
            mlp.backward(&dy).unwrap();
            mlp.apply_update(0.05);
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.2,
            "loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn identity_activation_is_linear() {
        let mlp = Mlp::new(2, &[2, 2], Activation::Identity, 4).unwrap();
        let x1 = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        let x2 = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let sum = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let y1 = mlp.forward_inference(&x1).unwrap();
        let y2 = mlp.forward_inference(&x2).unwrap();
        let ysum = mlp.forward_inference(&sum).unwrap();
        // Linearity up to the (shared) bias: f(a+b) = f(a) + f(b) - f(0).
        let y0 = mlp.forward_inference(&Matrix::zeros(1, 2)).unwrap();
        let expect = y1.add(&y2).unwrap().sub(&y0).unwrap();
        assert!(ysum.max_abs_diff(&expect).unwrap() < 1e-5);
    }

    #[test]
    fn flops_formula() {
        let mlp = Mlp::new(10, &[20, 5], Activation::Relu, 0).unwrap();
        // 2*(10*20 + 20*5) per sample.
        assert_eq!(mlp.forward_flops(1), 2 * (200 + 100));
        assert_eq!(mlp.forward_flops(8), 8 * 2 * 300);
    }
}

//! The near-memory-processing (NMP) architecture of Sections IV-C of the
//! paper: rank-level NMP cores (Fig. 11) inside a disaggregated memory
//! pool (Fig. 10, Table I), unified behind the tensor gather-scatter
//! primitive that Tensor Casting makes sufficient for *all* of embedding
//! training.
//!
//! # Model structure
//!
//! * [`NmpCore`] — one DIMM's accelerator: a vector ALU, staging queues
//!   and a local memory controller, modelled functionally (it computes
//!   real results over real `f32` data) *and* temporally (every
//!   instruction is compiled to a 64 B DRAM command stream and timed on
//!   the cycle-level `tcast-dram` simulator).
//! * [`NmpPool`] — the disaggregated node: N NMP channels
//!   (dual-rank DDR4-3200 LRDIMMs, 25.6 GB/s each; 32 channels =
//!   819.2 GB/s aggregate, Table I). Embedding tables are *sliced
//!   column-wise* across a group of channels at the 64 B minimum access
//!   granularity ("each NMP core is able to conduct multiples of 64 byte
//!   granularity gathers and scatters"), so every core runs the same
//!   `(src, dst)` stream over its own slice and no cross-rank reduction
//!   is ever needed.
//! * [`NmpInstruction`] — the CISC-style commands the host sends
//!   (gather-reduce / scatter / the Tensor-Casting additions), mirroring
//!   the ISA extension the paper calls "the primary change required".
//! * [`LinkModel`] — the host-pool interconnect (25 GB/s PCIe-class by
//!   default, sweepable to 150 GB/s NVLINK-class for the Section VI-D
//!   sensitivity study).
//!
//! # Example
//!
//! ```
//! use tcast_nmp::{NmpPool, PoolConfig};
//! use tcast_embedding::{EmbeddingTable, IndexArray, gather_reduce};
//!
//! # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
//! let mut pool = NmpPool::new(PoolConfig::small(4));
//! let table = EmbeddingTable::seeded(256, 16, 7);
//! let handle = pool.load_table(&table)?;
//! let index = IndexArray::from_samples(&[vec![1, 2, 4], vec![0, 2]])?;
//! let (pooled, exec) = pool.gather_reduce(handle, &index)?;
//! // Functionally identical to the host kernel...
//! assert_eq!(pooled, gather_reduce(&table, &index)?);
//! // ...and timed on the cycle-level DRAM model.
//! assert!(exec.nanoseconds > 0.0);
//! # Ok(())
//! # }
//! ```

mod core;
mod isa;
mod link;
mod pool;
mod utilization;

pub use crate::core::{CoreExec, NmpCore, SLICE_BYTES, SLICE_FLOATS};
pub use isa::NmpInstruction;
pub use link::LinkModel;
pub use pool::{NmpPool, PoolConfig, PoolExec, TableHandle};
pub use utilization::UtilizationTracker;

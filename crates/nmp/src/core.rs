//! One NMP core: the Fig. 11 microarchitecture.
//!
//! The core owns one memory channel (a dual-rank DDR4-3200 LRDIMM, the
//! 128 GB modules of Section IV-C) and executes [`NmpInstruction`]s
//! against its local column-slices of the pool's tables. Execution is
//! simultaneously:
//!
//! * **functional** — real `f32` data is gathered, reduced and updated,
//!   so results are bit-checkable against the host kernels; and
//! * **temporal** — each instruction is compiled into its 64 B DRAM
//!   command stream (gather reads, output-drain writes, RMW updates) and
//!   replayed on the cycle-level `tcast-dram` simulator; the vector ALU
//!   (16 f32 lanes, clocked with the memory bus) is modelled as a
//!   throughput bound overlapped with the DRAM stream.

use crate::isa::NmpInstruction;
use tcast_dram::{streams, DramConfig, MemorySystem, Request};
use tcast_embedding::EmbeddingError;

/// Execution report for one instruction on one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreExec {
    /// Memory-clock cycles the instruction occupied the channel.
    pub cycles: u64,
    /// Wall-clock nanoseconds (cycles x tCK).
    pub nanoseconds: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Vector-ALU cycles (reported; overlapped with DRAM time).
    pub alu_cycles: u64,
}

/// The byte width of one table slice on one core: the DRAM minimum access
/// granularity the paper builds on.
pub const SLICE_BYTES: usize = 64;
/// f32 lanes in one slice (and in the vector ALU).
pub const SLICE_FLOATS: usize = SLICE_BYTES / 4;

#[derive(Debug, Clone)]
struct LocalTable {
    rows: usize,
    /// Floats actually used in this core's slice (<= SLICE_FLOATS).
    width: usize,
    data: Vec<f32>,
    base_block: u64,
}

/// One rank-level NMP core with its private memory channel.
#[derive(Debug)]
pub struct NmpCore {
    channel_config: DramConfig,
    tables: Vec<LocalTable>,
    next_block: u64,
    busy_cycles: u64,
}

impl NmpCore {
    /// Creates a core over the given channel configuration.
    pub fn new(channel_config: DramConfig) -> Self {
        Self {
            channel_config,
            tables: Vec::new(),
            next_block: 0,
            busy_cycles: 0,
        }
    }

    /// Allocates a local table of `rows` slices, each `width <=`
    /// [`SLICE_FLOATS`] floats wide, returning its local id.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`SLICE_FLOATS`].
    pub fn alloc_table(&mut self, rows: usize, width: usize) -> usize {
        assert!(width <= SLICE_FLOATS, "slice width {width} exceeds 64 B");
        let id = self.tables.len();
        self.tables.push(LocalTable {
            rows,
            width,
            data: vec![0.0; rows * width],
            base_block: self.next_block,
        });
        self.next_block += rows as u64; // one 64 B block per row slice
        id
    }

    /// Number of local tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Cumulative busy cycles across all executed instructions.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Immutable view of a local table's row slice (for verification).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn row_slice(&self, table: usize, row: u32) -> &[f32] {
        let t = &self.tables[table];
        let r = row as usize;
        assert!(r < t.rows, "local row {row} out of bounds");
        &t.data[r * t.width..(r + 1) * t.width]
    }

    /// Bulk-initializes a local table's data without timing it.
    ///
    /// Initial table placement happens once, off the training critical
    /// path, so the pool loads slices functionally and only *training*
    /// instructions pay simulated DRAM time.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] if `data` does not have
    /// exactly `rows * width` elements.
    pub fn load_slice(&mut self, table: usize, data: &[f32]) -> Result<(), EmbeddingError> {
        let t = self.table_mut(table)?;
        if data.len() != t.rows * t.width {
            return Err(EmbeddingError::LengthMismatch {
                expected: t.rows * t.width,
                found: data.len(),
            });
        }
        t.data.copy_from_slice(data);
        Ok(())
    }

    /// Executes one instruction: computes its functional result (returned
    /// as flattened output slices for `GatherReduce`, empty otherwise)
    /// and its timing.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError`] on out-of-range local rows or slice
    /// width mismatches.
    pub fn execute(
        &mut self,
        instr: &NmpInstruction,
    ) -> Result<(Vec<f32>, CoreExec), EmbeddingError> {
        match instr {
            NmpInstruction::WriteRows { table, rows } => {
                let (trace, alu) = {
                    let t = self.table_mut(*table)?;
                    for (row, values) in rows {
                        let r = *row as usize;
                        if r >= t.rows {
                            return Err(EmbeddingError::SrcOutOfBounds {
                                src: *row,
                                rows: t.rows,
                            });
                        }
                        if values.len() != t.width {
                            return Err(EmbeddingError::DimMismatch {
                                expected: t.width,
                                found: values.len(),
                            });
                        }
                        t.data[r * t.width..(r + 1) * t.width].copy_from_slice(values);
                    }
                    let ids: Vec<u32> = rows.iter().map(|(r, _)| *r).collect();
                    (
                        streams::scatter_writes(&ids, SLICE_BYTES as u64, t.base_block),
                        0,
                    )
                };
                let exec = self.time_trace(trace, alu);
                Ok((Vec::new(), exec))
            }
            NmpInstruction::GatherReduce {
                table,
                pairs,
                num_outputs,
            } => {
                let (out, trace, alu) = {
                    let t = self.table(*table)?;
                    let mut out = vec![0.0f32; num_outputs * t.width];
                    for &(src, dst) in pairs {
                        let s = src as usize;
                        if s >= t.rows {
                            return Err(EmbeddingError::SrcOutOfBounds { src, rows: t.rows });
                        }
                        let d = dst as usize;
                        if d >= *num_outputs {
                            return Err(EmbeddingError::DstOutOfBounds {
                                dst,
                                outputs: *num_outputs,
                            });
                        }
                        let row = &t.data[s * t.width..(s + 1) * t.width];
                        let acc = &mut out[d * t.width..(d + 1) * t.width];
                        for (a, &v) in acc.iter_mut().zip(row.iter()) {
                            *a += v;
                        }
                    }
                    // Trace: one 64 B read per pair (on-the-fly reduction in
                    // the output buffer), one 64 B write per output slot as
                    // results drain to local memory for the host link.
                    let srcs: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
                    let mut trace = streams::gather_reads(&srcs, SLICE_BYTES as u64, t.base_block);
                    let outs: Vec<u32> = (0..*num_outputs as u32).collect();
                    trace.extend(streams::scatter_writes(
                        &outs,
                        SLICE_BYTES as u64,
                        self.next_block, // output staging region
                    ));
                    // One ALU cycle per 16-lane accumulate.
                    (out, trace, pairs.len() as u64)
                };
                let exec = self.time_trace(trace, alu);
                Ok((out, exec))
            }
            NmpInstruction::ScatterSgd {
                table,
                updates,
                lr,
                grads_in_dram,
            } => {
                let staging = self.next_block;
                let (trace, alu) = {
                    let t = self.table_mut(*table)?;
                    for (row, grad) in updates {
                        let r = *row as usize;
                        if r >= t.rows {
                            return Err(EmbeddingError::SrcOutOfBounds {
                                src: *row,
                                rows: t.rows,
                            });
                        }
                        if grad.len() != t.width {
                            return Err(EmbeddingError::DimMismatch {
                                expected: t.width,
                                found: grad.len(),
                            });
                        }
                        let p = &mut t.data[r * t.width..(r + 1) * t.width];
                        for (w, &g) in p.iter_mut().zip(grad.iter()) {
                            *w -= lr * g;
                        }
                    }
                    let ids: Vec<u32> = updates.iter().map(|(r, _)| *r).collect();
                    let mut trace = Vec::new();
                    if *grads_in_dram {
                        let grad_ids: Vec<u32> = (0..updates.len() as u32).collect();
                        trace.extend(streams::gather_reads(
                            &grad_ids,
                            SLICE_BYTES as u64,
                            staging,
                        ));
                    }
                    trace.extend(streams::update_rmw(&ids, SLICE_BYTES as u64, t.base_block));
                    (trace, updates.len() as u64)
                };
                let exec = self.time_trace(trace, alu);
                Ok((Vec::new(), exec))
            }
        }
    }

    fn table(&self, id: usize) -> Result<&LocalTable, EmbeddingError> {
        self.tables
            .get(id)
            .ok_or_else(|| EmbeddingError::InvalidIndex(format!("local table {id} not allocated")))
    }

    fn table_mut(&mut self, id: usize) -> Result<&mut LocalTable, EmbeddingError> {
        self.tables
            .get_mut(id)
            .ok_or_else(|| EmbeddingError::InvalidIndex(format!("local table {id} not allocated")))
    }

    /// Replays a request trace on a fresh instance of the core's channel
    /// and converts cycles to time; the ALU bound is overlapped (decoupled
    /// access-execute), so instruction time = max(dram, alu).
    fn time_trace(&mut self, trace: Vec<Request>, alu_cycles: u64) -> CoreExec {
        if trace.is_empty() {
            return CoreExec {
                cycles: 0,
                nanoseconds: 0.0,
                dram_bytes: 0,
                alu_cycles,
            };
        }
        let mut mem = MemorySystem::new(self.channel_config.clone());
        let stats = mem.run_trace(trace);
        let dram_cycles = stats.last_data_cycle;
        let cycles = dram_cycles.max(alu_cycles);
        self.busy_cycles += cycles;
        CoreExec {
            cycles,
            nanoseconds: cycles as f64 * self.channel_config.timing.tck_ps as f64 * 1e-3,
            dram_bytes: stats.bytes(),
            alu_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_dram::{AddressMapping, DramConfig};

    fn core() -> NmpCore {
        let mut cfg = DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst);
        cfg.ranks_per_channel = 2;
        NmpCore::new(cfg)
    }

    fn write_rows(c: &mut NmpCore, table: usize, rows: &[(u32, Vec<f32>)]) {
        let instr = NmpInstruction::WriteRows {
            table,
            rows: rows.to_vec(),
        };
        c.execute(&instr).unwrap();
    }

    #[test]
    fn alloc_and_write_roundtrip() {
        let mut c = core();
        let t = c.alloc_table(8, 4);
        write_rows(&mut c, t, &[(3, vec![1.0, 2.0, 3.0, 4.0])]);
        assert_eq!(c.row_slice(t, 3), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.row_slice(t, 0), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 B")]
    fn oversized_slice_rejected() {
        core().alloc_table(4, SLICE_FLOATS + 1);
    }

    #[test]
    fn gather_reduce_functional_result() {
        let mut c = core();
        let t = c.alloc_table(8, 2);
        write_rows(
            &mut c,
            t,
            &[
                (0, vec![1.0, 10.0]),
                (1, vec![2.0, 20.0]),
                (2, vec![4.0, 40.0]),
            ],
        );
        let instr = NmpInstruction::GatherReduce {
            table: t,
            pairs: vec![(0, 0), (2, 0), (1, 1)],
            num_outputs: 2,
        };
        let (out, exec) = c.execute(&instr).unwrap();
        assert_eq!(out, vec![5.0, 50.0, 2.0, 20.0]);
        assert!(exec.cycles > 0);
        // 3 gather reads + 2 output writes = 5 blocks = 320 B.
        assert_eq!(exec.dram_bytes, 5 * 64);
    }

    #[test]
    fn gather_reduce_validates_indices() {
        let mut c = core();
        let t = c.alloc_table(4, 2);
        let bad_src = NmpInstruction::GatherReduce {
            table: t,
            pairs: vec![(9, 0)],
            num_outputs: 1,
        };
        assert!(c.execute(&bad_src).is_err());
        let bad_dst = NmpInstruction::GatherReduce {
            table: t,
            pairs: vec![(0, 5)],
            num_outputs: 1,
        };
        assert!(c.execute(&bad_dst).is_err());
    }

    #[test]
    fn scatter_sgd_applies_update() {
        let mut c = core();
        let t = c.alloc_table(4, 2);
        write_rows(&mut c, t, &[(1, vec![1.0, 1.0])]);
        let instr = NmpInstruction::ScatterSgd {
            table: t,
            updates: vec![(1, vec![0.5, -0.5])],
            lr: 1.0,
            grads_in_dram: false,
        };
        let (_, exec) = c.execute(&instr).unwrap();
        assert_eq!(c.row_slice(t, 1), &[0.5, 1.5]);
        // RMW: 1 read + 1 write = 128 B.
        assert_eq!(exec.dram_bytes, 2 * 64);
    }

    #[test]
    fn scatter_with_dram_gradients_costs_an_extra_read() {
        let mut c1 = core();
        let t1 = c1.alloc_table(16, 2);
        let mut c2 = core();
        let t2 = c2.alloc_table(16, 2);
        let updates: Vec<(u32, Vec<f32>)> = (0..8).map(|i| (i, vec![0.1, 0.1])).collect();
        let (_, from_queue) = c1
            .execute(&NmpInstruction::ScatterSgd {
                table: t1,
                updates: updates.clone(),
                lr: 0.1,
                grads_in_dram: false,
            })
            .unwrap();
        let (_, from_dram) = c2
            .execute(&NmpInstruction::ScatterSgd {
                table: t2,
                updates,
                lr: 0.1,
                grads_in_dram: true,
            })
            .unwrap();
        assert_eq!(from_dram.dram_bytes - from_queue.dram_bytes, 8 * 64);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut c = core();
        let t = c.alloc_table(64, 4);
        assert_eq!(c.busy_cycles(), 0);
        let instr = NmpInstruction::GatherReduce {
            table: t,
            pairs: (0..32).map(|i| (i, i % 4)).collect(),
            num_outputs: 4,
        };
        c.execute(&instr).unwrap();
        let after_one = c.busy_cycles();
        assert!(after_one > 0);
        c.execute(&instr).unwrap();
        assert!(c.busy_cycles() > after_one);
    }

    #[test]
    fn bigger_gathers_take_longer() {
        let mut c = core();
        let t = c.alloc_table(1024, 16);
        let small = NmpInstruction::GatherReduce {
            table: t,
            pairs: (0..64u32).map(|i| (i * 7 % 1024, i % 16)).collect(),
            num_outputs: 16,
        };
        let big = NmpInstruction::GatherReduce {
            table: t,
            pairs: (0..640u32).map(|i| (i * 7 % 1024, i % 16)).collect(),
            num_outputs: 16,
        };
        let (_, e_small) = c.execute(&small).unwrap();
        let (_, e_big) = c.execute(&big).unwrap();
        assert!(e_big.cycles > 5 * e_small.cycles);
    }
}

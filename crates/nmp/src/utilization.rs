//! NMP utilization accounting (Fig. 15): how much of a training
//! iteration the pool actually spends executing.
//!
//! The pool's per-operation [`crate::PoolExec`] reports feed a tracker
//! that accumulates busy time against a wall-clock window supplied by the
//! caller (who knows the non-NMP phase durations — DNN, transfers,
//! exposed casting). The workspace test `utilization_bottom_up.rs`
//! rebuilds Fig. 15 this way and checks it against the analytic system
//! model.

use crate::pool::PoolExec;

/// Accumulates NMP busy time over a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UtilizationTracker {
    busy_ns: f64,
    window_ns: f64,
}

impl UtilizationTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a pool operation: its duration counts as busy time *and*
    /// as elapsed window (the op is on the critical path).
    pub fn record_pool_op(&mut self, exec: &PoolExec) {
        self.busy_ns += exec.nanoseconds;
        self.window_ns += exec.nanoseconds;
    }

    /// Records time in which the pool idles (DNN phases, link transfers,
    /// exposed casting).
    pub fn record_idle(&mut self, ns: f64) {
        self.window_ns += ns;
    }

    /// Records pool work fully overlapped with an equally long non-pool
    /// phase (contributes busy time but no extra wall time beyond `ns`).
    pub fn record_overlapped(&mut self, busy_ns: f64, wall_ns: f64) {
        self.busy_ns += busy_ns;
        self.window_ns += wall_ns.max(busy_ns);
    }

    /// Total busy nanoseconds.
    pub fn busy_ns(&self) -> f64 {
        self.busy_ns
    }

    /// Total window nanoseconds.
    pub fn window_ns(&self) -> f64 {
        self.window_ns
    }

    /// Busy fraction in `[0, 1]`; 0 for an empty window.
    pub fn utilization(&self) -> f64 {
        if self.window_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns / self.window_ns).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(ns: f64) -> PoolExec {
        PoolExec {
            nanoseconds: ns,
            cycles: 0,
            dram_bytes: 0,
            channels_used: 1,
        }
    }

    #[test]
    fn empty_tracker_is_zero() {
        let t = UtilizationTracker::new();
        assert_eq!(t.utilization(), 0.0);
    }

    #[test]
    fn pure_pool_work_is_fully_utilized() {
        let mut t = UtilizationTracker::new();
        t.record_pool_op(&op(100.0));
        t.record_pool_op(&op(50.0));
        assert!((t.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(t.busy_ns(), 150.0);
    }

    #[test]
    fn idle_time_dilutes_utilization() {
        let mut t = UtilizationTracker::new();
        t.record_pool_op(&op(30.0));
        t.record_idle(70.0);
        assert!((t.utilization() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn overlap_counts_busy_without_double_wall_time() {
        let mut t = UtilizationTracker::new();
        // 40 ns of pool work hidden under a 100 ns DNN phase.
        t.record_overlapped(40.0, 100.0);
        assert_eq!(t.window_ns(), 100.0);
        assert!((t.utilization() - 0.4).abs() < 1e-12);
        // Overlap longer than the cover: wall extends to the busy time.
        let mut t = UtilizationTracker::new();
        t.record_overlapped(100.0, 60.0);
        assert_eq!(t.window_ns(), 100.0);
        assert!((t.utilization() - 1.0).abs() < 1e-12);
    }
}

//! The CISC-style NMP instruction set.
//!
//! "We assume that the GPU sends a CISC instruction encapsulating the
//! necessary information required to conduct tensor gather-reduce (and
//! similarly scatter), which the NMP core receives to conduct the
//! necessary transactions locally within the DIMM." (Section IV-C.)
//!
//! The baseline TensorDIMM ISA has only `GatherReduce`; the paper's
//! stated hardware delta is "the inclusion of the tensor scatter
//! instruction as part of the ISA", plus — because Tensor Casting reuses
//! gather-reduce for backward — a variant that sources the *gradient
//! table* instead of an embedding table.

/// One host-to-NMP command. Index payloads are *local* ids, already
/// translated by the pool's table layout.
#[derive(Debug, Clone, PartialEq)]
pub enum NmpInstruction {
    /// Stage rows into a local table (initial load, or the broadcast of
    /// the backpropagated gradient table before a casted backward pass).
    WriteRows {
        /// Local table id on the core.
        table: usize,
        /// `(local_row, values)` pairs; `values.len()` = the core's slice
        /// width.
        rows: Vec<(u32, Vec<f32>)>,
    },
    /// Fused tensor gather-reduce over a local table: for each pair,
    /// accumulate local row `src` into output slot `dst`; outputs are
    /// drained to local memory (and from there to the host link).
    GatherReduce {
        /// Local table id.
        table: usize,
        /// `(local_src_row, dst_slot)` pairs.
        pairs: Vec<(u32, u32)>,
        /// Number of output slots.
        num_outputs: usize,
    },
    /// Tensor scatter with an SGD update: `row <- row - lr * grad` for
    /// each `(local_row, grad)` pair. Gradients arrive through the input
    /// queue (`grads_in_dram = false`) or from a local staging region
    /// written by a preceding casted gather-reduce (`true`).
    ScatterSgd {
        /// Local table id.
        table: usize,
        /// `(local_row, gradient slice)` pairs.
        updates: Vec<(u32, Vec<f32>)>,
        /// Learning rate.
        lr: f32,
        /// Whether gradient rows are read from local DRAM (adds read
        /// traffic) or streamed in through the input queue.
        grads_in_dram: bool,
    },
}

impl NmpInstruction {
    /// Short mnemonic for logs.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            NmpInstruction::WriteRows { .. } => "NMP.WR",
            NmpInstruction::GatherReduce { .. } => "NMP.GRD",
            NmpInstruction::ScatterSgd { .. } => "NMP.SCT",
        }
    }

    /// Number of row-granular memory operations the instruction implies
    /// (used for quick cost sanity checks; exact timing comes from the
    /// DRAM simulator).
    pub fn row_ops(&self) -> usize {
        match self {
            NmpInstruction::WriteRows { rows, .. } => rows.len(),
            NmpInstruction::GatherReduce {
                pairs, num_outputs, ..
            } => pairs.len() + num_outputs,
            NmpInstruction::ScatterSgd {
                updates,
                grads_in_dram,
                ..
            } => updates.len() * if *grads_in_dram { 3 } else { 2 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_distinct() {
        let a = NmpInstruction::WriteRows {
            table: 0,
            rows: vec![],
        };
        let b = NmpInstruction::GatherReduce {
            table: 0,
            pairs: vec![],
            num_outputs: 0,
        };
        let c = NmpInstruction::ScatterSgd {
            table: 0,
            updates: vec![],
            lr: 0.1,
            grads_in_dram: false,
        };
        let names = [a.mnemonic(), b.mnemonic(), c.mnemonic()];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn row_ops_accounting() {
        let g = NmpInstruction::GatherReduce {
            table: 0,
            pairs: vec![(0, 0), (1, 0), (2, 1)],
            num_outputs: 2,
        };
        assert_eq!(g.row_ops(), 5);
        let s_queue = NmpInstruction::ScatterSgd {
            table: 0,
            updates: vec![(0, vec![0.0]); 4],
            lr: 0.1,
            grads_in_dram: false,
        };
        assert_eq!(s_queue.row_ops(), 8); // RMW per row
        let s_dram = NmpInstruction::ScatterSgd {
            table: 0,
            updates: vec![(0, vec![0.0]); 4],
            lr: 0.1,
            grads_in_dram: true,
        };
        assert_eq!(s_dram.row_ops(), 12); // + gradient read per row
    }
}

//! Host ↔ pool interconnect model.

/// A simple bandwidth + latency link model.
///
/// The paper's memory-centric system connects the GPU to the
/// disaggregated pool over a modest 25 GB/s link and shows performance is
/// insensitive to it (Section VI-D: 99% of the 150 GB/s configuration's
/// performance) — a claim `fig17`-adjacent benches re-verify with this
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    bandwidth_gbps: f64,
    latency_ns: f64,
}

impl LinkModel {
    /// Creates a link with the given bandwidth (GB/s) and fixed per
    /// transfer latency (ns).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_gbps <= 0`.
    pub fn new(bandwidth_gbps: f64, latency_ns: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        Self {
            bandwidth_gbps,
            latency_ns,
        }
    }

    /// PCIe gen3 x16-class host link (16 GB/s), used CPU <-> GPU.
    pub fn pcie_gen3() -> Self {
        Self::new(16.0, 1_500.0)
    }

    /// The paper's default GPU <-> pool link (25 GB/s).
    pub fn pool_default() -> Self {
        Self::new(25.0, 1_500.0)
    }

    /// NVLINK-class link (150 GB/s) for the sensitivity sweep.
    pub fn nvlink() -> Self {
        Self::new(150.0, 1_000.0)
    }

    /// Link bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Time to move `bytes` across the link, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = LinkModel::new(10.0, 0.0);
        // 10 GB/s = 10 bytes/ns.
        assert!((l.transfer_ns(100) - 10.0).abs() < 1e-9);
        assert!((l.transfer_ns(1000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_floor_applies_to_small_transfers() {
        let l = LinkModel::new(1000.0, 2000.0);
        assert!(l.transfer_ns(64) >= 2000.0);
    }

    #[test]
    fn presets_ordered_by_bandwidth() {
        assert!(
            LinkModel::pcie_gen3().bandwidth_gbps() < LinkModel::pool_default().bandwidth_gbps()
        );
        assert!(LinkModel::pool_default().bandwidth_gbps() < LinkModel::nvlink().bandwidth_gbps());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        LinkModel::new(0.0, 0.0);
    }
}

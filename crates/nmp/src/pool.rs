//! The disaggregated NMP memory pool (Fig. 10, Table I).
//!
//! Tables are sliced *column-wise* across a group of NMP channels at the
//! 64 B minimum access granularity: a `dim`-wide table occupies
//! `ceil(dim / 16)` channels, each holding a 64 B slice of every row.
//! Every member channel then executes the *same* `(src, dst)` stream over
//! its own slice — gathers, scatters and casted gather-reduces all stay
//! entirely rank-local, which is how "the effective memory throughput
//! available across the NMP cores [is] amplified as a function of the
//! number of ranks". Different tables round-robin across channel groups,
//! activating the whole pool when a model has many tables.

use crate::core::{NmpCore, SLICE_FLOATS};
use crate::isa::NmpInstruction;
use tcast_core::CastedIndexArray;
use tcast_dram::{AddressMapping, DramConfig};
use tcast_embedding::{CoalescedGradients, EmbeddingError, EmbeddingTable, IndexArray};
use tcast_tensor::Matrix;

/// Pool-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Number of NMP channels (Table I: 32 ranks).
    pub channels: usize,
    /// Per-channel memory configuration. The default models one 128 GB
    /// dual-rank LRDIMM on a DDR4-3200 channel with the gather-optimized
    /// column-first layout.
    pub channel: DramConfig,
}

impl PoolConfig {
    /// The paper's Table I configuration: 32 channels x 25.6 GB/s =
    /// 819.2 GB/s aggregate peak.
    pub fn table_i() -> Self {
        Self {
            channels: 32,
            channel: Self::default_channel(),
        }
    }

    /// A small pool for unit tests and examples.
    pub fn small(channels: usize) -> Self {
        Self {
            channels,
            channel: Self::default_channel(),
        }
    }

    fn default_channel() -> DramConfig {
        let mut cfg = DramConfig::ddr4_3200().with_mapping(AddressMapping::ColumnFirst);
        cfg.ranks_per_channel = 2;
        cfg
    }

    /// Aggregate peak bandwidth in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.channels as f64 * self.channel.peak_bandwidth_gbps()
    }
}

/// Handle to a table resident in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableHandle(usize);

/// Timing report for one pool-level operation.
///
/// Member channels run in parallel, so wall time is the slowest member;
/// byte counts are summed across members.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolExec {
    /// Wall-clock nanoseconds (max over participating channels).
    pub nanoseconds: f64,
    /// Memory cycles of the slowest participating channel.
    pub cycles: u64,
    /// Total DRAM bytes moved across all participating channels.
    pub dram_bytes: u64,
    /// Number of channels that participated.
    pub channels_used: usize,
}

impl PoolExec {
    /// Sequential composition of two pool operations.
    pub fn then(self, next: PoolExec) -> PoolExec {
        PoolExec {
            nanoseconds: self.nanoseconds + next.nanoseconds,
            cycles: self.cycles + next.cycles,
            dram_bytes: self.dram_bytes + next.dram_bytes,
            channels_used: self.channels_used.max(next.channels_used),
        }
    }

    /// Effective bandwidth of this operation in GB/s.
    pub fn effective_bandwidth_gbps(&self) -> f64 {
        if self.nanoseconds == 0.0 {
            return 0.0;
        }
        self.dram_bytes as f64 / self.nanoseconds
    }
}

#[derive(Debug, Clone)]
struct PooledTable {
    rows: usize,
    dim: usize,
    /// Channel ids holding this table's slices.
    members: Vec<usize>,
    /// Column range per member.
    col_ranges: Vec<(usize, usize)>,
    /// Local table id on each member.
    local_ids: Vec<usize>,
    /// Local gradient-staging table per member (lazily allocated, keyed by
    /// capacity in rows).
    grad_staging: Option<(usize, Vec<usize>)>,
}

/// The disaggregated memory node with one NMP core per channel.
#[derive(Debug)]
pub struct NmpPool {
    config: PoolConfig,
    cores: Vec<NmpCore>,
    tables: Vec<PooledTable>,
    next_group_start: usize,
}

impl NmpPool {
    /// Builds a pool with `config.channels` NMP cores.
    pub fn new(config: PoolConfig) -> Self {
        let cores = (0..config.channels)
            .map(|_| NmpCore::new(config.channel.clone()))
            .collect();
        Self {
            config,
            cores,
            tables: Vec::new(),
            next_group_start: 0,
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Per-channel cumulative busy cycles (for utilization accounting).
    pub fn busy_cycles(&self) -> Vec<u64> {
        self.cores.iter().map(NmpCore::busy_cycles).collect()
    }

    /// Loads an embedding table into the pool, slicing it column-wise
    /// across `ceil(dim/16)` channels. The load itself is untimed
    /// (one-time placement).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::DimMismatch`] if the table is wider than
    /// the whole pool can slice (`dim > 16 * channels`).
    pub fn load_table(&mut self, table: &EmbeddingTable) -> Result<TableHandle, EmbeddingError> {
        let dim = table.dim();
        let group = dim.div_ceil(SLICE_FLOATS).max(1);
        if group > self.config.channels {
            return Err(EmbeddingError::DimMismatch {
                expected: SLICE_FLOATS * self.config.channels,
                found: dim,
            });
        }
        let mut members = Vec::with_capacity(group);
        let mut col_ranges = Vec::with_capacity(group);
        let mut local_ids = Vec::with_capacity(group);
        for k in 0..group {
            let ch = (self.next_group_start + k) % self.config.channels;
            let lo = k * SLICE_FLOATS;
            let hi = ((k + 1) * SLICE_FLOATS).min(dim);
            let width = hi - lo;
            let local = self.cores[ch].alloc_table(table.rows(), width);
            // Gather this member's column slice of every row.
            let mut slice = Vec::with_capacity(table.rows() * width);
            for r in 0..table.rows() {
                slice.extend_from_slice(&table.row(r)[lo..hi]);
            }
            self.cores[ch].load_slice(local, &slice)?;
            members.push(ch);
            col_ranges.push((lo, hi));
            local_ids.push(local);
        }
        self.next_group_start = (self.next_group_start + group) % self.config.channels;
        let handle = TableHandle(self.tables.len());
        self.tables.push(PooledTable {
            rows: table.rows(),
            dim,
            members,
            col_ranges,
            local_ids,
            grad_staging: None,
        });
        Ok(handle)
    }

    /// Reassembles the full table from its slices (verification helper).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] for an unknown handle.
    pub fn read_table(&self, handle: TableHandle) -> Result<EmbeddingTable, EmbeddingError> {
        let t = self.pooled(handle)?;
        let mut out = EmbeddingTable::zeros(t.rows, t.dim);
        for r in 0..t.rows {
            for ((&ch, &local), &(lo, hi)) in t.members.iter().zip(&t.local_ids).zip(&t.col_ranges)
            {
                out.row_mut(r)[lo..hi].copy_from_slice(self.cores[ch].row_slice(local, r as u32));
            }
        }
        Ok(out)
    }

    /// Executes a fused tensor gather-reduce over a pooled table (forward
    /// propagation), returning the pooled embeddings and the timing.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown handles or out-of-range indices.
    pub fn gather_reduce(
        &mut self,
        handle: TableHandle,
        index: &IndexArray,
    ) -> Result<(Matrix, PoolExec), EmbeddingError> {
        let t = self.pooled(handle)?.clone();
        index.validate_against_rows(t.rows)?;
        let pairs: Vec<(u32, u32)> = index.iter().collect();
        let mut out = Matrix::zeros(index.num_outputs(), t.dim);
        let mut exec = PoolExec::default();
        for ((&ch, &local), &(lo, hi)) in t.members.iter().zip(&t.local_ids).zip(&t.col_ranges) {
            let instr = NmpInstruction::GatherReduce {
                table: local,
                pairs: pairs.clone(),
                num_outputs: index.num_outputs(),
            };
            let (slice_out, core_exec) = self.cores[ch].execute(&instr)?;
            let width = hi - lo;
            for (b, chunk) in slice_out.chunks_exact(width).enumerate() {
                out.row_mut(b)[lo..hi].copy_from_slice(chunk);
            }
            exec.nanoseconds = exec.nanoseconds.max(core_exec.nanoseconds);
            exec.cycles = exec.cycles.max(core_exec.cycles);
            exec.dram_bytes += core_exec.dram_bytes;
            exec.channels_used += 1;
        }
        Ok((out, exec))
    }

    /// Executes a tensor scatter with SGD over a pooled table (the model
    /// update). `grads_in_dram` selects whether gradient rows are staged
    /// in pool memory (true for the casted path, whose gather-reduce
    /// drained them locally) or stream in from the host link.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown handles, out-of-range rows, or a
    /// gradient width mismatch.
    pub fn scatter_sgd(
        &mut self,
        handle: TableHandle,
        coalesced: &CoalescedGradients,
        lr: f32,
        grads_in_dram: bool,
    ) -> Result<PoolExec, EmbeddingError> {
        let t = self.pooled(handle)?.clone();
        if coalesced.grads().cols() != t.dim {
            return Err(EmbeddingError::DimMismatch {
                expected: t.dim,
                found: coalesced.grads().cols(),
            });
        }
        if let Some(&bad) = coalesced.rows().iter().find(|&&r| r as usize >= t.rows) {
            return Err(EmbeddingError::SrcOutOfBounds {
                src: bad,
                rows: t.rows,
            });
        }
        let mut exec = PoolExec::default();
        for ((&ch, &local), &(lo, hi)) in t.members.iter().zip(&t.local_ids).zip(&t.col_ranges) {
            let updates: Vec<(u32, Vec<f32>)> = coalesced
                .rows()
                .iter()
                .enumerate()
                .map(|(i, &row)| (row, coalesced.grads().row(i)[lo..hi].to_vec()))
                .collect();
            let instr = NmpInstruction::ScatterSgd {
                table: local,
                updates,
                lr,
                grads_in_dram,
            };
            let (_, core_exec) = self.cores[ch].execute(&instr)?;
            exec.nanoseconds = exec.nanoseconds.max(core_exec.nanoseconds);
            exec.cycles = exec.cycles.max(core_exec.cycles);
            exec.dram_bytes += core_exec.dram_bytes;
            exec.channels_used += 1;
        }
        Ok(exec)
    }

    /// Executes the T.Casted gradient gather-reduce (Algorithm 3) on the
    /// NMP pool: broadcasts the `B x dim` gradient table to the table's
    /// member channels (slice-wise), then runs the same gather-reduce
    /// datapath over it, leaving coalesced gradients staged in pool
    /// memory.
    ///
    /// Returns the coalesced gradients (for verification / host use) and
    /// the combined timing of broadcast + gather-reduce.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown handles or shape mismatches.
    pub fn casted_gather_reduce(
        &mut self,
        handle: TableHandle,
        grads: &Matrix,
        casted: &CastedIndexArray,
    ) -> Result<(CoalescedGradients, PoolExec), EmbeddingError> {
        let t = self.pooled(handle)?.clone();
        if grads.cols() != t.dim {
            return Err(EmbeddingError::DimMismatch {
                expected: t.dim,
                found: grads.cols(),
            });
        }
        if grads.rows() != casted.num_gradient_rows() {
            return Err(EmbeddingError::LengthMismatch {
                expected: casted.num_gradient_rows(),
                found: grads.rows(),
            });
        }
        // Stage the gradient table on every member (timed: these writes
        // land in pool DRAM as the host link delivers them).
        let staging = self.grad_staging_tables(handle, grads.rows())?;
        let mut exec = PoolExec::default();
        let pairs: Vec<(u32, u32)> = casted
            .gather_src()
            .iter()
            .zip(casted.reduce_dst().iter())
            .map(|(&s, &d)| (s, d))
            .collect();
        let unique = casted.num_unique();
        let mut out = Matrix::zeros(unique, t.dim);
        for (k, ((&ch, &grad_table), &(lo, hi))) in t
            .members
            .iter()
            .zip(&staging)
            .zip(&t.col_ranges)
            .enumerate()
        {
            let _ = k;
            let rows: Vec<(u32, Vec<f32>)> = (0..grads.rows())
                .map(|b| (b as u32, grads.row(b)[lo..hi].to_vec()))
                .collect();
            let (_, write_exec) = self.cores[ch].execute(&NmpInstruction::WriteRows {
                table: grad_table,
                rows,
            })?;
            let instr = NmpInstruction::GatherReduce {
                table: grad_table,
                pairs: pairs.clone(),
                num_outputs: unique,
            };
            let (slice_out, gr_exec) = self.cores[ch].execute(&instr)?;
            let width = hi - lo;
            for (u, chunk) in slice_out.chunks_exact(width).enumerate() {
                out.row_mut(u)[lo..hi].copy_from_slice(chunk);
            }
            let member_ns = write_exec.nanoseconds + gr_exec.nanoseconds;
            exec.nanoseconds = exec.nanoseconds.max(member_ns);
            exec.cycles = exec.cycles.max(write_exec.cycles + gr_exec.cycles);
            exec.dram_bytes += write_exec.dram_bytes + gr_exec.dram_bytes;
            exec.channels_used += 1;
        }
        let coalesced = CoalescedGradients::new(casted.unique_rows().to_vec(), out)?;
        Ok((coalesced, exec))
    }

    /// Executes gather-reduce over *many* tables, modelling table-level
    /// parallelism: tables whose channel groups are disjoint run
    /// concurrently, so the reported wall time is the longest per-channel
    /// accumulation rather than the sum of per-table times. This is how a
    /// 40-table model (RM2) keeps all 32 ranks of the Table I pool busy.
    ///
    /// Returns per-table pooled outputs and the combined timing.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::LengthMismatch`] when `indices` and
    /// `handles` differ in length, and propagates per-table errors.
    pub fn gather_reduce_many(
        &mut self,
        handles: &[TableHandle],
        indices: &[IndexArray],
    ) -> Result<(Vec<Matrix>, PoolExec), EmbeddingError> {
        if handles.len() != indices.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: handles.len(),
                found: indices.len(),
            });
        }
        let mut outputs = Vec::with_capacity(handles.len());
        // Wall time: channels process their tables' work serially, tables
        // on different channels overlap. Accumulate busy time per channel
        // and take the maximum.
        let mut channel_ns = vec![0.0f64; self.config.channels];
        let mut total_bytes = 0u64;
        let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (&h, idx) in handles.iter().zip(indices) {
            let members = self.pooled(h)?.members.clone();
            let (out, exec) = self.gather_reduce(h, idx)?;
            outputs.push(out);
            for &ch in &members {
                channel_ns[ch] += exec.nanoseconds;
                used.insert(ch);
            }
            total_bytes += exec.dram_bytes;
        }
        let exec = PoolExec {
            nanoseconds: channel_ns.iter().copied().fold(0.0, f64::max),
            cycles: 0,
            dram_bytes: total_bytes,
            channels_used: used.len(),
        };
        Ok((outputs, exec))
    }

    fn grad_staging_tables(
        &mut self,
        handle: TableHandle,
        rows: usize,
    ) -> Result<Vec<usize>, EmbeddingError> {
        let idx = handle.0;
        if idx >= self.tables.len() {
            return Err(EmbeddingError::InvalidIndex(format!(
                "unknown table handle {idx}"
            )));
        }
        if let Some((cap, ids)) = &self.tables[idx].grad_staging {
            if *cap >= rows {
                return Ok(ids.clone());
            }
        }
        let (members, col_ranges) = {
            let t = &self.tables[idx];
            (t.members.clone(), t.col_ranges.clone())
        };
        let mut ids = Vec::with_capacity(members.len());
        for (&ch, &(lo, hi)) in members.iter().zip(&col_ranges) {
            ids.push(self.cores[ch].alloc_table(rows, hi - lo));
        }
        self.tables[idx].grad_staging = Some((rows, ids.clone()));
        Ok(ids)
    }

    fn pooled(&self, handle: TableHandle) -> Result<&PooledTable, EmbeddingError> {
        self.tables.get(handle.0).ok_or_else(|| {
            EmbeddingError::InvalidIndex(format!("unknown table handle {}", handle.0))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_core::tensor_casting;
    use tcast_embedding::{gather_reduce, gradient_expand_coalesce, optim::Sgd, scatter_apply};
    use tcast_tensor::SplitMix64;

    fn workload(
        rows: usize,
        dim: usize,
        batch: usize,
        pooling: usize,
        seed: u64,
    ) -> (EmbeddingTable, IndexArray, Matrix) {
        let table = EmbeddingTable::seeded(rows, dim, seed);
        let mut rng = SplitMix64::new(seed ^ 0x5555);
        let samples: Vec<Vec<u32>> = (0..batch)
            .map(|_| {
                (0..pooling)
                    .map(|_| rng.next_below(rows as u64) as u32)
                    .collect()
            })
            .collect();
        let index = IndexArray::from_samples(&samples).unwrap();
        let mut grads = Matrix::zeros(batch, dim);
        for v in grads.as_mut_slice() {
            *v = rng.next_range(-1.0, 1.0);
        }
        (table, index, grads)
    }

    #[test]
    fn load_and_read_roundtrip_multi_slice() {
        // dim 40 -> 3 member channels (16+16+8 floats).
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let table = EmbeddingTable::seeded(64, 40, 3);
        let h = pool.load_table(&table).unwrap();
        let back = pool.read_table(h).unwrap();
        assert_eq!(back.max_abs_diff(&table).unwrap(), 0.0);
    }

    #[test]
    fn table_too_wide_for_pool_rejected() {
        let mut pool = NmpPool::new(PoolConfig::small(2));
        let table = EmbeddingTable::zeros(4, 16 * 2 + 1);
        assert!(pool.load_table(&table).is_err());
    }

    #[test]
    fn pool_gather_reduce_matches_host_kernel() {
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let (table, index, _) = workload(128, 24, 16, 4, 1);
        let h = pool.load_table(&table).unwrap();
        let (pooled, exec) = pool.gather_reduce(h, &index).unwrap();
        let reference = gather_reduce(&table, &index).unwrap();
        assert!(pooled.max_abs_diff(&reference).unwrap() < 1e-6);
        assert_eq!(exec.channels_used, 2); // dim 24 -> 2 slices
        assert!(exec.nanoseconds > 0.0);
    }

    #[test]
    fn pool_scatter_matches_host_kernel() {
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let (mut table, index, grads) = workload(96, 16, 8, 3, 2);
        let h = pool.load_table(&table).unwrap();
        let coalesced = gradient_expand_coalesce(&grads, &index).unwrap();
        pool.scatter_sgd(h, &coalesced, 0.05, false).unwrap();
        scatter_apply(&mut table, &coalesced, &mut Sgd::new(0.05)).unwrap();
        let back = pool.read_table(h).unwrap();
        assert!(back.max_abs_diff(&table).unwrap() < 1e-6);
    }

    #[test]
    fn pool_casted_backward_matches_baseline() {
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let (table, index, grads) = workload(200, 32, 24, 5, 3);
        let h = pool.load_table(&table).unwrap();
        let casted = tensor_casting(&index);
        let (coalesced, exec) = pool.casted_gather_reduce(h, &grads, &casted).unwrap();
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        assert_eq!(coalesced.rows(), baseline.rows());
        assert!(coalesced.max_abs_diff(&baseline).unwrap() < 1e-5);
        assert!(exec.nanoseconds > 0.0);
    }

    #[test]
    fn full_training_step_on_pool_equals_host() {
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let (mut host_table, index, grads) = workload(150, 16, 12, 4, 4);
        let h = pool.load_table(&host_table).unwrap();

        // Pool path: casted gather-reduce then scatter from pool DRAM.
        let casted = tensor_casting(&index);
        let (coalesced, _) = pool.casted_gather_reduce(h, &grads, &casted).unwrap();
        pool.scatter_sgd(h, &coalesced, 0.1, true).unwrap();

        // Host path: baseline expand-coalesce + scatter.
        let baseline = gradient_expand_coalesce(&grads, &index).unwrap();
        scatter_apply(&mut host_table, &baseline, &mut Sgd::new(0.1)).unwrap();

        let back = pool.read_table(h).unwrap();
        assert!(back.max_abs_diff(&host_table).unwrap() < 1e-5);
    }

    #[test]
    fn wider_tables_use_more_channels() {
        let mut pool = NmpPool::new(PoolConfig::small(8));
        let narrow = EmbeddingTable::zeros(32, 8);
        let wide = EmbeddingTable::zeros(32, 128);
        let hn = pool.load_table(&narrow).unwrap();
        let hw = pool.load_table(&wide).unwrap();
        let idx = IndexArray::from_samples(&[vec![0, 1]]).unwrap();
        let (_, en) = pool.gather_reduce(hn, &idx).unwrap();
        let (_, ew) = pool.gather_reduce(hw, &idx).unwrap();
        assert_eq!(en.channels_used, 1);
        assert_eq!(ew.channels_used, 8);
    }

    #[test]
    fn tables_round_robin_across_channel_groups() {
        let mut pool = NmpPool::new(PoolConfig::small(4));
        let t = EmbeddingTable::zeros(16, 16); // one channel each
        let idx = IndexArray::from_samples(&[vec![0]]).unwrap();
        for _ in 0..4 {
            let h = pool.load_table(&t).unwrap();
            pool.gather_reduce(h, &idx).unwrap();
        }
        // All four channels must have seen work.
        assert!(pool.busy_cycles().iter().all(|&c| c > 0));
    }

    #[test]
    fn many_tables_overlap_across_groups() {
        // Two dim-16 tables on a 2-channel pool occupy disjoint channels:
        // running them "many" takes about as long as the slower one, not
        // the sum.
        let mut pool = NmpPool::new(PoolConfig::small(2));
        let t = EmbeddingTable::seeded(2000, 16, 1);
        let h0 = pool.load_table(&t).unwrap();
        let h1 = pool.load_table(&t).unwrap();
        let mut rng = SplitMix64::new(4);
        let samples: Vec<Vec<u32>> = (0..64)
            .map(|_| (0..4).map(|_| rng.next_below(2000) as u32).collect())
            .collect();
        let idx = IndexArray::from_samples(&samples).unwrap();

        let (_, solo) = pool.gather_reduce(h0, &idx).unwrap();
        let (outs, both) = pool
            .gather_reduce_many(&[h0, h1], &[idx.clone(), idx.clone()])
            .unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(both.channels_used, 2);
        assert!(
            both.nanoseconds < 1.5 * solo.nanoseconds,
            "disjoint groups must overlap: {} vs {}",
            both.nanoseconds,
            solo.nanoseconds
        );
    }

    #[test]
    fn many_tables_on_one_group_serialize() {
        // Two tables forced onto the SAME single channel serialize.
        let mut pool = NmpPool::new(PoolConfig::small(1));
        let t = EmbeddingTable::seeded(2000, 16, 1);
        let h0 = pool.load_table(&t).unwrap();
        let h1 = pool.load_table(&t).unwrap();
        let mut rng = SplitMix64::new(4);
        let samples: Vec<Vec<u32>> = (0..64)
            .map(|_| (0..4).map(|_| rng.next_below(2000) as u32).collect())
            .collect();
        let idx = IndexArray::from_samples(&samples).unwrap();
        let (_, solo) = pool.gather_reduce(h0, &idx).unwrap();
        let (_, both) = pool
            .gather_reduce_many(&[h0, h1], &[idx.clone(), idx.clone()])
            .unwrap();
        assert!(both.nanoseconds > 1.7 * solo.nanoseconds);
    }

    #[test]
    fn gather_reduce_many_validates_lengths() {
        let mut pool = NmpPool::new(PoolConfig::small(2));
        let t = EmbeddingTable::seeded(100, 16, 1);
        let h = pool.load_table(&t).unwrap();
        let idx = IndexArray::from_samples(&[vec![0]]).unwrap();
        assert!(pool.gather_reduce_many(&[h], &[idx.clone(), idx]).is_err());
    }

    #[test]
    fn pool_exec_composition() {
        let a = PoolExec {
            nanoseconds: 10.0,
            cycles: 100,
            dram_bytes: 640,
            channels_used: 2,
        };
        let b = PoolExec {
            nanoseconds: 5.0,
            cycles: 50,
            dram_bytes: 320,
            channels_used: 4,
        };
        let c = a.then(b);
        assert_eq!(c.nanoseconds, 15.0);
        assert_eq!(c.dram_bytes, 960);
        assert_eq!(c.channels_used, 4);
        assert!((a.effective_bandwidth_gbps() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let pool = NmpPool::new(PoolConfig::small(2));
        assert!(pool.read_table(TableHandle(0)).is_err());
    }

    #[test]
    fn table_i_peak_bandwidth() {
        let cfg = PoolConfig::table_i();
        assert!((cfg.peak_bandwidth_gbps() - 819.2).abs() < 1.0);
    }
}

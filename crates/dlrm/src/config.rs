//! DLRM model configurations: Table II shapes at functional-run scale.
//!
//! The paper's tables hold millions to billions of rows; functional
//! training runs on one machine use the same *architecture* (table
//! counts, pooling factors, MLP stacks) with reduced per-table
//! cardinality — locality behaviour is preserved by the Zipf workload
//! models, and none of the algorithms under test depend on absolute
//! table size.

use tcast_datasets::{Popularity, TableWorkload};
use tcast_tensor::InteractionKind;

/// One embedding table's configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableConfig {
    /// Number of rows (categorical cardinality).
    pub rows: usize,
    /// Lookups per sample (pooling factor).
    pub pooling: usize,
    /// Zipf exponent of the lookup popularity (0 = uniform).
    pub zipf_exponent: f64,
}

impl TableConfig {
    /// The dataset workload model for this table.
    pub fn workload(&self) -> TableWorkload {
        TableWorkload::new(
            Popularity::zipf_or_uniform(self.rows, self.zipf_exponent),
            self.pooling,
        )
    }
}

/// Full DLRM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmConfig {
    /// Dense (continuous) feature count.
    pub dense_features: usize,
    /// Embedding dimension (shared across tables, as in DLRM).
    pub embedding_dim: usize,
    /// Embedding tables.
    pub tables: Vec<TableConfig>,
    /// Bottom-MLP widths (last must equal `embedding_dim` for the dot
    /// interaction).
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP widths (last must be 1).
    pub top_mlp: Vec<usize>,
    /// Interaction operator.
    pub interaction: InteractionKind,
}

impl DlrmConfig {
    /// A tiny configuration for unit tests and doc examples.
    pub fn tiny() -> Self {
        Self {
            dense_features: 8,
            embedding_dim: 16,
            tables: vec![
                TableConfig {
                    rows: 200,
                    pooling: 3,
                    zipf_exponent: 1.0,
                },
                TableConfig {
                    rows: 100,
                    pooling: 2,
                    zipf_exponent: 0.0,
                },
            ],
            bottom_mlp: vec![32, 16],
            top_mlp: vec![32, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// RM1's architecture (Table II) at reduced table cardinality:
    /// 10 tables x 80 gathers, bottom 256-128-64, top 256-64-1.
    pub fn rm1_scaled(rows_per_table: usize) -> Self {
        Self::rm_scaled(10, 80, vec![256, 128, 64], vec![256, 64, 1], rows_per_table)
    }

    /// RM2's architecture at reduced cardinality: 40 tables x 80 gathers.
    pub fn rm2_scaled(rows_per_table: usize) -> Self {
        Self::rm_scaled(
            40,
            80,
            vec![256, 128, 64],
            vec![512, 128, 1],
            rows_per_table,
        )
    }

    /// RM3's architecture at reduced cardinality: 10 tables x 20 gathers,
    /// MLP-heavy stacks.
    pub fn rm3_scaled(rows_per_table: usize) -> Self {
        Self::rm_scaled(
            10,
            20,
            vec![2560, 512, 64],
            vec![512, 128, 1],
            rows_per_table,
        )
    }

    /// RM4's architecture at reduced cardinality.
    pub fn rm4_scaled(rows_per_table: usize) -> Self {
        Self::rm_scaled(
            10,
            20,
            vec![2560, 1024, 64],
            vec![2048, 2048, 1024, 1],
            rows_per_table,
        )
    }

    fn rm_scaled(
        tables: usize,
        pooling: usize,
        bottom: Vec<usize>,
        top: Vec<usize>,
        rows: usize,
    ) -> Self {
        let dim = *bottom.last().expect("bottom mlp non-empty");
        Self {
            dense_features: 13,
            embedding_dim: dim,
            tables: vec![
                TableConfig {
                    rows,
                    pooling,
                    zipf_exponent: 1.05, // Criteo-like skew
                };
                tables
            ],
            bottom_mlp: bottom,
            top_mlp: top,
            interaction: InteractionKind::Dot,
        }
    }

    /// Per-table dataset workload models (drives `SyntheticCtr`).
    pub fn table_workloads(&self) -> Vec<TableWorkload> {
        self.tables.iter().map(TableConfig::workload).collect()
    }

    /// Total embedding parameters.
    pub fn embedding_parameters(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.rows * self.embedding_dim)
            .sum()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the bottom-MLP output width differs from
    /// the embedding dimension (required by the dot interaction), the
    /// top MLP does not end in 1, or no tables are configured.
    pub fn validate(&self) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("at least one embedding table is required".to_string());
        }
        if self.interaction == InteractionKind::Dot
            && self.bottom_mlp.last() != Some(&self.embedding_dim)
        {
            return Err(format!(
                "dot interaction requires bottom-MLP output ({}) == embedding dim ({})",
                self.bottom_mlp.last().copied().unwrap_or(0),
                self.embedding_dim
            ));
        }
        if self.top_mlp.last() != Some(&1) {
            return Err("top MLP must end in a single logit".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_is_valid() {
        assert!(DlrmConfig::tiny().validate().is_ok());
    }

    #[test]
    fn rm_presets_match_table_ii_shapes() {
        let rm1 = DlrmConfig::rm1_scaled(1000);
        assert_eq!(rm1.tables.len(), 10);
        assert_eq!(rm1.tables[0].pooling, 80);
        assert_eq!(rm1.bottom_mlp, vec![256, 128, 64]);
        assert!(rm1.validate().is_ok());
        let rm2 = DlrmConfig::rm2_scaled(1000);
        assert_eq!(rm2.tables.len(), 40);
        let rm4 = DlrmConfig::rm4_scaled(1000);
        assert_eq!(rm4.top_mlp, vec![2048, 2048, 1024, 1]);
        assert!(rm4.validate().is_ok());
    }

    #[test]
    fn validation_catches_mismatches() {
        let mut bad = DlrmConfig::tiny();
        bad.embedding_dim = 99;
        assert!(bad.validate().is_err());

        let mut bad = DlrmConfig::tiny();
        bad.top_mlp = vec![8, 2];
        assert!(bad.validate().is_err());

        let mut bad = DlrmConfig::tiny();
        bad.tables.clear();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn parameter_count() {
        let c = DlrmConfig::tiny();
        assert_eq!(c.embedding_parameters(), (200 + 100) * 16);
    }

    #[test]
    fn workload_conversion() {
        let c = DlrmConfig::tiny();
        let w = c.table_workloads();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].pooling(), 3);
        assert_eq!(w[0].rows(), 200);
    }
}

//! CTR evaluation metrics: accuracy, ROC-AUC and log-loss over model
//! scores — the quality-side instrumentation that lets training runs
//! confirm the paper's premise that Tensor Casting "does not change the
//! algorithmic nature of SGD training" (identical metrics, not just
//! identical losses).

use tcast_tensor::Matrix;

/// Binary-classification metrics over a scored batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtrMetrics {
    /// Fraction of correct 0.5-threshold predictions.
    pub accuracy: f64,
    /// Area under the ROC curve (0.5 = chance). `None` when the batch is
    /// single-class.
    pub auc: Option<f64>,
    /// Mean binary cross-entropy over probabilities.
    pub log_loss: f64,
    /// Number of positive labels.
    pub positives: usize,
    /// Number of samples.
    pub total: usize,
}

/// Computes metrics from logits and `{0,1}` labels (both `N x 1`).
///
/// # Panics
///
/// Panics if the shapes differ or are not single-column.
pub fn evaluate_ctr(logits: &Matrix, labels: &Matrix) -> CtrMetrics {
    assert_eq!(logits.shape(), labels.shape(), "shape mismatch");
    assert_eq!(logits.cols(), 1, "expected a single score column");
    let n = logits.rows();
    let mut correct = 0usize;
    let mut positives = 0usize;
    let mut log_loss = 0.0f64;
    let mut scored: Vec<(f32, bool)> = Vec::with_capacity(n);
    for i in 0..n {
        let z = logits.row(i)[0];
        let y = labels.row(i)[0] >= 0.5;
        let p = 1.0 / (1.0 + (-f64::from(z)).exp());
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        log_loss -= if y { p.ln() } else { (1.0 - p).ln() };
        if (p >= 0.5) == y {
            correct += 1;
        }
        positives += y as usize;
        scored.push((z, y));
    }
    CtrMetrics {
        accuracy: correct as f64 / n.max(1) as f64,
        auc: roc_auc(&mut scored),
        log_loss: log_loss / n.max(1) as f64,
        positives,
        total: n,
    }
}

/// Rank-based ROC-AUC (equivalent to the Mann-Whitney U statistic), with
/// proper tie handling via midranks. `None` when only one class present.
fn roc_auc(scored: &mut [(f32, bool)]) -> Option<f64> {
    let pos = scored.iter().filter(|(_, y)| *y).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return None;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
    // Midrank assignment over tied scores.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < scored.len() {
        let mut j = i;
        while j < scored.len() && scored[j].0 == scored[i].0 {
            j += 1;
        }
        // Ranks are 1-based; tied block [i, j) all get the midrank.
        let midrank = (i + 1 + j) as f64 / 2.0;
        for item in scored.iter().take(j).skip(i) {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (pos * (pos + 1)) as f64 / 2.0;
    Some(u / (pos as f64 * neg as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(vals: &[f32]) -> Matrix {
        Matrix::from_vec(vals.len(), 1, vals.to_vec()).unwrap()
    }

    #[test]
    fn perfect_classifier() {
        let logits = m(&[5.0, 4.0, -4.0, -5.0]);
        let labels = m(&[1.0, 1.0, 0.0, 0.0]);
        let metrics = evaluate_ctr(&logits, &labels);
        assert_eq!(metrics.accuracy, 1.0);
        assert_eq!(metrics.auc, Some(1.0));
        assert!(metrics.log_loss < 0.05);
        assert_eq!(metrics.positives, 2);
        assert_eq!(metrics.total, 4);
    }

    #[test]
    fn inverted_classifier_has_zero_auc() {
        let logits = m(&[-5.0, 5.0]);
        let labels = m(&[1.0, 0.0]);
        let metrics = evaluate_ctr(&logits, &labels);
        assert_eq!(metrics.auc, Some(0.0));
        assert_eq!(metrics.accuracy, 0.0);
    }

    #[test]
    fn constant_scores_give_half_auc() {
        let logits = m(&[0.0, 0.0, 0.0, 0.0]);
        let labels = m(&[1.0, 0.0, 1.0, 0.0]);
        let metrics = evaluate_ctr(&logits, &labels);
        assert_eq!(metrics.auc, Some(0.5));
        // At p=0.5, BCE = ln 2.
        assert!((metrics.log_loss - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn single_class_has_no_auc() {
        let logits = m(&[1.0, 2.0]);
        let labels = m(&[1.0, 1.0]);
        assert_eq!(evaluate_ctr(&logits, &labels).auc, None);
    }

    #[test]
    fn auc_with_ties_uses_midranks() {
        // Scores: pos {2, 1}, neg {1, 0}. The tie at 1 contributes 0.5.
        let logits = m(&[2.0, 1.0, 1.0, 0.0]);
        let labels = m(&[1.0, 1.0, 0.0, 0.0]);
        let metrics = evaluate_ctr(&logits, &labels);
        // pairs: (2>1)=1, (2>0)=1, (1=1)=0.5, (1>0)=1 -> 3.5/4.
        assert!((metrics.auc.unwrap() - 0.875).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        evaluate_ctr(&m(&[1.0]), &m(&[1.0, 0.0]));
    }

    #[test]
    fn auc_is_threshold_free() {
        // Shifting all logits by a constant changes accuracy but not AUC.
        let labels = m(&[1.0, 0.0, 1.0, 0.0]);
        let a = evaluate_ctr(&m(&[3.0, -1.0, 2.0, -2.0]), &labels);
        let b = evaluate_ctr(&m(&[13.0, 9.0, 12.0, 8.0]), &labels);
        assert_eq!(a.auc, b.auc);
        assert!(a.accuracy > b.accuracy);
    }
}

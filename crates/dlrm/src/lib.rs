//! End-to-end DLRM training on this repository's real kernels — the
//! functional counterpart of the paper's PyTorch/DLRM testbed.
//!
//! A [`Dlrm`] model is the Fig. 1 topology: bottom MLP over dense
//! features, per-table embedding gather-reduce, feature interaction, top
//! MLP, binary cross-entropy on the click label. The [`Trainer`] runs
//! real forward/backward steps with either embedding-backward
//! implementation:
//!
//! * [`BackwardMode::Baseline`] — gradient expand → coalesce
//!   (Algorithm 1) → scatter, today's framework path;
//! * [`BackwardMode::Casted`] — Tensor Casting: casted index arrays are
//!   precomputed on a pipeline thread *during forward propagation*
//!   (Section IV-B) and backward runs the fused casted gather-reduce
//!   (Algorithm 3) → scatter.
//!
//! The two modes produce *identical* training trajectories (asserted in
//! tests and in `tests/equivalence.rs` at the workspace root), while the
//! trainer's per-phase wall-clock instrumentation shows the casted path's
//! latency advantage on real hardware — the repository's analogue of the
//! paper's "prototyped on a real CPU-GPU system" measurements.
//!
//! # Example
//!
//! ```
//! use tcast_dlrm::{BackwardMode, DlrmConfig, Trainer};
//! use tcast_datasets::SyntheticCtr;
//!
//! # fn main() -> Result<(), tcast_embedding::EmbeddingError> {
//! let config = DlrmConfig::tiny();
//! let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 1);
//! let mut trainer = Trainer::new(config, BackwardMode::Casted, 42)?;
//! let report = trainer.step(&data.next_batch(64))?;
//! assert!(report.loss.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod checkpoint;
mod config;
mod driver;
pub mod metrics;
mod model;
mod trainer;

pub use config::{DlrmConfig, TableConfig};
pub use driver::{
    AdaptiveDepth, DepthController, DepthControllerState, DepthPolicy, DriverError, RunSummary,
    TrainLoop,
};
pub use metrics::{evaluate_ctr, CtrMetrics};
pub use model::{Dlrm, InferenceScratch};
pub use tcast_embedding::ShardSpec;
pub use trainer::{
    BackwardMode, EmbeddingOptimizer, Execution, InFlightStep, PhaseTimings, StepReport, Trainer,
};

//! The instrumented training loop: baseline vs. Tensor-Casting backward,
//! with per-phase wall-clock timings (the repository's Fig. 4/12
//! real-system measurement harness).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::DlrmConfig;
use crate::metrics::{evaluate_ctr, CtrMetrics};
use crate::model::Dlrm;
use tcast_core::{
    casted_gather_reduce_into, CastingPipeline, CoalescedScratch, JobTicket, PipelineStats,
};
use tcast_datasets::CtrBatch;
use tcast_embedding::{
    gradient_coalesce_into, gradient_expand_into,
    optim::{Adagrad, Adam, Momentum, RmsProp, Sgd, SplittableOptimizer},
    scatter_apply_per_shard, scatter_apply_sharded, CoalesceScratch, EmbeddingError, IndexArray,
    ShardMap, ShardSpec, ShardedOptimizer,
};
use tcast_pool::{Exec, Pool};
use tcast_tensor::{bce_with_logits, bce_with_logits_backward_into, Matrix};

/// Which embedding-backward implementation the trainer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackwardMode {
    /// Gradient expand → coalesce (Algorithm 1) → scatter.
    Baseline,
    /// Tensor Casting: pipeline-precomputed casted arrays + fused casted
    /// gather-reduce (Algorithms 2-3) → scatter.
    Casted,
}

/// Wall-clock time of each training phase, one mini-batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Embedding gather-reduce (forward).
    pub fwd_gather: Duration,
    /// Bottom MLP + interaction + top MLP (forward).
    pub fwd_dnn: Duration,
    /// Top/bottom MLP + interaction backward.
    pub bwd_dnn: Duration,
    /// Baseline: expand + coalesce. Casted: exposed wait for the casted
    /// arrays + the fused casted gather-reduce.
    pub bwd_embedding: Duration,
    /// Scatter / optimizer update of the tables.
    pub bwd_scatter: Duration,
}

impl std::ops::AddAssign for PhaseTimings {
    /// Phase-wise accumulation, so multi-step totals are summed in one
    /// place (`total += report.timings`) — a new phase field extends
    /// every accumulator at once.
    fn add_assign(&mut self, rhs: PhaseTimings) {
        self.fwd_gather += rhs.fwd_gather;
        self.fwd_dnn += rhs.fwd_dnn;
        self.bwd_dnn += rhs.bwd_dnn;
        self.bwd_embedding += rhs.bwd_embedding;
        self.bwd_scatter += rhs.bwd_scatter;
    }
}

impl PhaseTimings {
    /// Total measured time.
    pub fn total(&self) -> Duration {
        self.fwd_gather + self.fwd_dnn + self.bwd_dnn + self.bwd_embedding + self.bwd_scatter
    }

    /// Fraction of time in embedding backpropagation (the paper's 62-92%
    /// characterization).
    pub fn embedding_backward_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        (self.bwd_embedding + self.bwd_scatter).as_secs_f64() / total
    }
}

/// Result of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Mini-batch BCE loss.
    pub loss: f32,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// How long this step blocked waiting for its casted index arrays
    /// (a subset of `timings.bwd_embedding`). Always zero in baseline
    /// mode; zero in casted mode means this step's casting latency was
    /// fully hidden — the per-step Fig. 9b metric the cross-batch driver
    /// collapses by looking ahead.
    pub exposed_cast_wait: Duration,
}

/// Which optimizer updates the embedding tables.
///
/// Section II-B's point is that *all* of these need coalesced gradients;
/// the trainer keeps one optimizer instance per table so stateful
/// accumulators never alias across tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmbeddingOptimizer {
    /// Plain SGD (the default).
    Sgd,
    /// SGD with heavy-ball momentum.
    Momentum {
        /// Momentum coefficient.
        mu: f32,
    },
    /// Adagrad (the paper's Eq. 2).
    Adagrad {
        /// Stabilizer epsilon.
        eps: f32,
    },
    /// RMSprop (the paper's Eq. 1).
    RmsProp {
        /// Accumulator decay.
        gamma: f32,
        /// Stabilizer epsilon.
        eps: f32,
    },
    /// Adam with per-row bias-correction step counts.
    Adam {
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Stabilizer epsilon.
        eps: f32,
    },
}

impl EmbeddingOptimizer {
    pub(crate) fn build(&self, lr: f32) -> Box<dyn SplittableOptimizer> {
        match *self {
            EmbeddingOptimizer::Sgd => Box::new(Sgd::new(lr)),
            EmbeddingOptimizer::Momentum { mu } => Box::new(Momentum::new(lr, mu)),
            EmbeddingOptimizer::Adagrad { eps } => Box::new(Adagrad::new(lr, eps)),
            EmbeddingOptimizer::RmsProp { gamma, eps } => Box::new(RmsProp::new(lr, gamma, eps)),
            EmbeddingOptimizer::Adam { beta1, beta2, eps } => {
                Box::new(Adam::new(lr, beta1, beta2, eps))
            }
        }
    }
}

/// How the trainer's kernels execute.
///
/// Serial and pooled execution are **bit-identical** (every pooled kernel
/// preserves the serial per-output accumulation order), so this only
/// selects a schedule — determinism tests can run serial while
/// throughput runs pooled, and trajectories still match exactly.
#[derive(Clone, Default)]
pub enum Execution {
    /// Everything on the calling thread.
    #[default]
    Serial,
    /// Hot kernels split across the given persistent pool.
    Pooled(Arc<Pool>),
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Execution::Serial => write!(f, "Serial"),
            Execution::Pooled(pool) => write!(f, "Pooled({} threads)", pool.threads()),
        }
    }
}

/// Reusable per-step buffers: after the first step (which sizes them to
/// the batch's high-water mark) a steady-state training step performs no
/// heap allocation in the embedding/MLP hot path — every intermediate is
/// `zero_into`-recycled.
#[derive(Debug, Default)]
struct StepScratch {
    pooled: Vec<Matrix>,
    logits: Matrix,
    dlogits: Matrix,
    dpooled: Vec<Matrix>,
    coalesced: Vec<CoalescedScratch>,
    /// Baseline mode's per-table `n x D` expand intermediates — still
    /// materialized every step (that cost is the paper's subject), but
    /// recycled instead of re-allocated.
    expanded: Vec<Matrix>,
    /// Baseline mode's per-table coalesce outputs + argsort scratch.
    baseline: Vec<CoalesceScratch>,
}

/// A training step whose casting has been submitted but whose
/// forward/backward has not yet run: the handle returned by
/// [`Trainer::begin_step`] and consumed by [`Trainer::complete_step`].
///
/// Holds the batch alive (an `Arc` share, no copy) together with the
/// casting-pipeline ticket, so a driver can keep several of these in
/// flight — each one's casting job runs on the pipeline worker while
/// earlier steps train.
#[derive(Debug)]
pub struct InFlightStep {
    batch: Arc<CtrBatch>,
    ticket: Option<JobTicket>,
}

impl InFlightStep {
    /// The batch this step will train on.
    pub fn batch(&self) -> &Arc<CtrBatch> {
        &self.batch
    }

    /// Whether a casting job is in flight for this step (casted mode).
    pub fn has_casting_job(&self) -> bool {
        self.ticket.is_some()
    }
}

/// An instrumented DLRM trainer.
pub struct Trainer {
    model: Dlrm,
    mode: BackwardMode,
    lr: f32,
    pipeline: Option<CastingPipeline>,
    /// The optimizer configuration the per-table instances were built
    /// from — kept so [`Trainer::set_learning_rate`] can rebuild them
    /// with the user's hyperparameters intact.
    optimizer: EmbeddingOptimizer,
    /// One [`ShardedOptimizer`] per table: optimizer state placed by the
    /// model's shard maps (a single slab when unsharded).
    table_optimizers: Vec<ShardedOptimizer>,
    /// Per-table shard maps shipped with every casting job when sharded
    /// (`None` when every table has one shard: plain jobs, no routing).
    shard_plan: Option<Arc<[ShardMap]>>,
    /// `shard_offsets[t]..shard_offsets[t + 1]` indexes table `t`'s
    /// per-shard casted arrays / coalesced scratch slots. Tables can have
    /// *fewer* shards than requested (small tables), so this is a prefix
    /// sum, not `t * shards`.
    shard_offsets: Vec<usize>,
    steps: u64,
    execution: Execution,
    scratch: StepScratch,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("mode", &self.mode)
            .field("lr", &self.lr)
            .field("steps", &self.steps)
            .field(
                "optimizer",
                &self.table_optimizers.first().map(|o| o.name()),
            )
            .finish()
    }
}

impl Trainer {
    /// Builds a trainer over a fresh model.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: DlrmConfig, mode: BackwardMode, seed: u64) -> Result<Self, EmbeddingError> {
        Self::with_optimizer(config, mode, EmbeddingOptimizer::Sgd, seed)
    }

    /// Builds a trainer with an explicit embedding optimizer (serial
    /// execution).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_optimizer(
        config: DlrmConfig,
        mode: BackwardMode,
        optimizer: EmbeddingOptimizer,
        seed: u64,
    ) -> Result<Self, EmbeddingError> {
        Self::with_execution(config, mode, optimizer, Execution::Serial, seed)
    }

    /// Builds a trainer with an explicit embedding optimizer and
    /// execution mode. [`Execution::Pooled`] runs the hot kernels
    /// (gather-reduce, MLP GEMMs, casted gather-reduce, and the
    /// band-parallel optimizer scatter) on the given persistent pool;
    /// trajectories are bit-identical to serial.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_execution(
        config: DlrmConfig,
        mode: BackwardMode,
        optimizer: EmbeddingOptimizer,
        execution: Execution,
        seed: u64,
    ) -> Result<Self, EmbeddingError> {
        Self::with_sharding(
            config,
            mode,
            optimizer,
            execution,
            ShardSpec::default(),
            seed,
        )
    }

    /// [`Trainer::with_execution`] over a row-range sharded model: the
    /// tables stay single slabs, but optimizer state splits into
    /// per-shard slabs, the casting pipeline routes each job per shard,
    /// and the backward phases run shard-concurrent under
    /// [`Execution::Pooled`]. A 1-shard spec is today's layout exactly,
    /// and **every** spec trains bit-identically to it (weights and
    /// losses) — sharding is pure placement.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_sharding(
        config: DlrmConfig,
        mode: BackwardMode,
        optimizer: EmbeddingOptimizer,
        execution: Execution,
        shards: ShardSpec,
        seed: u64,
    ) -> Result<Self, EmbeddingError> {
        let lr = 0.05;
        let model = Dlrm::with_shards(config, seed, shards)?;
        let pipeline = match mode {
            BackwardMode::Casted => Some(CastingPipeline::new()),
            BackwardMode::Baseline => None,
        };
        let mut shard_offsets = Vec::with_capacity(model.num_tables() + 1);
        shard_offsets.push(0usize);
        for t in 0..model.num_tables() {
            shard_offsets.push(shard_offsets[t] + model.shard_map(t).num_shards());
        }
        let sharded = shard_offsets[model.num_tables()] > model.num_tables();
        let shard_plan: Option<Arc<[ShardMap]>> = sharded.then(|| {
            (0..model.num_tables())
                .map(|t| model.shard_map(t).clone())
                .collect::<Vec<_>>()
                .into()
        });
        let table_optimizers = (0..model.num_tables())
            .map(|t| ShardedOptimizer::new(model.shard_map(t).clone(), || optimizer.build(lr)))
            .collect();
        Ok(Self {
            model,
            mode,
            lr,
            pipeline,
            optimizer,
            table_optimizers,
            shard_plan,
            shard_offsets,
            steps: 0,
            execution,
            scratch: StepScratch::default(),
        })
    }

    /// Sets the (shared) learning rate. Defaults to 0.05.
    ///
    /// Rebuilds the per-table optimizer instances from the stored
    /// [`EmbeddingOptimizer`] configuration, so every user-supplied
    /// hyperparameter (epsilons, decays, betas) survives the rebuild.
    ///
    /// # Panics
    ///
    /// Panics if called after training started: stateful embedding
    /// optimizers bake the rate into their per-row state.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert_eq!(self.steps, 0, "set the learning rate before training");
        self.lr = lr;
        self.table_optimizers = (0..self.model.num_tables())
            .map(|t| {
                ShardedOptimizer::new(self.model.shard_map(t).clone(), || self.optimizer.build(lr))
            })
            .collect();
    }

    /// The backward mode in use.
    pub fn mode(&self) -> BackwardMode {
        self.mode
    }

    /// Snapshot of the casting pipeline's timing statistics (`None` in
    /// baseline mode, which has no pipeline). The exposed-wait /
    /// hidden-fraction numbers here are the paper's Fig. 9b metric for
    /// this trainer's whole run so far.
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.pipeline.as_ref().map(CastingPipeline::stats)
    }

    /// Replaces the casting pipeline with one bounded to `cap`
    /// uncompleted jobs: [`Trainer::begin_step`] then blocks (instead of
    /// queueing) once `cap` casting jobs are in flight. Casted mode only.
    ///
    /// # Panics
    ///
    /// Panics in baseline mode (no pipeline to bound), if training has
    /// already started (in-flight tickets would be lost), or if
    /// `cap == 0`.
    pub fn set_casting_inflight_cap(&mut self, cap: usize) {
        assert_eq!(self.steps, 0, "set the in-flight cap before training");
        assert!(
            self.pipeline.is_some(),
            "baseline mode has no casting pipeline"
        );
        self.pipeline = Some(CastingPipeline::with_inflight_cap(1, cap));
    }

    /// Immutable model access.
    pub fn model(&self) -> &Dlrm {
        &self.model
    }

    /// Mutable model access for checkpoint restore (crate-internal: the
    /// staged [`crate::checkpoint::TrainCheckpoint`] is the public door).
    pub(crate) fn model_mut(&mut self) -> &mut Dlrm {
        &mut self.model
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The shared learning rate in effect.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// The optimizer configuration the per-table instances were built
    /// from.
    pub fn optimizer_config(&self) -> EmbeddingOptimizer {
        self.optimizer
    }

    /// The per-table optimizer instances — the checkpoint save path
    /// reads each one's opaque state blob through
    /// [`ShardedOptimizer::save_state`], which is **canonical**
    /// (global-keyed) regardless of the shard count, so the `OPTM`
    /// section contract is byte-stable across sharding plans.
    pub fn table_optimizers(&self) -> &[ShardedOptimizer] {
        &self.table_optimizers
    }

    /// A fresh optimizer for table `t` — the shape the checkpoint restore
    /// path decodes saved state into (same map, same hyperparameters,
    /// empty slabs).
    pub(crate) fn fresh_table_optimizer(&self, t: usize) -> ShardedOptimizer {
        ShardedOptimizer::new(self.model.shard_map(t).clone(), || {
            self.optimizer.build(self.lr)
        })
    }

    /// Installs checkpoint-restored per-table optimizers and the saved
    /// step counter (the final, infallible stage of
    /// [`crate::checkpoint::TrainCheckpoint::restore_into`]).
    pub(crate) fn install_restored(&mut self, optimizers: Vec<ShardedOptimizer>, steps: u64) {
        self.table_optimizers = optimizers;
        self.steps = steps;
    }

    /// Runs one training step and reports loss + phase timings.
    ///
    /// In casted mode the index arrays are submitted to the casting
    /// pipeline *before* forward propagation begins, exactly as the
    /// Section IV-B runtime ships them to the GPU; the backward phase
    /// then blocks only on whatever casting latency was not hidden.
    ///
    /// This is exactly the depth-0 composition of
    /// [`Trainer::begin_step`] + [`Trainer::complete_step`]: casting can
    /// only overlap this batch's own forward pass. The
    /// [`crate::TrainLoop`] driver widens the overlap window across
    /// batches while producing a bit-identical trajectory.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies in the batch.
    pub fn step(&mut self, batch: &CtrBatch) -> Result<StepReport, EmbeddingError> {
        let ticket = self.submit_casting(&batch.indices);
        self.run_step(batch, ticket)
    }

    /// Begins a training step: submits the batch's index arrays to the
    /// casting pipeline (casted mode) and returns a handle holding the
    /// batch share + ticket. No model state is read or written — casting
    /// depends only on the indices, which is what makes beginning future
    /// steps ahead of completing the current one trajectory-preserving.
    ///
    /// If the pipeline's bounded in-flight cap is reached, this call
    /// blocks until the casting worker drains a job (backpressure), so a
    /// runaway lookahead cannot grow the casting queue without bound.
    ///
    /// The returned step must be completed by **this** trainer, in the
    /// order it was begun relative to other in-flight steps.
    pub fn begin_step(&mut self, batch: Arc<CtrBatch>) -> InFlightStep {
        let ticket = self.submit_casting(&batch.indices);
        InFlightStep { batch, ticket }
    }

    /// Completes a step begun with [`Trainer::begin_step`]: runs
    /// forward, backward and the optimizer scatter, blocking only on
    /// whatever casting latency was not hidden (reported per step in
    /// [`StepReport::exposed_cast_wait`]).
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies in the batch.
    pub fn complete_step(&mut self, step: InFlightStep) -> Result<StepReport, EmbeddingError> {
        let InFlightStep { batch, ticket } = step;
        self.run_step(&batch, ticket)
    }

    fn submit_casting(&mut self, indices: &Arc<[IndexArray]>) -> Option<JobTicket> {
        // The batch's index arrays are Arc-shared, so this is a refcount
        // bump, not a per-table deep clone. A sharded model additionally
        // ships its (Arc-shared) shard plan: the casting worker routes
        // each table's indices per shard before casting, so the casted
        // backward arrives pre-split per shard.
        let plan = &self.shard_plan;
        self.pipeline.as_mut().map(|p| match plan {
            Some(plan) => p.submit_sharded(Arc::clone(indices), Arc::clone(plan)),
            None => p.submit(Arc::clone(indices)),
        })
    }

    /// The forward/backward/scatter body shared by [`Trainer::step`] and
    /// [`Trainer::complete_step`].
    fn run_step(
        &mut self,
        batch: &CtrBatch,
        ticket: Option<JobTicket>,
    ) -> Result<StepReport, EmbeddingError> {
        let exec = match &self.execution {
            Execution::Serial => Exec::Serial,
            Execution::Pooled(pool) => Exec::pooled(pool.as_ref()),
        };

        // FWD (Gather).
        let t0 = Instant::now();
        self.model
            .embedding_forward_into(&batch.indices, &mut self.scratch.pooled, exec)?;
        let fwd_gather = t0.elapsed();

        // FWD (DNN) + loss.
        let t0 = Instant::now();
        self.model.dense_forward_into(
            &batch.dense,
            &self.scratch.pooled,
            &mut self.scratch.logits,
            exec,
        )?;
        let loss = bce_with_logits(&self.scratch.logits, &batch.labels)?;
        bce_with_logits_backward_into(
            &self.scratch.logits,
            &batch.labels,
            &mut self.scratch.dlogits,
        )?;
        let fwd_dnn = t0.elapsed();

        // BWD (DNN).
        let t0 = Instant::now();
        self.model
            .dense_backward_into(&self.scratch.dlogits, &mut self.scratch.dpooled, exec)?;
        self.model.apply_dense_update(self.lr);
        let bwd_dnn = t0.elapsed();

        // BWD (embedding): baseline expand-coalesce or casted gather-reduce.
        let t0 = Instant::now();
        let mut exposed_cast_wait = Duration::ZERO;
        match self.mode {
            BackwardMode::Baseline => {
                // The baseline deliberately pays Algorithm 1's full cost —
                // materialized n x D expand, sort, accumulate — each step,
                // but through recycled scratch: steady-state baseline
                // training no longer re-allocates the expand intermediate.
                let tables = batch.indices.len();
                self.scratch.expanded.resize_with(tables, Matrix::default);
                self.scratch
                    .baseline
                    .resize_with(tables, CoalesceScratch::default);
                for ((idx, grads), (expanded, coalesced)) in
                    batch.indices.iter().zip(self.scratch.dpooled.iter()).zip(
                        self.scratch
                            .expanded
                            .iter_mut()
                            .zip(self.scratch.baseline.iter_mut()),
                    )
                {
                    gradient_expand_into(grads, idx, expanded)?;
                    gradient_coalesce_into(expanded, idx, coalesced)?;
                }
            }
            BackwardMode::Casted => {
                let (casted, exposed) = self
                    .pipeline
                    .as_mut()
                    .expect("casted mode has a pipeline")
                    .collect_timed(ticket.expect("ticket issued"));
                exposed_cast_wait = exposed;
                // One casted array per (table, shard) pair, shard-major
                // within table (one per table when unsharded). Each
                // shard's gather-reduce reads the SAME upstream dpooled
                // matrix — routed dst ids stay global — and runs
                // independently of its siblings.
                assert_eq!(
                    casted.len(),
                    *self.shard_offsets.last().expect("offsets non-empty"),
                    "casting job shape disagrees with the shard plan"
                );
                self.scratch
                    .coalesced
                    .resize_with(casted.len(), CoalescedScratch::default);
                for t in 0..self.model.num_tables() {
                    let off = self.shard_offsets[t];
                    let n = self.shard_offsets[t + 1] - off;
                    let grads = &self.scratch.dpooled[t];
                    for s in 0..n {
                        casted_gather_reduce_into(
                            grads,
                            &casted[off + s],
                            &mut self.scratch.coalesced[off + s],
                            exec,
                        )?;
                    }
                }
            }
        }
        let bwd_embedding = t0.elapsed();

        // BWD (Scatter): sparse optimizer update per table. Coalesced
        // rows are unique, so under Execution::Pooled the scatter runs
        // concurrently over disjoint table slices + optimizer state —
        // row bands within the slab when unsharded, one task per shard
        // when sharded — bit-identical to the serial scatter either way.
        let t0 = Instant::now();
        match self.mode {
            BackwardMode::Baseline => {
                for (i, c) in self.scratch.baseline.iter().enumerate() {
                    scatter_apply_sharded(
                        self.model.table_mut(i),
                        &c.rows,
                        &c.grads,
                        &mut self.table_optimizers[i],
                        exec,
                    )?;
                }
            }
            BackwardMode::Casted => {
                // Sharded: each shard's coalesced rows are already
                // shard-local, so the scatter consumes them in place —
                // no global merge is ever materialized.
                let coalesced = &self.scratch.coalesced;
                for t in 0..self.model.num_tables() {
                    let off = self.shard_offsets[t];
                    scatter_apply_per_shard(
                        self.model.table_mut(t),
                        &mut self.table_optimizers[t],
                        |s| {
                            let c = &coalesced[off + s];
                            (c.rows.as_slice(), &c.grads)
                        },
                        exec,
                    )?;
                }
            }
        }
        let bwd_scatter = t0.elapsed();

        self.steps += 1;
        Ok(StepReport {
            loss,
            timings: PhaseTimings {
                fwd_gather,
                fwd_dnn,
                bwd_dnn,
                bwd_embedding,
                bwd_scatter,
            },
            exposed_cast_wait,
        })
    }

    /// Evaluates mean BCE loss on a batch without training.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies.
    pub fn evaluate(&self, batch: &CtrBatch) -> Result<f32, EmbeddingError> {
        let logits = self.model.predict(&batch.dense, &batch.indices)?;
        Ok(bce_with_logits(&logits, &batch.labels)?)
    }

    /// Evaluates CTR quality metrics (accuracy/AUC/log-loss) on a batch
    /// without training.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index inconsistencies.
    pub fn evaluate_metrics(&self, batch: &CtrBatch) -> Result<CtrMetrics, EmbeddingError> {
        let logits = self.model.predict(&batch.dense, &batch.indices)?;
        Ok(evaluate_ctr(&logits, &batch.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_datasets::SyntheticCtr;

    fn data(seed: u64) -> SyntheticCtr {
        let cfg = DlrmConfig::tiny();
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed)
    }

    #[test]
    fn one_step_produces_finite_loss_and_timings() {
        let mut t = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 1).unwrap();
        let r = t.step(&data(2).next_batch(32)).unwrap();
        assert!(r.loss.is_finite() && r.loss > 0.0);
        assert!(r.timings.total() > Duration::ZERO);
        assert_eq!(t.steps(), 1);
    }

    #[test]
    fn both_modes_produce_identical_trajectories() {
        // THE paper validation: Tensor Casting "does not change the
        // algorithmic nature of SGD training".
        let mut baseline = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 5).unwrap();
        let mut casted = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 5).unwrap();
        let mut stream_a = data(9);
        let mut stream_b = data(9);
        for step in 0..5 {
            let ra = baseline.step(&stream_a.next_batch(24)).unwrap();
            let rb = casted.step(&stream_b.next_batch(24)).unwrap();
            assert_eq!(ra.loss, rb.loss, "loss diverged at step {step}");
        }
        for i in 0..baseline.model().num_tables() {
            let diff = baseline
                .model()
                .table(i)
                .max_abs_diff(casted.model().table(i))
                .unwrap();
            assert_eq!(diff, 0.0, "table {i} diverged");
        }
    }

    #[test]
    fn training_reduces_loss_on_planted_data() {
        let mut t = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 11).unwrap();
        t.set_learning_rate(0.1);
        // Held-out batch from the SAME planted model as the training
        // stream (a different seed would be a different ground truth).
        let mut stream = data(13);
        let eval_batch = stream.next_batch(512);
        let before = t.evaluate(&eval_batch).unwrap();
        for _ in 0..60 {
            t.step(&stream.next_batch(64)).unwrap();
        }
        let after = t.evaluate(&eval_batch).unwrap();
        assert!(
            after < before - 0.02,
            "loss must improve: {before} -> {after}"
        );
    }

    #[test]
    fn pooled_execution_is_bit_identical_to_serial() {
        // The whole point of Execution: pooled kernels preserve the
        // serial accumulation order, so trajectories match EXACTLY.
        let pool = Arc::new(tcast_pool::Pool::new(4));
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            let mut serial = Trainer::new(DlrmConfig::tiny(), mode, 17).unwrap();
            let mut pooled = Trainer::with_execution(
                DlrmConfig::tiny(),
                mode,
                EmbeddingOptimizer::Sgd,
                Execution::Pooled(Arc::clone(&pool)),
                17,
            )
            .unwrap();
            let mut sa = data(21);
            let mut sb = data(21);
            for step in 0..4 {
                let ra = serial.step(&sa.next_batch(48)).unwrap();
                let rb = pooled.step(&sb.next_batch(48)).unwrap();
                assert_eq!(ra.loss, rb.loss, "{mode:?} loss diverged at step {step}");
            }
            for i in 0..serial.model().num_tables() {
                assert_eq!(
                    serial
                        .model()
                        .table(i)
                        .max_abs_diff(pooled.model().table(i))
                        .unwrap(),
                    0.0,
                    "{mode:?} table {i} diverged"
                );
            }
        }
    }

    #[test]
    fn phase_timings_accessors() {
        let timings = PhaseTimings {
            fwd_gather: Duration::from_millis(10),
            fwd_dnn: Duration::from_millis(5),
            bwd_dnn: Duration::from_millis(5),
            bwd_embedding: Duration::from_millis(50),
            bwd_scatter: Duration::from_millis(30),
        };
        assert_eq!(timings.total(), Duration::from_millis(100));
        assert!((timings.embedding_backward_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn set_learning_rate_preserves_optimizer_hyperparameters() {
        // Regression: set_learning_rate used to reverse-engineer the
        // optimizer kind from its name and rebuild with hard-coded
        // hyperparameters, silently replacing e.g. a user's eps. An eps
        // this large visibly changes the trajectory, so rebuilding with
        // the default 1e-8 would diverge from the untouched trainer.
        let opt = EmbeddingOptimizer::Adagrad { eps: 0.5 };
        let mk =
            || Trainer::with_optimizer(DlrmConfig::tiny(), BackwardMode::Baseline, opt, 7).unwrap();
        let mut untouched = mk();
        let mut rebuilt = mk();
        rebuilt.set_learning_rate(0.05); // the default rate: a pure rebuild
        let mut sa = data(51);
        let mut sb = data(51);
        for step in 0..3 {
            let ra = untouched.step(&sa.next_batch(16)).unwrap();
            let rb = rebuilt.step(&sb.next_batch(16)).unwrap();
            assert_eq!(ra.loss, rb.loss, "eps was lost in rebuild at step {step}");
        }
        for i in 0..untouched.model().num_tables() {
            assert_eq!(
                untouched
                    .model()
                    .table(i)
                    .max_abs_diff(rebuilt.model().table(i))
                    .unwrap(),
                0.0
            );
        }
    }

    #[test]
    fn every_optimizer_matches_across_modes_and_schedules() {
        // Momentum and Adam join the enum in this PR; all five must keep
        // baseline == casted AND serial == pooled (the pooled scatter
        // shards stateful optimizer state — a divergence would show here).
        let pool = Arc::new(tcast_pool::Pool::new(4));
        let optimizers = [
            EmbeddingOptimizer::Momentum { mu: 0.9 },
            EmbeddingOptimizer::Adam {
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ];
        for opt in optimizers {
            let mut serial_base =
                Trainer::with_optimizer(DlrmConfig::tiny(), BackwardMode::Baseline, opt, 23)
                    .unwrap();
            let mut pooled_cast = Trainer::with_execution(
                DlrmConfig::tiny(),
                BackwardMode::Casted,
                opt,
                Execution::Pooled(Arc::clone(&pool)),
                23,
            )
            .unwrap();
            let mut sa = data(29);
            let mut sb = data(29);
            for step in 0..4 {
                let ra = serial_base.step(&sa.next_batch(32)).unwrap();
                let rb = pooled_cast.step(&sb.next_batch(32)).unwrap();
                assert_eq!(ra.loss, rb.loss, "{opt:?} loss diverged at step {step}");
            }
            for i in 0..serial_base.model().num_tables() {
                assert_eq!(
                    serial_base
                        .model()
                        .table(i)
                        .max_abs_diff(pooled_cast.model().table(i))
                        .unwrap(),
                    0.0,
                    "{opt:?} table {i} diverged"
                );
            }
        }
    }

    #[test]
    fn adagrad_trajectories_also_match_across_modes() {
        // Stateful optimizers are WHY coalescing matters (Section II-B);
        // the casted path must preserve their trajectories too.
        let mk = |mode| {
            Trainer::with_optimizer(
                DlrmConfig::tiny(),
                mode,
                EmbeddingOptimizer::Adagrad { eps: 1e-8 },
                21,
            )
            .unwrap()
        };
        let mut base = mk(BackwardMode::Baseline);
        let mut cast = mk(BackwardMode::Casted);
        let mut sa = data(33);
        let mut sb = data(33);
        for _ in 0..4 {
            let ra = base.step(&sa.next_batch(16)).unwrap();
            let rb = cast.step(&sb.next_batch(16)).unwrap();
            assert_eq!(ra.loss, rb.loss);
        }
        for i in 0..base.model().num_tables() {
            assert_eq!(
                base.model()
                    .table(i)
                    .max_abs_diff(cast.model().table(i))
                    .unwrap(),
                0.0
            );
        }
    }

    #[test]
    fn sharded_training_is_bit_identical_to_unsharded() {
        // The headline sharding invariant at the trainer level: the shard
        // count changes placement and concurrency, never the trajectory.
        // (The exhaustive optimizer x mode x shard-count sweep lives in
        // tests/sharded_equivalence.rs.)
        let pool = Arc::new(tcast_pool::Pool::new(4));
        for mode in [BackwardMode::Baseline, BackwardMode::Casted] {
            let mut reference = Trainer::new(DlrmConfig::tiny(), mode, 31).unwrap();
            let mut sharded = Trainer::with_sharding(
                DlrmConfig::tiny(),
                mode,
                EmbeddingOptimizer::Sgd,
                Execution::Pooled(Arc::clone(&pool)),
                ShardSpec::new(3),
                31,
            )
            .unwrap();
            assert_eq!(sharded.model().shard_spec().shards(), 3);
            let mut sa = data(37);
            let mut sb = data(37);
            for step in 0..4 {
                let ra = reference.step(&sa.next_batch(32)).unwrap();
                let rb = sharded.step(&sb.next_batch(32)).unwrap();
                assert_eq!(ra.loss, rb.loss, "{mode:?} loss diverged at step {step}");
            }
            for i in 0..reference.model().num_tables() {
                assert_eq!(
                    reference
                        .model()
                        .table(i)
                        .max_abs_diff(sharded.model().table(i))
                        .unwrap(),
                    0.0,
                    "{mode:?} table {i} diverged"
                );
            }
        }
    }

    #[test]
    fn metrics_improve_with_training() {
        let mut t = Trainer::new(DlrmConfig::tiny(), BackwardMode::Casted, 2).unwrap();
        t.set_learning_rate(0.1);
        let mut stream = data(44);
        let eval = stream.next_batch(512);
        let before = t.evaluate_metrics(&eval).unwrap();
        for _ in 0..60 {
            t.step(&stream.next_batch(64)).unwrap();
        }
        let after = t.evaluate_metrics(&eval).unwrap();
        assert!(after.log_loss < before.log_loss);
        assert!(after.auc.unwrap() > before.auc.unwrap());
        assert!(after.auc.unwrap() > 0.55, "AUC {:?}", after.auc);
    }

    #[test]
    #[should_panic(expected = "before training")]
    fn learning_rate_locked_after_first_step() {
        let mut t = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 1).unwrap();
        t.step(&data(2).next_batch(8)).unwrap();
        t.set_learning_rate(0.2);
    }

    #[test]
    fn evaluate_does_not_train() {
        let t = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 3).unwrap();
        let batch = data(4).next_batch(16);
        let a = t.evaluate(&batch).unwrap();
        let b = t.evaluate(&batch).unwrap();
        assert_eq!(a, b);
    }
}

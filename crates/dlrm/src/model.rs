//! The DLRM model: Fig. 1's topology over this repository's kernels.

use crate::config::DlrmConfig;
use tcast_embedding::{
    gather_reduce, gather_reduce_into, EmbeddingError, EmbeddingTable, IndexArray, ShardMap,
    ShardSpec,
};
use tcast_pool::Exec;
use tcast_tensor::{Activation, FeatureInteraction, Matrix, Mlp, MlpInferenceScratch, ShapeError};

/// A DLRM model instance: bottom MLP, embedding tables, feature
/// interaction, top MLP.
///
/// `forward`/`backward` handle the dense parts and the embedding
/// *forward*; the embedding *backward* (the subject of the paper) is
/// orchestrated by the [`crate::Trainer`], which owns the choice between
/// the baseline and casted paths.
///
/// # Sharding
///
/// A [`ShardSpec`] splits every table's **rows** into contiguous range
/// shards (a [`ShardMap`] per table). The tables themselves stay single
/// slabs — sharding is a *placement plan* the trainer uses to split
/// optimizer state and run per-shard backward work concurrently — so the
/// forward pass, serving, and the `MODL` checkpoint section are untouched
/// by the shard count, and a 1-shard model is today's layout exactly.
#[derive(Debug)]
pub struct Dlrm {
    config: DlrmConfig,
    bottom: Mlp,
    top: Mlp,
    interaction: FeatureInteraction,
    tables: Vec<EmbeddingTable>,
    shard_spec: ShardSpec,
    maps: Vec<ShardMap>,
    scratch: DenseScratch,
}

/// Reusable intermediates of the dense step path; every buffer is
/// `zero_into`-recycled each step, so the steady-state dense forward and
/// backward allocate nothing.
#[derive(Debug, Default)]
struct DenseScratch {
    bottom_out: Matrix,
    interaction_out: Matrix,
    dz: Matrix,
    ddense: Matrix,
    dinput_sink: Matrix,
}

/// Caller-owned reusable buffers for the `&self` inference path
/// ([`Dlrm::predict_into`] / [`Dlrm::dense_infer_into`]).
///
/// Unlike the training scratch (which lives inside the model because
/// backward consumes cached forward state), inference touches no model
/// state at all — so the buffers live with the *caller*, and any number
/// of serving engines can score one shared frozen model, each through
/// its own scratch.
#[derive(Debug, Default)]
pub struct InferenceScratch {
    pooled: Vec<Matrix>,
    bottom_out: Matrix,
    interaction_out: Matrix,
    bottom_mlp: MlpInferenceScratch,
    top_mlp: MlpInferenceScratch,
}

impl InferenceScratch {
    /// The per-table pooled-embedding buffers [`Dlrm::dense_infer_into`]
    /// consumes. [`Dlrm::predict_into`] fills them via the plain
    /// gather-reduce; a serving engine writes them directly (e.g. through
    /// the casted forward fast path) before calling
    /// [`Dlrm::dense_infer_into`].
    pub fn pooled_mut(&mut self) -> &mut Vec<Matrix> {
        &mut self.pooled
    }
}

impl Dlrm {
    /// Builds a model with seeded initialization.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] when the configuration is
    /// inconsistent (see [`DlrmConfig::validate`]).
    pub fn new(config: DlrmConfig, seed: u64) -> Result<Self, EmbeddingError> {
        Self::with_shards(config, seed, ShardSpec::default())
    }

    /// [`Dlrm::new`] with a row-range sharding plan. `spec` requests the
    /// shard count per table; a table too small for the full count gets
    /// fewer (see [`ShardMap::new`]). Weights are seeded identically for
    /// every spec — sharding never changes the model.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidIndex`] when the configuration is
    /// inconsistent (see [`DlrmConfig::validate`]).
    pub fn with_shards(
        config: DlrmConfig,
        seed: u64,
        spec: ShardSpec,
    ) -> Result<Self, EmbeddingError> {
        config.validate().map_err(EmbeddingError::InvalidIndex)?;
        let bottom = Mlp::new(
            config.dense_features,
            &config.bottom_mlp,
            Activation::Relu,
            seed,
        )
        .map_err(EmbeddingError::from)?;
        let m = config.tables.len() + 1;
        let interaction_dim = match config.interaction {
            tcast_tensor::InteractionKind::Dot => config.embedding_dim + m * (m - 1) / 2,
            tcast_tensor::InteractionKind::Concat => config.embedding_dim * m,
        };
        let top = Mlp::new(
            interaction_dim,
            &config.top_mlp,
            Activation::Relu,
            seed ^ 0xA5A5,
        )
        .map_err(EmbeddingError::from)?;
        let tables = config
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                EmbeddingTable::seeded(t.rows, config.embedding_dim, seed.wrapping_add(i as u64))
            })
            .collect();
        let maps = config
            .tables
            .iter()
            .map(|t| ShardMap::new(t.rows, spec.shards()))
            .collect();
        Ok(Self {
            interaction: FeatureInteraction::new(config.interaction),
            config,
            bottom,
            top,
            tables,
            shard_spec: spec,
            maps,
            scratch: DenseScratch::default(),
        })
    }

    /// The sharding plan this model was built with.
    pub fn shard_spec(&self) -> ShardSpec {
        self.shard_spec
    }

    /// Table `i`'s row-range shard map.
    pub fn shard_map(&self, i: usize) -> &ShardMap {
        &self.maps[i]
    }

    /// The model configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Immutable access to an embedding table.
    pub fn table(&self, i: usize) -> &EmbeddingTable {
        &self.tables[i]
    }

    /// Mutable access to an embedding table (used by the trainer's
    /// scatter phase).
    pub fn table_mut(&mut self, i: usize) -> &mut EmbeddingTable {
        &mut self.tables[i]
    }

    /// Number of embedding tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Immutable access to the bottom MLP.
    pub fn bottom(&self) -> &Mlp {
        &self.bottom
    }

    /// Mutable access to the bottom MLP (checkpoint restore).
    pub fn bottom_mut(&mut self) -> &mut Mlp {
        &mut self.bottom
    }

    /// Immutable access to the top MLP.
    pub fn top(&self) -> &Mlp {
        &self.top
    }

    /// Mutable access to the top MLP (checkpoint restore).
    pub fn top_mut(&mut self) -> &mut Mlp {
        &mut self.top
    }

    /// Copies every trainable weight of `src` into this model **in
    /// place**: both MLPs' parameters and all embedding-table slabs, with
    /// zero allocation. This is the slab-copy half of epoch-versioned
    /// snapshot publication (`tcast-snapshot`): the trainer's live model
    /// is captured into a recycled buffer model between steps, so serving
    /// engines can read a frozen copy while training mutates the
    /// original. Scratch, cached activations and shard plans are *not*
    /// copied — the receiving model keeps its own (weights fully
    /// determine inference, and sharding is placement, not state).
    ///
    /// # Panics
    ///
    /// Panics if the models disagree on architecture (table count/shape,
    /// MLP depth or layer shapes).
    pub fn copy_weights_from(&mut self, src: &Dlrm) {
        self.bottom.copy_parameters_from(&src.bottom);
        self.top.copy_parameters_from(&src.top);
        assert_eq!(self.tables.len(), src.tables.len(), "table count mismatch");
        for (dst, src) in self.tables.iter_mut().zip(src.tables.iter()) {
            assert_eq!(
                (dst.rows(), dst.dim()),
                (src.rows(), src.dim()),
                "table shape mismatch"
            );
            dst.as_mut_slice().copy_from_slice(src.as_slice());
        }
    }

    /// Total trainable parameters (MLPs + embeddings).
    pub fn parameter_count(&self) -> usize {
        self.bottom.parameter_count()
            + self.top.parameter_count()
            + self.config.embedding_parameters()
    }

    /// Embedding forward: per-table fused gather-reduce.
    ///
    /// # Errors
    ///
    /// Returns an error if index arrays are out of range or their count
    /// differs from the table count.
    pub fn embedding_forward(&self, indices: &[IndexArray]) -> Result<Vec<Matrix>, EmbeddingError> {
        if indices.len() != self.tables.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: self.tables.len(),
                found: indices.len(),
            });
        }
        self.tables
            .iter()
            .zip(indices.iter())
            .map(|(t, idx)| gather_reduce(t, idx))
            .collect()
    }

    /// [`Dlrm::embedding_forward`] writing into per-table reused buffers
    /// (`pooled` is resized to the table count), serially or on a pool.
    ///
    /// # Errors
    ///
    /// Returns an error if index arrays are out of range or their count
    /// differs from the table count.
    pub fn embedding_forward_into(
        &self,
        indices: &[IndexArray],
        pooled: &mut Vec<Matrix>,
        exec: Exec<'_>,
    ) -> Result<(), EmbeddingError> {
        if indices.len() != self.tables.len() {
            return Err(EmbeddingError::LengthMismatch {
                expected: self.tables.len(),
                found: indices.len(),
            });
        }
        pooled.resize_with(self.tables.len(), Matrix::default);
        for ((table, idx), out) in self
            .tables
            .iter()
            .zip(indices.iter())
            .zip(pooled.iter_mut())
        {
            gather_reduce_into(table, idx, out, exec)?;
        }
        Ok(())
    }

    /// [`Dlrm::dense_forward`] writing the logits into a reused buffer —
    /// the zero-allocation steady-state form. Bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on dimension mismatches.
    pub fn dense_forward_into(
        &mut self,
        dense: &Matrix,
        pooled: &[Matrix],
        logits: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let Self {
            bottom,
            top,
            interaction,
            scratch,
            ..
        } = self;
        bottom.forward_into(dense, &mut scratch.bottom_out, exec)?;
        interaction.forward_into(&scratch.bottom_out, pooled, &mut scratch.interaction_out)?;
        top.forward_into(&scratch.interaction_out, logits, exec)
    }

    /// [`Dlrm::dense_backward`] writing the per-table pooled-embedding
    /// gradients into reused buffers. Bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no step forward preceded this call.
    pub fn dense_backward_into(
        &mut self,
        dlogits: &Matrix,
        dpooled: &mut Vec<Matrix>,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let Self {
            bottom,
            top,
            interaction,
            scratch,
            ..
        } = self;
        top.backward_into(dlogits, &mut scratch.dz, exec)?;
        interaction.backward_into(&scratch.dz, &mut scratch.ddense, dpooled)?;
        bottom.backward_into(&scratch.ddense, &mut scratch.dinput_sink, exec)
    }

    /// Dense forward: bottom MLP, interaction, top MLP; returns logits.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on dimension mismatches.
    pub fn dense_forward(
        &mut self,
        dense: &Matrix,
        pooled: &[Matrix],
    ) -> Result<Matrix, ShapeError> {
        let bottom_out = self.bottom.forward(dense)?;
        let z = self.interaction.forward(&bottom_out, pooled)?;
        self.top.forward(&z)
    }

    /// Dense backward: from `d(logits)` to the gradient of each pooled
    /// embedding (the tensors the embedding backward consumes), leaving
    /// MLP gradients cached inside the layers.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if no forward pass preceded this call.
    pub fn dense_backward(&mut self, dlogits: &Matrix) -> Result<Vec<Matrix>, ShapeError> {
        let dz = self.top.backward(dlogits)?;
        let (ddense, dpooled) = self.interaction.backward(&dz)?;
        self.bottom.backward(&ddense)?;
        Ok(dpooled)
    }

    /// Applies cached MLP gradients with SGD.
    pub fn apply_dense_update(&mut self, lr: f32) {
        self.bottom.apply_update(lr);
        self.top.apply_update(lr);
    }

    /// Inference: logits for a batch (no caching).
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    pub fn predict(
        &self,
        dense: &Matrix,
        indices: &[IndexArray],
    ) -> Result<Matrix, EmbeddingError> {
        let mut scratch = InferenceScratch::default();
        let mut logits = Matrix::default();
        self.predict_into(dense, indices, &mut scratch, &mut logits, Exec::Serial)?;
        Ok(logits)
    }

    /// [`Dlrm::predict`] through caller-owned scratch: the
    /// zero-allocation `&self` serving form. Embedding pooling runs the
    /// plain per-table gather-reduce; the dense stack runs
    /// [`Dlrm::dense_infer_into`]. Bit-identical to [`Dlrm::predict`] in
    /// both [`Exec`] modes.
    ///
    /// # Errors
    ///
    /// Returns an error on shape/index mismatches.
    pub fn predict_into(
        &self,
        dense: &Matrix,
        indices: &[IndexArray],
        scratch: &mut InferenceScratch,
        logits: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), EmbeddingError> {
        self.embedding_forward_into(indices, &mut scratch.pooled, exec)?;
        self.dense_infer_into(dense, scratch, logits, exec)
            .map_err(EmbeddingError::from)
    }

    /// The dense half of inference — bottom MLP, interaction, top MLP —
    /// over pooled embeddings already written into `scratch`'s
    /// [`InferenceScratch::pooled_mut`] buffers (one `batch x dim` matrix
    /// per table). `&self`: no model state is read back or written, so a
    /// frozen model can serve many engines concurrently. Bit-identical to
    /// the training forward pass.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] on dimension mismatches (including
    /// pooled buffers that disagree with the batch).
    pub fn dense_infer_into(
        &self,
        dense: &Matrix,
        scratch: &mut InferenceScratch,
        logits: &mut Matrix,
        exec: Exec<'_>,
    ) -> Result<(), ShapeError> {
        let InferenceScratch {
            pooled,
            bottom_out,
            interaction_out,
            bottom_mlp,
            top_mlp,
        } = scratch;
        self.bottom
            .forward_inference_into(dense, bottom_mlp, bottom_out, exec)?;
        self.interaction
            .forward_inference_into(bottom_out, pooled, interaction_out)?;
        self.top
            .forward_inference_into(interaction_out, top_mlp, logits, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcast_datasets::SyntheticCtr;

    fn model() -> Dlrm {
        Dlrm::new(DlrmConfig::tiny(), 7).unwrap()
    }

    fn batch(n: usize) -> tcast_datasets::CtrBatch {
        let cfg = DlrmConfig::tiny();
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 3).next_batch(n)
    }

    #[test]
    fn construction_validates_config() {
        let mut bad = DlrmConfig::tiny();
        bad.embedding_dim = 5;
        assert!(Dlrm::new(bad, 0).is_err());
    }

    #[test]
    fn forward_shapes() {
        let mut m = model();
        let b = batch(16);
        let pooled = m.embedding_forward(&b.indices).unwrap();
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0].shape(), (16, 16));
        let logits = m.dense_forward(&b.dense, &pooled).unwrap();
        assert_eq!(logits.shape(), (16, 1));
    }

    #[test]
    fn backward_produces_per_table_gradients() {
        let mut m = model();
        let b = batch(8);
        let pooled = m.embedding_forward(&b.indices).unwrap();
        let logits = m.dense_forward(&b.dense, &pooled).unwrap();
        let dlogits = Matrix::filled(8, 1, 0.1);
        let _ = logits;
        let dpooled = m.dense_backward(&dlogits).unwrap();
        assert_eq!(dpooled.len(), 2);
        assert_eq!(dpooled[0].shape(), (8, 16));
        // Gradients should not be all-zero.
        assert!(dpooled[0].frobenius_norm() > 0.0);
    }

    #[test]
    fn wrong_index_count_rejected() {
        let m = model();
        let b = batch(4);
        assert!(m.embedding_forward(&b.indices[..1]).is_err());
    }

    #[test]
    fn predict_matches_training_forward() {
        let mut m = model();
        let b = batch(4);
        let pooled = m.embedding_forward(&b.indices).unwrap();
        let train_logits = m.dense_forward(&b.dense, &pooled).unwrap();
        let infer_logits = m.predict(&b.dense, &b.indices).unwrap();
        assert!(train_logits.max_abs_diff(&infer_logits).unwrap() < 1e-6);
    }

    #[test]
    fn predict_into_is_bit_identical_to_predict() {
        let m = model();
        let b = batch(12);
        let alloc = m.predict(&b.dense, &b.indices).unwrap();
        let mut scratch = InferenceScratch::default();
        let mut logits = Matrix::default();
        // Twice: the second pass runs through recycled buffers.
        for _ in 0..2 {
            m.predict_into(
                &b.dense,
                &b.indices,
                &mut scratch,
                &mut logits,
                Exec::Serial,
            )
            .unwrap();
            assert_eq!(logits.as_slice(), alloc.as_slice());
        }
    }

    #[test]
    fn predict_into_matches_training_forward_bit_exactly() {
        // The serving path and the training forward share every kernel
        // (same GEMM, same interaction op order), so their logits are
        // bit-identical — the foundation of the checkpoint -> serve
        // equivalence test.
        let mut m = model();
        let b = batch(8);
        let pooled = m.embedding_forward(&b.indices).unwrap();
        let train = m.dense_forward(&b.dense, &pooled).unwrap();
        let infer = m.predict(&b.dense, &b.indices).unwrap();
        assert_eq!(train.as_slice(), infer.as_slice());
    }

    #[test]
    fn parameter_count_is_consistent() {
        let m = model();
        assert!(m.parameter_count() > m.config().embedding_parameters());
    }

    #[test]
    fn seeded_models_are_identical() {
        let a = Dlrm::new(DlrmConfig::tiny(), 9).unwrap();
        let b = Dlrm::new(DlrmConfig::tiny(), 9).unwrap();
        assert_eq!(a.table(0).max_abs_diff(b.table(0)).unwrap(), 0.0);
    }
}

//! Crash-safe checkpointing: save and restore *full training state* —
//! model parameters, per-table optimizer slabs, the trainer's step
//! counter, the batch source's stream position and the depth
//! controller — in a self-describing, CRC-checksummed binary format.
//!
//! Production recommendation training checkpoints constantly (the
//! embedding tables *are* the model, and they are expensive to
//! retrain); this module provides exact-resume capability without
//! external serialization dependencies. Format (version 2):
//!
//! ```text
//! magic   "TCKP"   4 bytes
//! version u32      (currently 2)
//! then sections until end-of-file, each:
//!   tag      4 bytes      ("MODL", "OPTM", "TRNR", "SRC0", "DCTL")
//!   length   u64          payload bytes
//!   crc      u32          CRC-32 (IEEE) of the payload
//!   payload  length bytes
//! ```
//!
//! `MODL` (model parameters) is always present; a *training* checkpoint
//! adds `OPTM` (optimizer state) and `TRNR` (step counter, learning
//! rate, backward mode), and optionally `SRC0` (batch-source resume
//! state) and `DCTL` (depth-controller snapshot). Everything is
//! little-endian.
//!
//! Loading is staged: the entire file is parsed and checksum-verified
//! into a [`TrainCheckpoint`] *before* any model or trainer state is
//! written, and shape validation runs ahead of mutation — so a failed
//! load of any kind leaves the receiving model byte-identical to what
//! it was. Trailing bytes after the last section, unknown or duplicate
//! section tags, checksum mismatches and truncations all fail cleanly,
//! and every [`CheckpointError::Format`] names the section at fault.
//!
//! [`CheckpointStore`] adds the durability protocol: write to a
//! temporary file, fsync, atomically rename into a versioned
//! `ckpt-<steps>.tckp` name, fsync the directory, prune old versions —
//! so a crash at any instant leaves either the old checkpoint set or
//! the new one, never a half-written file under a valid name.

use crate::driver::DepthControllerState;
use crate::model::Dlrm;
use crate::trainer::{BackwardMode, Trainer};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use tcast_core::{FaultPlan, FaultyWrite};
use tcast_datasets::SourceState;

const MAGIC: &[u8; 4] = b"TCKP";
const VERSION: u32 = 2;

const TAG_MODEL: [u8; 4] = *b"MODL";
const TAG_OPTIM: [u8; 4] = *b"OPTM";
const TAG_TRAINER: [u8; 4] = *b"TRNR";
const TAG_SOURCE: [u8; 4] = *b"SRC0";
const TAG_CONTROLLER: [u8; 4] = *b"DCTL";

/// Errors from writing or reading checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic/version/truncation/checksum; the message names the
    /// failing section.
    Format(String),
    /// Shape or configuration mismatch against the receiving model or
    /// trainer.
    Shape(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Shape(m) => write!(f, "checkpoint shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

// ---------------------------------------------------------------- CRC-32

const fn crc_table() -> [u32; 256] {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ------------------------------------------------------- payload cursor

/// Bounds-checked little-endian reader over one section's payload;
/// every error names the section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self {
            bytes,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CheckpointError::Format(format!(
                "{}: truncated payload (need {} bytes at offset {}, have {})",
                self.section,
                n,
                self.pos,
                self.bytes.len() - self.pos
            )));
        };
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let bytes = n.checked_mul(4).ok_or_else(|| {
            CheckpointError::Format(format!("{}: element count overflows", self.section))
        })?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Format(format!(
                "{}: {} trailing bytes in section",
                self.section,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ------------------------------------------------------- staged parsing

#[derive(Debug)]
struct LayerSection {
    in_dim: usize,
    out_dim: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

#[derive(Debug)]
struct TableSection {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

#[derive(Debug)]
struct ModelSection {
    bottom: Vec<LayerSection>,
    top: Vec<LayerSection>,
    tables: Vec<TableSection>,
}

#[derive(Debug)]
struct OptimSection {
    name: String,
    tables: Vec<Vec<u8>>,
}

#[derive(Debug)]
struct TrainerSection {
    steps: u64,
    lr: f32,
    mode: BackwardMode,
}

/// A fully parsed, checksum-verified checkpoint, staged in memory and
/// not yet applied to anything.
///
/// Produced by [`read_train_checkpoint`]; consumed by
/// [`TrainCheckpoint::apply_model`] (parameters only) or
/// [`TrainCheckpoint::restore_into`] (full training state). Staging is
/// what makes loading all-or-nothing: every parse/checksum failure
/// happens before the receiving model is touched, and shape validation
/// runs ahead of mutation.
#[derive(Debug)]
pub struct TrainCheckpoint {
    model: ModelSection,
    optim: Option<OptimSection>,
    trainer: Option<TrainerSection>,
    source: Option<SourceState>,
    controller: Option<DepthControllerState>,
}

impl TrainCheckpoint {
    /// The trainer step count recorded in the checkpoint (`None` for a
    /// model-only checkpoint).
    pub fn steps(&self) -> Option<u64> {
        self.trainer.as_ref().map(|t| t.steps)
    }

    /// The backward mode the checkpoint was taken under (informational:
    /// both modes train bit-identically, so a checkpoint taken under one
    /// resumes under the other).
    pub fn mode(&self) -> Option<BackwardMode> {
        self.trainer.as_ref().map(|t| t.mode)
    }

    /// The batch source's resume state, if one was recorded.
    pub fn source_state(&self) -> Option<SourceState> {
        self.source
    }

    /// The depth controller snapshot, if one was recorded.
    pub fn controller_state(&self) -> Option<DepthControllerState> {
        self.controller
    }

    /// Restores model parameters only, leaving `model` untouched on any
    /// failure (all shapes are validated before the first write).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Shape`] when the checkpoint does not
    /// match the model architecture.
    pub fn apply_model(&self, model: &mut Dlrm) -> Result<(), CheckpointError> {
        self.validate_model(model)?;
        let apply_mlp =
            |mlp: &mut tcast_tensor::Mlp, layers: &[LayerSection]| -> Result<(), CheckpointError> {
                for (layer, saved) in mlp.layers_mut().iter_mut().zip(layers) {
                    let weight = tcast_tensor::Matrix::from_vec(
                        saved.in_dim,
                        saved.out_dim,
                        saved.weights.clone(),
                    )
                    .map_err(|e| CheckpointError::Shape(e.to_string()))?;
                    layer
                        .set_parameters(weight, saved.bias.clone())
                        .map_err(|e| CheckpointError::Shape(e.to_string()))?;
                }
                Ok(())
            };
        apply_mlp(model.bottom_mut(), &self.model.bottom)?;
        apply_mlp(model.top_mut(), &self.model.top)?;
        for (i, saved) in self.model.tables.iter().enumerate() {
            model
                .table_mut(i)
                .as_mut_slice()
                .copy_from_slice(&saved.data);
        }
        Ok(())
    }

    /// Restores *full* training state into `trainer`: model parameters,
    /// per-table optimizer slabs and the step counter. The trainer is
    /// untouched on any failure — optimizer payloads are decoded into
    /// fresh instances and every shape is validated before the first
    /// mutation.
    ///
    /// The receiving trainer must be freshly built with the same
    /// architecture, optimizer configuration and learning rate as the
    /// one that saved the checkpoint (the backward mode and execution
    /// schedule may differ: both are bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] if the checkpoint is
    /// model-only or an optimizer payload is malformed, and
    /// [`CheckpointError::Shape`] on architecture/optimizer/learning
    /// rate mismatches.
    pub fn restore_into(&self, trainer: &mut Trainer) -> Result<(), CheckpointError> {
        let optim = self.optim.as_ref().ok_or_else(|| {
            CheckpointError::Format("missing OPTM section (model-only checkpoint)".into())
        })?;
        let tr = self.trainer.as_ref().ok_or_else(|| {
            CheckpointError::Format("missing TRNR section (model-only checkpoint)".into())
        })?;
        let name = trainer.table_optimizers().first().map_or("", |o| o.name());
        if optim.name != name {
            return Err(CheckpointError::Shape(format!(
                "checkpoint optimizer {:?}, trainer {name:?}",
                optim.name
            )));
        }
        if optim.tables.len() != trainer.model().num_tables() {
            return Err(CheckpointError::Shape(format!(
                "OPTM: checkpoint has {} optimizer states, model has {} tables",
                optim.tables.len(),
                trainer.model().num_tables()
            )));
        }
        if tr.lr.to_bits() != trainer.learning_rate().to_bits() {
            return Err(CheckpointError::Shape(format!(
                "checkpoint learning rate {}, trainer {}",
                tr.lr,
                trainer.learning_rate()
            )));
        }
        // Decode optimizer payloads into fresh instances first: no
        // trainer state is touched until every section has applied
        // cleanly in staging.
        let mut restored = Vec::with_capacity(optim.tables.len());
        for (i, payload) in optim.tables.iter().enumerate() {
            // The payload is the canonical global-keyed blob regardless
            // of the saving trainer's shard count; the fresh optimizer
            // re-splits it by the RECEIVING model's shard maps, so a
            // checkpoint written at N shards restores at M shards.
            let mut opt = trainer.fresh_table_optimizer(i);
            opt.load_state(payload)
                .map_err(|e| CheckpointError::Format(format!("OPTM: table {i}: {e}")))?;
            restored.push(opt);
        }
        self.apply_model(trainer.model_mut())?;
        trainer.install_restored(restored, tr.steps);
        Ok(())
    }

    fn validate_model(&self, model: &Dlrm) -> Result<(), CheckpointError> {
        for (mlp, layers, which) in [
            (model.bottom(), &self.model.bottom, "bottom"),
            (model.top(), &self.model.top, "top"),
        ] {
            if mlp.depth() != layers.len() {
                return Err(CheckpointError::Shape(format!(
                    "checkpoint {which} MLP depth {}, model {}",
                    layers.len(),
                    mlp.depth()
                )));
            }
            for (layer, saved) in mlp.layers().iter().zip(layers) {
                if layer.in_dim() != saved.in_dim || layer.out_dim() != saved.out_dim {
                    return Err(CheckpointError::Shape(format!(
                        "checkpoint {which} layer {}x{}, model {}x{}",
                        saved.in_dim,
                        saved.out_dim,
                        layer.in_dim(),
                        layer.out_dim()
                    )));
                }
            }
        }
        if self.model.tables.len() != model.num_tables() {
            return Err(CheckpointError::Shape(format!(
                "checkpoint has {} tables, model has {}",
                self.model.tables.len(),
                model.num_tables()
            )));
        }
        for (i, saved) in self.model.tables.iter().enumerate() {
            let t = model.table(i);
            if saved.rows != t.rows() || saved.dim != t.dim() {
                return Err(CheckpointError::Shape(format!(
                    "table {i}: checkpoint {}x{}, model {}x{}",
                    saved.rows,
                    saved.dim,
                    t.rows(),
                    t.dim()
                )));
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------- saving

fn write_section(w: &mut impl Write, tag: [u8; 4], payload: &[u8]) -> Result<(), CheckpointError> {
    w.write_all(&tag)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

fn model_payload(model: &Dlrm) -> Vec<u8> {
    let mut out = Vec::new();
    for mlp in [model.bottom(), model.top()] {
        put_u32(&mut out, mlp.depth() as u32);
        for layer in mlp.layers() {
            put_u32(&mut out, layer.in_dim() as u32);
            put_u32(&mut out, layer.out_dim() as u32);
            put_f32s(&mut out, layer.weight().as_slice());
            put_f32s(&mut out, layer.bias());
        }
    }
    put_u32(&mut out, model.num_tables() as u32);
    for i in 0..model.num_tables() {
        let t = model.table(i);
        put_u32(&mut out, t.rows() as u32);
        put_u32(&mut out, t.dim() as u32);
        put_f32s(&mut out, t.as_slice());
    }
    out
}

fn optim_payload(trainer: &Trainer) -> Vec<u8> {
    let mut out = Vec::new();
    let optimizers = trainer.table_optimizers();
    let name = optimizers.first().map_or("", |o| o.name());
    put_u32(&mut out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
    put_u32(&mut out, optimizers.len() as u32);
    let mut state = Vec::new();
    for opt in optimizers {
        state.clear();
        opt.save_state(&mut state);
        put_u64(&mut out, state.len() as u64);
        out.extend_from_slice(&state);
    }
    out
}

fn trainer_payload(trainer: &Trainer) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, trainer.steps());
    out.extend_from_slice(&trainer.learning_rate().to_le_bytes());
    out.push(match trainer.mode() {
        BackwardMode::Baseline => 0,
        BackwardMode::Casted => 1,
    });
    out
}

fn source_payload(state: &SourceState) -> Vec<u8> {
    let mut out = Vec::new();
    match *state {
        SourceState::Synthetic { rng_state, batches } => {
            out.push(0);
            put_u64(&mut out, rng_state);
            put_u64(&mut out, batches);
        }
        SourceState::TraceReplay { cursor, rng_state } => {
            out.push(1);
            put_u64(&mut out, cursor);
            put_u64(&mut out, rng_state);
        }
    }
    out
}

fn controller_payload(state: &DepthControllerState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, state.depth as u64);
    put_u64(&mut out, state.window_wait_ns);
    put_u64(&mut out, state.window_steps as u64);
    put_u64(&mut out, state.hidden_streak as u64);
    put_u64(&mut out, state.floor as u64);
    put_u64(&mut out, state.floor_streak as u64);
    out.push(u8::from(state.trialing));
    out
}

/// Serializes model parameters only (a `MODL`-section checkpoint) — the
/// inference/serving checkpoint form.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_checkpoint(w: &mut impl Write, model: &Dlrm) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_section(w, TAG_MODEL, &model_payload(model))
}

/// Serializes *full* training state: model parameters, per-table
/// optimizer slabs, the trainer's step counter, and (optionally) the
/// batch source's resume state and the depth controller snapshot.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_train_checkpoint(
    w: &mut impl Write,
    trainer: &Trainer,
    source: Option<&SourceState>,
    controller: Option<&DepthControllerState>,
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_section(w, TAG_MODEL, &model_payload(trainer.model()))?;
    write_section(w, TAG_OPTIM, &optim_payload(trainer))?;
    write_section(w, TAG_TRAINER, &trainer_payload(trainer))?;
    if let Some(state) = source {
        write_section(w, TAG_SOURCE, &source_payload(state))?;
    }
    if let Some(state) = controller {
        write_section(w, TAG_CONTROLLER, &controller_payload(state))?;
    }
    Ok(())
}

// -------------------------------------------------------------- loading

fn parse_mlp(c: &mut Cursor<'_>) -> Result<Vec<LayerSection>, CheckpointError> {
    let depth = c.u32()? as usize;
    if depth > 1024 {
        return Err(CheckpointError::Format(format!(
            "MODL: implausible MLP depth {depth}"
        )));
    }
    let mut layers = Vec::with_capacity(depth);
    for _ in 0..depth {
        let in_dim = c.u32()? as usize;
        let out_dim = c.u32()? as usize;
        let elems = in_dim
            .checked_mul(out_dim)
            .ok_or_else(|| CheckpointError::Format("MODL: layer size overflows".into()))?;
        let weights = c.f32s(elems)?;
        let bias = c.f32s(out_dim)?;
        layers.push(LayerSection {
            in_dim,
            out_dim,
            weights,
            bias,
        });
    }
    Ok(layers)
}

fn parse_model(payload: &[u8]) -> Result<ModelSection, CheckpointError> {
    let mut c = Cursor::new(payload, "MODL");
    let bottom = parse_mlp(&mut c)?;
    let top = parse_mlp(&mut c)?;
    let count = c.u32()? as usize;
    let mut tables = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let rows = c.u32()? as usize;
        let dim = c.u32()? as usize;
        let elems = rows
            .checked_mul(dim)
            .ok_or_else(|| CheckpointError::Format("MODL: table size overflows".into()))?;
        let data = c.f32s(elems)?;
        tables.push(TableSection { rows, dim, data });
    }
    c.finish()?;
    Ok(ModelSection {
        bottom,
        top,
        tables,
    })
}

fn parse_optim(payload: &[u8]) -> Result<OptimSection, CheckpointError> {
    let mut c = Cursor::new(payload, "OPTM");
    let name_len = c.u32()? as usize;
    let name = String::from_utf8(c.take(name_len)?.to_vec())
        .map_err(|_| CheckpointError::Format("OPTM: optimizer name is not UTF-8".into()))?;
    let count = c.u32()? as usize;
    let mut tables = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let len = c.u64()?;
        let len = usize::try_from(len)
            .map_err(|_| CheckpointError::Format("OPTM: state length overflows".into()))?;
        tables.push(c.take(len)?.to_vec());
    }
    c.finish()?;
    Ok(OptimSection { name, tables })
}

fn parse_trainer(payload: &[u8]) -> Result<TrainerSection, CheckpointError> {
    let mut c = Cursor::new(payload, "TRNR");
    let steps = c.u64()?;
    let lr = c.f32()?;
    let mode = match c.u8()? {
        0 => BackwardMode::Baseline,
        1 => BackwardMode::Casted,
        other => {
            return Err(CheckpointError::Format(format!(
                "TRNR: unknown backward mode {other}"
            )))
        }
    };
    c.finish()?;
    Ok(TrainerSection { steps, lr, mode })
}

fn parse_source(payload: &[u8]) -> Result<SourceState, CheckpointError> {
    let mut c = Cursor::new(payload, "SRC0");
    let state = match c.u8()? {
        0 => SourceState::Synthetic {
            rng_state: c.u64()?,
            batches: c.u64()?,
        },
        1 => SourceState::TraceReplay {
            cursor: c.u64()?,
            rng_state: c.u64()?,
        },
        other => {
            return Err(CheckpointError::Format(format!(
                "SRC0: unknown source variant {other}"
            )))
        }
    };
    c.finish()?;
    Ok(state)
}

fn parse_controller(payload: &[u8]) -> Result<DepthControllerState, CheckpointError> {
    let mut c = Cursor::new(payload, "DCTL");
    let state = DepthControllerState {
        depth: c.u64()? as usize,
        window_wait_ns: c.u64()?,
        window_steps: c.u64()? as usize,
        hidden_streak: c.u64()? as usize,
        floor: c.u64()? as usize,
        floor_streak: c.u64()? as usize,
        trialing: match c.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(CheckpointError::Format(format!(
                    "DCTL: invalid trialing flag {other}"
                )))
            }
        },
    };
    c.finish()?;
    Ok(state)
}

fn tag_name(tag: &[u8; 4]) -> String {
    match std::str::from_utf8(tag) {
        Ok(s) if s.bytes().all(|b| b.is_ascii_graphic()) => s.to_string(),
        _ => format!("{tag:?}"),
    }
}

/// Reads and fully verifies a checkpoint into a staged
/// [`TrainCheckpoint`] without touching any model: every section is
/// length- and CRC-checked, unknown/duplicate sections and trailing
/// garbage are rejected, and format errors name the failing section.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on read failure and
/// [`CheckpointError::Format`] on any corruption.
pub fn read_train_checkpoint(r: &mut impl Read) -> Result<TrainCheckpoint, CheckpointError> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    if buf.len() < 8 {
        return Err(CheckpointError::Format("file shorter than header".into()));
    }
    if &buf[..4] != MAGIC {
        return Err(CheckpointError::Format(format!(
            "bad magic {:?}",
            &buf[..4]
        )));
    }
    let version = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }

    let mut model = None;
    let mut optim = None;
    let mut trainer = None;
    let mut source = None;
    let mut controller = None;
    let mut pos = 8;
    while pos < buf.len() {
        if buf.len() - pos < 16 {
            return Err(CheckpointError::Format(format!(
                "trailing garbage: {} stray bytes after last section",
                buf.len() - pos
            )));
        }
        let tag: [u8; 4] = buf[pos..pos + 4].try_into().expect("4 bytes");
        let name = tag_name(&tag);
        let len = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= buf.len() - pos - 16)
            .ok_or_else(|| {
                CheckpointError::Format(format!(
                    "{name}: truncated payload (section claims {len} bytes, {} remain)",
                    buf.len() - pos - 16
                ))
            })?;
        let payload = &buf[pos + 16..pos + 16 + len];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(CheckpointError::Format(format!(
                "{name}: checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
            )));
        }
        match tag {
            TAG_MODEL => {
                if model.replace(parse_model(payload)?).is_some() {
                    return Err(CheckpointError::Format("MODL: duplicate section".into()));
                }
            }
            TAG_OPTIM => {
                if optim.replace(parse_optim(payload)?).is_some() {
                    return Err(CheckpointError::Format("OPTM: duplicate section".into()));
                }
            }
            TAG_TRAINER => {
                if trainer.replace(parse_trainer(payload)?).is_some() {
                    return Err(CheckpointError::Format("TRNR: duplicate section".into()));
                }
            }
            TAG_SOURCE => {
                if source.replace(parse_source(payload)?).is_some() {
                    return Err(CheckpointError::Format("SRC0: duplicate section".into()));
                }
            }
            TAG_CONTROLLER => {
                if controller.replace(parse_controller(payload)?).is_some() {
                    return Err(CheckpointError::Format("DCTL: duplicate section".into()));
                }
            }
            _ => {
                return Err(CheckpointError::Format(format!(
                    "unknown section tag {name}"
                )));
            }
        }
        pos += 16 + len;
    }
    let model = model.ok_or_else(|| CheckpointError::Format("missing MODL section".into()))?;
    Ok(TrainCheckpoint {
        model,
        optim,
        trainer,
        source,
        controller,
    })
}

/// Restores model parameters from a checkpoint written by
/// [`save_checkpoint`] or [`save_train_checkpoint`].
///
/// Loading is staged: on *any* failure — corruption, truncation,
/// checksum mismatch, trailing garbage, or architecture mismatch —
/// `model` is left byte-identical to what it was.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on corruption (naming the
/// failing section) or [`CheckpointError::Shape`] when the checkpoint
/// does not match the model architecture.
pub fn load_checkpoint(r: &mut impl Read, model: &mut Dlrm) -> Result<(), CheckpointError> {
    read_train_checkpoint(r)?.apply_model(model)
}

// ------------------------------------------------------ CheckpointStore

/// A versioned checkpoint directory with an atomic write protocol and
/// bounded retention.
///
/// Every [`CheckpointStore::save`] writes `ckpt-<steps>.tckp` via
/// temp-file + fsync + rename + directory fsync, so a crash mid-write
/// can never leave a torn file under a valid checkpoint name; the
/// newest `retain` checkpoints are kept and older ones pruned.
///
/// For fault-injection testing, [`CheckpointStore::set_fault_plan`]
/// wires a [`FaultPlan`] into the write path at sites
/// `"checkpoint.open"`, `"checkpoint.write"`, `"checkpoint.fsync"` and
/// `"checkpoint.rename"`; an injected fault surfaces as
/// [`CheckpointError::Io`] and the temp file is cleaned up, leaving
/// previously committed checkpoints intact.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    fault: Option<FaultPlan>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory keeping the
    /// newest `retain` checkpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero (a store that keeps nothing cannot
    /// resume anything).
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> io::Result<Self> {
        assert!(retain > 0, "retain at least one checkpoint");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            retain,
            fault: None,
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms deterministic fault injection on the write path (testing).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    fn injected(&self, site: &str) -> Result<(), CheckpointError> {
        if let Some(plan) = &self.fault {
            if plan.should_fail(site) {
                return Err(CheckpointError::Io(io::Error::other(format!(
                    "injected I/O fault at {site}"
                ))));
            }
        }
        Ok(())
    }

    /// Saves full training state as `ckpt-<steps>.tckp`, atomically,
    /// then prunes beyond the retention bound. Returns the committed
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on any I/O failure; the
    /// temporary file is removed and previously committed checkpoints
    /// are untouched.
    pub fn save(
        &self,
        trainer: &Trainer,
        source: Option<&SourceState>,
        controller: Option<&DepthControllerState>,
    ) -> Result<PathBuf, CheckpointError> {
        let name = format!("ckpt-{:012}.tckp", trainer.steps());
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let path = self.dir.join(&name);
        let result = self.write_atomic(&tmp, &path, trainer, source, controller);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        self.prune()?;
        Ok(path)
    }

    fn write_atomic(
        &self,
        tmp: &Path,
        path: &Path,
        trainer: &Trainer,
        source: Option<&SourceState>,
        controller: Option<&DepthControllerState>,
    ) -> Result<(), CheckpointError> {
        let mut bytes = Vec::new();
        save_train_checkpoint(&mut bytes, trainer, source, controller)?;
        self.injected("checkpoint.open")?;
        let file = std::fs::File::create(tmp)?;
        let mut writer = match &self.fault {
            Some(plan) => FaultyWrite::new(file, plan.clone(), "checkpoint.write"),
            None => FaultyWrite::new(file, FaultPlan::new(), "checkpoint.write"),
        };
        // Chunked writes give the torn-write fault site multiple
        // occurrences to arm, matching how real checkpoints stream out.
        for chunk in bytes.chunks(64 * 1024) {
            writer.write_all(chunk)?;
        }
        let file = writer.into_inner();
        self.injected("checkpoint.fsync")?;
        file.sync_all()?;
        drop(file);
        self.injected("checkpoint.rename")?;
        std::fs::rename(tmp, path)?;
        // Persist the rename itself: fsync the directory entry.
        if let Ok(dir) = std::fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// All committed checkpoints, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be read.
    pub fn list(&self) -> io::Result<Vec<PathBuf>> {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("ckpt-") && name.ends_with(".tckp") {
                found.push(path);
            }
        }
        found.sort();
        Ok(found)
    }

    /// The newest committed checkpoint, if any.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be read.
    pub fn latest(&self) -> io::Result<Option<PathBuf>> {
        Ok(self.list()?.pop())
    }

    fn prune(&self) -> Result<(), CheckpointError> {
        let list = self.list()?;
        if list.len() > self.retain {
            for old in &list[..list.len() - self.retain] {
                std::fs::remove_file(old)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlrmConfig;
    use crate::trainer::EmbeddingOptimizer;
    use tcast_datasets::SyntheticCtr;

    fn data(seed: u64) -> SyntheticCtr {
        let cfg = DlrmConfig::tiny();
        SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, seed)
    }

    fn adam() -> EmbeddingOptimizer {
        EmbeddingOptimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    fn trained_trainer(steps: usize) -> Trainer {
        let mut trainer =
            Trainer::with_optimizer(DlrmConfig::tiny(), BackwardMode::Baseline, adam(), 7).unwrap();
        let mut stream = data(11);
        for _ in 0..steps {
            trainer.step(&stream.next_batch(16)).unwrap();
        }
        trainer
    }

    fn trained_model() -> Dlrm {
        let trainer = trained_trainer(3);
        let mut fresh = Dlrm::new(DlrmConfig::tiny(), 999).unwrap();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, trainer.model()).unwrap();
        load_checkpoint(&mut buf.as_slice(), &mut fresh).unwrap();
        fresh
    }

    fn table_bits(model: &Dlrm) -> Vec<u32> {
        (0..model.num_tables())
            .flat_map(|i| model.table(i).as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        let mut restored = Dlrm::new(DlrmConfig::tiny(), 123).unwrap();
        load_checkpoint(&mut buf.as_slice(), &mut restored).unwrap();

        let cfg = DlrmConfig::tiny();
        let batch = SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 5).next_batch(32);
        let a = model.predict(&batch.dense, &batch.indices).unwrap();
        let b = restored.predict(&batch.dense, &batch.indices).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn full_train_checkpoint_resumes_bit_identically() {
        // Save at step 3, restore into a FRESH trainer, continue both 4
        // steps on the same stream suffix: losses and weights must match
        // to the bit. This is the module-level core of the resume
        // invariant (tests/checkpoint_resume.rs sweeps the full matrix).
        let mk = || {
            Trainer::with_optimizer(DlrmConfig::tiny(), BackwardMode::Baseline, adam(), 7).unwrap()
        };
        let mut original = mk();
        let mut stream = data(11);
        for _ in 0..3 {
            original.step(&stream.next_batch(16)).unwrap();
        }
        let mut buf = Vec::new();
        save_train_checkpoint(&mut buf, &original, None, None).unwrap();

        let mut resumed = mk();
        let ckpt = read_train_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ckpt.steps(), Some(3));
        assert_eq!(ckpt.mode(), Some(BackwardMode::Baseline));
        ckpt.restore_into(&mut resumed).unwrap();
        assert_eq!(resumed.steps(), 3);

        for step in 0..4 {
            let batch = stream.next_batch(16);
            let a = original.step(&batch).unwrap();
            let b = resumed.step(&batch).unwrap();
            assert_eq!(
                a.loss.to_bits(),
                b.loss.to_bits(),
                "loss diverged at post-resume step {step}"
            );
        }
        assert_eq!(table_bits(original.model()), table_bits(resumed.model()));
    }

    #[test]
    fn restore_rejects_mismatched_optimizer_and_lr() {
        let trainer = trained_trainer(2);
        let mut buf = Vec::new();
        save_train_checkpoint(&mut buf, &trainer, None, None).unwrap();
        let ckpt = read_train_checkpoint(&mut buf.as_slice()).unwrap();

        // Wrong optimizer family.
        let mut sgd = Trainer::new(DlrmConfig::tiny(), BackwardMode::Baseline, 7).unwrap();
        assert!(matches!(
            ckpt.restore_into(&mut sgd),
            Err(CheckpointError::Shape(_))
        ));

        // Wrong learning rate.
        let mut wrong_lr =
            Trainer::with_optimizer(DlrmConfig::tiny(), BackwardMode::Baseline, adam(), 7).unwrap();
        wrong_lr.set_learning_rate(0.01);
        assert!(matches!(
            ckpt.restore_into(&mut wrong_lr),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        buf[0] = b'Z';
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        buf.truncate(buf.len() / 2);
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        buf.push(0xAB);
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        let before = table_bits(&m);
        let err = load_checkpoint(&mut buf.as_slice(), &mut m).unwrap_err();
        assert!(
            err.to_string().contains("trailing garbage"),
            "unexpected error: {err}"
        );
        assert_eq!(table_bits(&m), before, "model must be untouched");
    }

    #[test]
    fn corruption_names_the_failing_section() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        // Flip a payload byte well inside the MODL section.
        let at = buf.len() / 2;
        buf[at] ^= 0xFF;
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        let err = load_checkpoint(&mut buf.as_slice(), &mut m).unwrap_err();
        assert!(
            err.to_string().contains("MODL"),
            "error must name the section: {err}"
        );
    }

    #[test]
    fn wrong_architecture_rejected_and_model_untouched() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        let mut other_cfg = DlrmConfig::tiny();
        other_cfg.tables[0].rows += 1;
        let mut m = Dlrm::new(other_cfg, 1).unwrap();
        let before = table_bits(&m);
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Shape(_))
        ));
        assert_eq!(
            table_bits(&m),
            before,
            "staged loading must not touch a mismatched model"
        );
    }

    #[test]
    fn error_display() {
        let e = CheckpointError::Shape("oops".into());
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn store_commits_versioned_checkpoints_and_prunes() {
        let dir = std::env::temp_dir().join(format!("tckp-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 2).unwrap();
        let mut trainer = trained_trainer(0);
        let mut stream = data(3);
        for _ in 0..3 {
            trainer.step(&stream.next_batch(8)).unwrap();
            store.save(&trainer, None, None).unwrap();
        }
        let list = store.list().unwrap();
        assert_eq!(list.len(), 2, "retention must prune to 2: {list:?}");
        let latest = store.latest().unwrap().unwrap();
        assert!(latest.to_string_lossy().contains("ckpt-000000000003"));
        // The committed file loads cleanly.
        let mut f = std::fs::File::open(&latest).unwrap();
        let ckpt = read_train_checkpoint(&mut f).unwrap();
        assert_eq!(ckpt.steps(), Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_fault_leaves_no_torn_checkpoint() {
        let dir = std::env::temp_dir().join(format!("tckp-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CheckpointStore::new(&dir, 3).unwrap();
        let plan = FaultPlan::new();
        plan.arm("checkpoint.write", 0);
        store.set_fault_plan(plan.clone());
        let trainer = trained_trainer(1);
        let err = store.save(&trainer, None, None).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "got {err}");
        assert!(
            store.list().unwrap().is_empty(),
            "no checkpoint may be committed"
        );
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_none(),
            "temp file must be cleaned up"
        );
        assert_eq!(plan.fired(), vec![("checkpoint.write".to_string(), 0)]);
        // The next save (fault disarmed) succeeds.
        store.save(&trainer, None, None).unwrap();
        assert_eq!(store.list().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn source_and_controller_sections_roundtrip() {
        let trainer = trained_trainer(2);
        let src = SourceState::Synthetic {
            rng_state: 0xDEAD_BEEF_CAFE_F00D,
            batches: 42,
        };
        let ctl = DepthControllerState {
            depth: 3,
            window_wait_ns: 1234,
            window_steps: 2,
            hidden_streak: 1,
            floor: 2,
            floor_streak: 4,
            trialing: true,
        };
        let mut buf = Vec::new();
        save_train_checkpoint(&mut buf, &trainer, Some(&src), Some(&ctl)).unwrap();
        let ckpt = read_train_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(ckpt.source_state(), Some(src));
        assert_eq!(ckpt.controller_state(), Some(ctl));
    }
}

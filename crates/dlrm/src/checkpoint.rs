//! Model checkpointing: save and restore all trainable parameters of a
//! [`Dlrm`] in a self-describing little-endian binary format.
//!
//! Production recommendation training checkpoints constantly (the
//! embedding tables *are* the model, and they are expensive to retrain);
//! this module provides that capability without external serialization
//! dependencies. Format:
//!
//! ```text
//! magic   "TCKP"        4 bytes
//! version u32           (currently 1)
//! mlps    2 x MlpBlock  (bottom, top)
//! tables  u32 count, then per table: rows u32, dim u32, rows*dim f32
//!
//! MlpBlock: layers u32, then per layer:
//!   in u32, out u32, weights in*out f32, bias out f32
//! ```
//!
//! Restores validate every shape against the receiving model, so loading
//! a checkpoint into a differently-configured model fails cleanly.

use crate::model::Dlrm;
use std::io::{self, Read, Write};
use tcast_tensor::{Matrix, Mlp};

const MAGIC: &[u8; 4] = b"TCKP";
const VERSION: u32 = 1;

/// Errors from writing or reading checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic/version/truncation.
    Format(String),
    /// Shape mismatch against the receiving model.
    Shape(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "malformed checkpoint: {m}"),
            CheckpointError::Shape(m) => write!(f, "checkpoint shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serializes all trainable parameters of `model` to `w`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_checkpoint(w: &mut impl Write, model: &Dlrm) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_mlp(w, model.bottom())?;
    write_mlp(w, model.top())?;
    let count = model.num_tables() as u32;
    w.write_all(&count.to_le_bytes())?;
    for i in 0..model.num_tables() {
        let t = model.table(i);
        w.write_all(&(t.rows() as u32).to_le_bytes())?;
        w.write_all(&(t.dim() as u32).to_le_bytes())?;
        write_f32s(w, t.as_slice())?;
    }
    Ok(())
}

/// Restores parameters into `model` from a checkpoint written by
/// [`save_checkpoint`].
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] on corruption or
/// [`CheckpointError::Shape`] when the checkpoint does not match the
/// model architecture. On a shape error the model may be partially
/// restored; callers should discard it.
pub fn load_checkpoint(r: &mut impl Read, model: &mut Dlrm) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| CheckpointError::Format("file shorter than header".into()))?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format(format!("bad magic {magic:?}")));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    read_mlp(r, model.bottom_mut())?;
    read_mlp(r, model.top_mut())?;
    let count = read_u32(r)? as usize;
    if count != model.num_tables() {
        return Err(CheckpointError::Shape(format!(
            "checkpoint has {count} tables, model has {}",
            model.num_tables()
        )));
    }
    for i in 0..count {
        let rows = read_u32(r)? as usize;
        let dim = read_u32(r)? as usize;
        let t = model.table_mut(i);
        if rows != t.rows() || dim != t.dim() {
            return Err(CheckpointError::Shape(format!(
                "table {i}: checkpoint {rows}x{dim}, model {}x{}",
                t.rows(),
                t.dim()
            )));
        }
        read_f32s(r, t.as_mut_slice())?;
    }
    Ok(())
}

fn write_mlp(w: &mut impl Write, mlp: &Mlp) -> Result<(), CheckpointError> {
    w.write_all(&(mlp.depth() as u32).to_le_bytes())?;
    for layer in mlp.layers() {
        w.write_all(&(layer.in_dim() as u32).to_le_bytes())?;
        w.write_all(&(layer.out_dim() as u32).to_le_bytes())?;
        write_f32s(w, layer.weight().as_slice())?;
        write_f32s(w, layer.bias())?;
    }
    Ok(())
}

fn read_mlp(r: &mut impl Read, mlp: &mut Mlp) -> Result<(), CheckpointError> {
    let depth = read_u32(r)? as usize;
    if depth != mlp.depth() {
        return Err(CheckpointError::Shape(format!(
            "checkpoint MLP depth {depth}, model {}",
            mlp.depth()
        )));
    }
    for layer in mlp.layers_mut() {
        let in_dim = read_u32(r)? as usize;
        let out_dim = read_u32(r)? as usize;
        if in_dim != layer.in_dim() || out_dim != layer.out_dim() {
            return Err(CheckpointError::Shape(format!(
                "checkpoint layer {in_dim}x{out_dim}, model {}x{}",
                layer.in_dim(),
                layer.out_dim()
            )));
        }
        let mut weights = vec![0.0f32; in_dim * out_dim];
        read_f32s(r, &mut weights)?;
        let mut bias = vec![0.0f32; out_dim];
        read_f32s(r, &mut bias)?;
        let weight = Matrix::from_vec(in_dim, out_dim, weights)
            .map_err(|e| CheckpointError::Shape(e.to_string()))?;
        layer
            .set_parameters(weight, bias)
            .map_err(|e| CheckpointError::Shape(e.to_string()))?;
    }
    Ok(())
}

fn write_f32s(w: &mut impl Write, vals: &[f32]) -> Result<(), CheckpointError> {
    for &v in vals {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, out: &mut [f32]) -> Result<(), CheckpointError> {
    let mut buf = [0u8; 4];
    for v in out {
        r.read_exact(&mut buf)
            .map_err(|_| CheckpointError::Format("truncated checkpoint".into()))?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| CheckpointError::Format("truncated checkpoint".into()))?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DlrmConfig;
    use crate::trainer::{BackwardMode, Trainer};
    use tcast_datasets::SyntheticCtr;

    fn trained_model() -> Dlrm {
        let config = DlrmConfig::tiny();
        let mut data = SyntheticCtr::new(config.table_workloads(), config.dense_features, 1);
        let mut trainer = Trainer::new(config, BackwardMode::Baseline, 7).unwrap();
        for _ in 0..3 {
            trainer.step(&data.next_batch(16)).unwrap();
        }
        // Extract the model by rebuilding a fresh trainer path: easiest is
        // save from the trainer's model reference via a fresh Dlrm clone
        // through checkpoint itself; here we just snapshot fields.
        let mut fresh = Dlrm::new(DlrmConfig::tiny(), 999).unwrap();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, trainer.model()).unwrap();
        load_checkpoint(&mut buf.as_slice(), &mut fresh).unwrap();
        fresh
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        let mut restored = Dlrm::new(DlrmConfig::tiny(), 123).unwrap();
        load_checkpoint(&mut buf.as_slice(), &mut restored).unwrap();

        let cfg = DlrmConfig::tiny();
        let batch = SyntheticCtr::new(cfg.table_workloads(), cfg.dense_features, 5).next_batch(32);
        let a = model.predict(&batch.dense, &batch.indices).unwrap();
        let b = restored.predict(&batch.dense, &batch.indices).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn bad_magic_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        buf[0] = b'Z';
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        buf.truncate(buf.len() / 2);
        let mut m = Dlrm::new(DlrmConfig::tiny(), 1).unwrap();
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn wrong_architecture_rejected() {
        let model = trained_model();
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &model).unwrap();
        // A model with different table sizes must refuse the checkpoint.
        let mut other_cfg = DlrmConfig::tiny();
        other_cfg.tables[0].rows += 1;
        let mut m = Dlrm::new(other_cfg, 1).unwrap();
        assert!(matches!(
            load_checkpoint(&mut buf.as_slice(), &mut m),
            Err(CheckpointError::Shape(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = CheckpointError::Shape("oops".into());
        assert!(e.to_string().contains("oops"));
    }
}
